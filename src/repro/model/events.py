"""Events of the replica state machines (Definition 2.1).

A replica interacts with its environment through three event kinds:

* ``do(op, v)`` — a user invokes ``op`` and immediately receives ``v``;
* ``send(m)`` — the replica sends message ``m``;
* ``receive(m)`` — the replica receives message ``m``.

Events carry an ``eid`` (their index in the recording execution) so that
relations over events can be represented as relations over integers, and a
``Message`` carries a unique ``mid`` so that ``send``/``receive`` pairs can
be matched when deriving happens-before.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.document.elements import Element
from repro.ot.operations import Operation

_message_counter = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """An opaque protocol message with a unique identity.

    ``payload`` is whatever the protocol puts on the wire (see
    :mod:`repro.jupiter.messages`); the model layer only needs ``mid`` for
    send/receive pairing and ``sender``/``recipient`` for routing.
    """

    sender: ReplicaId
    recipient: ReplicaId
    payload: Any
    mid: int = field(default_factory=lambda: next(_message_counter))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"m{self.mid}:{self.sender}->{self.recipient}"


@dataclass(frozen=True)
class DoEvent:
    """``do(op, v)``: a user operation and the list it returned.

    ``operation`` is the *original* user operation (``org(o)``) for inserts
    and deletes, and ``None`` for reads.  ``returned`` is the full list
    contents after the operation — the paper's Ins/Del/Read all return the
    updated list (Section 3.1).
    """

    eid: int
    replica: ReplicaId
    operation: Optional[Operation]
    returned: Tuple[Element, ...]

    @property
    def is_read(self) -> bool:
        return self.operation is None

    @property
    def is_update(self) -> bool:
        """Whether this is a list update (INS or DEL) rather than a read."""
        return self.operation is not None

    @property
    def opid(self) -> Optional[OpId]:
        return self.operation.opid if self.operation is not None else None

    def returned_string(self) -> str:
        """The returned list as a plain string (for character documents)."""
        return "".join(str(e.value) for e in self.returned)

    def __str__(self) -> str:
        op = "Read" if self.is_read else str(self.operation)
        return f"do[{self.eid}]@{self.replica}({op} -> {self.returned_string()!r})"


@dataclass(frozen=True)
class SendEvent:
    """``send(m)`` at ``replica``."""

    eid: int
    replica: ReplicaId
    message: Message

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"send[{self.eid}]@{self.replica}({self.message})"


@dataclass(frozen=True)
class ReceiveEvent:
    """``receive(m)`` at ``replica``."""

    eid: int
    replica: ReplicaId
    message: Message

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"recv[{self.eid}]@{self.replica}({self.message})"


#: Any of the three event kinds.
Event = Any  # Union[DoEvent, SendEvent, ReceiveEvent]; kept loose for speed.
