"""Saving and loading schedules as JSON.

A recorded schedule is the complete, deterministic description of one
interleaving; persisting it lets experiments replay the exact same run
across processes, machines, and protocol implementations (the CLI's
``record`` / ``replay`` commands, regression corpora for bugs found by
the fuzzer).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ScheduleError
from repro.model.schedule import (
    ClientReceive,
    Drain,
    Generate,
    OpSpec,
    Read,
    Schedule,
    ServerReceive,
    Step,
)

FORMAT_VERSION = 1


def _step_to_obj(step: Step) -> Dict[str, Any]:
    if isinstance(step, Generate):
        return {
            "kind": "generate",
            "client": step.client,
            "op": {
                "kind": step.spec.kind,
                "position": step.spec.position,
                "value": step.spec.value,
            },
        }
    if isinstance(step, ServerReceive):
        return {"kind": "server_receive", "client": step.client}
    if isinstance(step, ClientReceive):
        return {"kind": "client_receive", "client": step.client}
    if isinstance(step, Read):
        return {"kind": "read", "replica": step.replica}
    if isinstance(step, Drain):
        return {"kind": "drain"}
    raise ScheduleError(f"cannot serialise step {step!r}")


def _step_from_obj(obj: Dict[str, Any]) -> Step:
    kind = obj.get("kind")
    if kind == "generate":
        op = obj["op"]
        return Generate(
            str(obj["client"]),
            OpSpec(str(op["kind"]), int(op["position"]), op.get("value")),
        )
    if kind == "server_receive":
        return ServerReceive(str(obj["client"]))
    if kind == "client_receive":
        return ClientReceive(str(obj["client"]))
    if kind == "read":
        return Read(str(obj["replica"]))
    if kind == "drain":
        return Drain()
    raise ScheduleError(f"unknown step kind {kind!r}")


def schedule_to_obj(
    schedule: Schedule, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Serialise a schedule (plus free-form metadata) to a JSON-able dict."""
    return {
        "version": FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "steps": [_step_to_obj(step) for step in schedule],
    }


def schedule_from_obj(obj: Dict[str, Any]) -> Schedule:
    if obj.get("version") != FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {obj.get('version')!r}"
        )
    return Schedule([_step_from_obj(step) for step in obj["steps"]])


def save_schedule(
    schedule: Schedule, path: str, metadata: Optional[Dict[str, Any]] = None
) -> None:
    """Write a schedule to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schedule_to_obj(schedule, metadata), handle, indent=1)


def load_schedule(path: str) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    with open(path, "r", encoding="utf-8") as handle:
        return schedule_from_obj(json.load(handle))


def load_metadata(path: str) -> Dict[str, Any]:
    """Read just the metadata block of a saved schedule."""
    with open(path, "r", encoding="utf-8") as handle:
        obj = json.load(handle)
    if obj.get("version") != FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {obj.get('version')!r}"
        )
    return dict(obj.get("metadata", {}))


def schedules_equal(first: Schedule, second: Schedule) -> bool:
    """Structural equality of two schedules."""
    return [_step_to_obj(s) for s in first] == [
        _step_to_obj(s) for s in second
    ]
