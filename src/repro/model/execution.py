"""Concrete executions of a protocol (Definitions 2.3–2.6).

An :class:`Execution` is the recorded interleaving of events across all
replicas.  The :class:`ExecutionRecorder` is handed to protocol clusters so
that every ``do``/``send``/``receive`` transition is appended as it happens;
event ids are assigned densely in execution order, which makes ``e ≺α e'``
a plain integer comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.common.ids import ReplicaId
from repro.document.elements import Element
from repro.errors import MalformedExecutionError
from repro.model.events import DoEvent, Event, Message, ReceiveEvent, SendEvent
from repro.ot.operations import Operation


class Execution:
    """A finite, well-formed-checkable sequence of events."""

    def __init__(self, events: Optional[Sequence[Event]] = None) -> None:
        self._events: List[Event] = list(events or [])

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def replicas(self) -> List[ReplicaId]:
        """All replicas appearing in the execution, in first-seen order."""
        seen: Dict[ReplicaId, None] = {}
        for event in self._events:
            seen.setdefault(event.replica, None)
        return list(seen)

    def at_replica(self, replica: ReplicaId) -> List[Event]:
        """The subsequence ``α|R`` of events at ``replica``."""
        return [e for e in self._events if e.replica == replica]

    def do_events(self, replica: Optional[ReplicaId] = None) -> List[DoEvent]:
        """All ``do`` events, optionally restricted to one replica.

        This is the paper's ``α|do_R`` projection used in the compliance
        condition (Definition 2.11).
        """
        return [
            e
            for e in self._events
            if isinstance(e, DoEvent)
            and (replica is None or e.replica == replica)
        ]

    def update_events(self) -> List[DoEvent]:
        """``do`` events that are list updates (INS or DEL)."""
        return [e for e in self.do_events() if e.is_update]

    # ------------------------------------------------------------------
    # Well-formedness (Definition 2.4)
    # ------------------------------------------------------------------
    def check_well_formed(self) -> None:
        """Raise :class:`MalformedExecutionError` on violations.

        We check the message-delivery condition (every ``receive(m)`` is
        preceded by the matching ``send(m)``) plus basic sanity: event ids
        are dense and in order, and no message is received twice by the
        same replica.  The state-transition condition of Definition 2.4 is
        discharged by construction — events are recorded as replicas take
        their transitions.
        """
        sent_at: Dict[int, int] = {}
        received: set = set()
        for position, event in enumerate(self._events):
            if event.eid != position:
                raise MalformedExecutionError(
                    f"event at position {position} has eid {event.eid}"
                )
            if isinstance(event, SendEvent):
                if event.message.mid in sent_at:
                    raise MalformedExecutionError(
                        f"message {event.message} sent twice"
                    )
                sent_at[event.message.mid] = position
            elif isinstance(event, ReceiveEvent):
                key = (event.message.mid, event.replica)
                if key in received:
                    raise MalformedExecutionError(
                        f"message {event.message} received twice at "
                        f"{event.replica}"
                    )
                received.add(key)
                if sent_at.get(event.message.mid) is None:
                    raise MalformedExecutionError(
                        f"receive of {event.message} not preceded by a send"
                    )

    def is_well_formed(self) -> bool:
        try:
            self.check_well_formed()
        except MalformedExecutionError:
            return False
        return True


class ExecutionRecorder:
    """Builds an :class:`Execution` incrementally during a protocol run."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    @property
    def next_eid(self) -> int:
        return len(self._events)

    def record_do(
        self,
        replica: ReplicaId,
        operation: Optional[Operation],
        returned: Iterable[Element],
    ) -> DoEvent:
        event = DoEvent(self.next_eid, replica, operation, tuple(returned))
        self._events.append(event)
        return event

    def record_send(self, replica: ReplicaId, message: Message) -> SendEvent:
        event = SendEvent(self.next_eid, replica, message)
        self._events.append(event)
        return event

    def record_receive(self, replica: ReplicaId, message: Message) -> ReceiveEvent:
        event = ReceiveEvent(self.next_eid, replica, message)
        self._events.append(event)
        return event

    def finish(self) -> Execution:
        """Snapshot the recorded events as an immutable-ish Execution."""
        return Execution(list(self._events))
