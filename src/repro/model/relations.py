"""Happens-before and derived relations (Definitions 2.7, 2.8, 4.1–4.3).

Happens-before is computed with vector clocks: one pass over the execution
assigns each event a clock; ``e hb e'`` is then a component-wise comparison.
This keeps relation queries cheap even for the large random executions used
by the property tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.errors import MalformedExecutionError
from repro.model.events import DoEvent, ReceiveEvent, SendEvent
from repro.model.execution import Execution

VectorClock = Dict[ReplicaId, int]


class HappensBefore:
    """The happens-before partial order over the events of an execution.

    Construction is a single left-to-right pass: thread order bumps the
    replica's own component; a receive joins the clock of the matching
    send (message-delivery edges); transitivity falls out of the joins.
    """

    def __init__(self, execution: Execution) -> None:
        self._execution = execution
        self._clocks: List[VectorClock] = []
        per_replica_clock: Dict[ReplicaId, VectorClock] = {}
        send_clock_by_mid: Dict[int, VectorClock] = {}

        for event in execution:
            clock = dict(per_replica_clock.get(event.replica, {}))
            if isinstance(event, ReceiveEvent):
                sender_clock = send_clock_by_mid.get(event.message.mid)
                if sender_clock is None:
                    raise MalformedExecutionError(
                        f"receive of {event.message} without prior send"
                    )
                for replica, count in sender_clock.items():
                    if clock.get(replica, 0) < count:
                        clock[replica] = count
            clock[event.replica] = clock.get(event.replica, 0) + 1
            self._clocks.append(clock)
            per_replica_clock[event.replica] = clock
            if isinstance(event, SendEvent):
                send_clock_by_mid[event.message.mid] = clock

    @property
    def execution(self) -> Execution:
        return self._execution

    def clock_of(self, eid: int) -> VectorClock:
        return self._clocks[eid]

    def happens_before(self, first_eid: int, second_eid: int) -> bool:
        """``e -hb-> e'`` (strict)."""
        if first_eid == second_eid:
            return False
        first = self._execution[first_eid]
        second_clock = self._clocks[second_eid]
        # e hb e' iff e' has seen at least as many events of R(e) as e's
        # own position in R(e)'s thread.
        own = self._clocks[first_eid][first.replica]
        return second_clock.get(first.replica, 0) >= own and first_eid < second_eid

    def concurrent(self, first_eid: int, second_eid: int) -> bool:
        return (
            first_eid != second_eid
            and not self.happens_before(first_eid, second_eid)
            and not self.happens_before(second_eid, first_eid)
        )

    def totally_before(self, first_eid: int, second_eid: int) -> bool:
        """A totally-before relation consistent with happens-before.

        The recording order of the execution is itself a consistent total
        order (Definition 2.8): events are appended as they occur, and a
        message is received only after it was sent.
        """
        return first_eid < second_eid


class CausalOrder:
    """Causal / concurrent / total order on *user operations* (§4.1).

    Operations are named by their :class:`~repro.common.ids.OpId`; this is
    the relation the OT protocols consult, so it is exposed independently
    of raw event ids.
    """

    def __init__(self, execution: Execution) -> None:
        self._hb = HappensBefore(execution)
        self._eid_by_opid: Dict[OpId, int] = {}
        for event in execution.do_events():
            if event.is_update:
                assert event.opid is not None
                if event.opid in self._eid_by_opid:
                    raise MalformedExecutionError(
                        f"operation {event.opid} generated twice"
                    )
                self._eid_by_opid[event.opid] = event.eid

    @property
    def happens_before_relation(self) -> HappensBefore:
        return self._hb

    def opids(self) -> List[OpId]:
        return list(self._eid_by_opid)

    def eid_of(self, opid: OpId) -> int:
        return self._eid_by_opid[opid]

    def causally_before(self, first: OpId, second: OpId) -> bool:
        """``o → o'`` (Definition 4.1)."""
        return self._hb.happens_before(self.eid_of(first), self.eid_of(second))

    def concurrent(self, first: OpId, second: OpId) -> bool:
        """``o ∥ o'`` (Definition 4.2)."""
        return self._hb.concurrent(self.eid_of(first), self.eid_of(second))

    def totally_before(self, first: OpId, second: OpId) -> bool:
        """``o ⇒ o'`` (Definition 4.3), induced by the recording order."""
        return self.eid_of(first) < self.eid_of(second)

    def context_of(self, opid: OpId) -> Tuple[OpId, ...]:
        """All operations causally before ``opid``, i.e. its context."""
        return tuple(
            other
            for other in self._eid_by_opid
            if other != opid and self.causally_before(other, opid)
        )


def visibility_from_causality(
    execution: Execution,
) -> Dict[int, frozenset]:
    """``vis := →`` — the visibility relation used in the paper's §8.2.

    Maps each do-event id to the frozenset of do-event ids visible to it
    (those happening strictly before it).
    """
    hb = HappensBefore(execution)
    do_events = execution.do_events()
    visible: Dict[int, frozenset] = {}
    for event in do_events:
        visible[event.eid] = frozenset(
            other.eid
            for other in do_events
            if hb.happens_before(other.eid, event.eid)
        )
    return visible


def linearise(
    execution: Execution, hb: Optional[HappensBefore] = None
) -> List[int]:
    """A total order of event ids consistent with happens-before.

    The recording order already is one; exposed as a function so callers
    don't have to know that implementation detail.
    """
    del hb  # recording order is always consistent
    return [event.eid for event in execution]
