"""The formal framework of Section 2: events, executions, relations.

This package is a direct transcription of the paper's definitions:

* :mod:`repro.model.events` — ``do`` / ``send`` / ``receive`` events
  (Definition 2.1's event alphabet);
* :mod:`repro.model.execution` — concrete executions and well-formedness
  (Definitions 2.3–2.6);
* :mod:`repro.model.relations` — happens-before and totally-before
  (Definitions 2.7, 2.8) and the derived causal / concurrent / total
  orders on user operations (Definitions 4.1–4.3);
* :mod:`repro.model.abstract` — abstract executions with visibility and
  the compliance relation (Definitions 2.9–2.12);
* :mod:`repro.model.schedule` — schedules (Definition 4.7), the shared
  input replayed against different protocols for equivalence experiments.
"""

from repro.model.abstract import AbstractExecution, abstract_from_execution
from repro.model.events import DoEvent, Event, Message, ReceiveEvent, SendEvent
from repro.model.execution import Execution, ExecutionRecorder
from repro.model.relations import CausalOrder, HappensBefore
from repro.model.schedule import (
    ClientReceive,
    Drain,
    Generate,
    OpSpec,
    Read,
    Schedule,
    ScheduleBuilder,
    ServerReceive,
    Step,
)

__all__ = [
    "AbstractExecution",
    "abstract_from_execution",
    "DoEvent",
    "Event",
    "Message",
    "ReceiveEvent",
    "SendEvent",
    "Execution",
    "ExecutionRecorder",
    "CausalOrder",
    "HappensBefore",
    "ClientReceive",
    "Drain",
    "Generate",
    "OpSpec",
    "Read",
    "Schedule",
    "ScheduleBuilder",
    "ServerReceive",
    "Step",
]
