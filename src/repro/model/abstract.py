"""Abstract executions and visibility (Definitions 2.9–2.12).

An :class:`AbstractExecution` is a pair ``(H, vis)``: the history of ``do``
events and an acyclic visibility relation.  It is the object the three
list specifications range over; concrete executions are checked by first
deriving a complying abstract execution (``vis := causal order``, as in the
paper's proof of Theorem 8.2) and then asking whether it belongs to the
specification.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.common.ids import OpId
from repro.document.elements import Element
from repro.errors import MalformedExecutionError
from repro.model.events import DoEvent
from repro.model.execution import Execution
from repro.model.relations import visibility_from_causality


class AbstractExecution:
    """``A = (H, vis)`` with validation and the queries the specs need."""

    def __init__(
        self,
        history: Iterable[DoEvent],
        visibility: Dict[int, FrozenSet[int]],
        validate: bool = True,
    ) -> None:
        self._history: List[DoEvent] = list(history)
        self._position: Dict[int, int] = {
            event.eid: index for index, event in enumerate(self._history)
        }
        self._visibility: Dict[int, FrozenSet[int]] = {
            eid: frozenset(seen) for eid, seen in visibility.items()
        }
        for event in self._history:
            self._visibility.setdefault(event.eid, frozenset())
        if validate:
            self.check_valid()

    # ------------------------------------------------------------------
    # Validation (conditions of Definition 2.9)
    # ------------------------------------------------------------------
    def check_valid(self) -> None:
        known = set(self._position)
        for eid, seen in self._visibility.items():
            if eid not in known:
                raise MalformedExecutionError(f"vis mentions unknown event {eid}")
            for other in seen:
                if other not in known:
                    raise MalformedExecutionError(
                        f"vis({eid}) mentions unknown event {other}"
                    )
                # Condition 2: vis implies precedence in H.
                if self._position[other] >= self._position[eid]:
                    raise MalformedExecutionError(
                        f"event {other} visible to {eid} but not before it in H"
                    )
                # Condition 3: transitivity.
                if not self._visibility.get(other, frozenset()) <= seen:
                    raise MalformedExecutionError(
                        f"visibility is not transitive at event {eid}"
                    )
        # Condition 1: same-replica precedence implies visibility.
        last_by_replica: Dict[str, DoEvent] = {}
        for event in self._history:
            previous = last_by_replica.get(event.replica)
            if previous is not None:
                if previous.eid not in self._visibility[event.eid]:
                    raise MalformedExecutionError(
                        f"replica order not in vis: {previous.eid} before "
                        f"{event.eid} at {event.replica}"
                    )
            last_by_replica[event.replica] = event

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def history(self) -> List[DoEvent]:
        return list(self._history)

    def __len__(self) -> int:
        return len(self._history)

    def visible_to(self, event: DoEvent) -> FrozenSet[int]:
        """Event ids of the do events visible to ``event``."""
        return self._visibility[event.eid]

    def event_by_eid(self, eid: int) -> DoEvent:
        return self._history[self._position[eid]]

    def updates_visible_to(self, event: DoEvent) -> FrozenSet[int]:
        """``vis⁻¹_{INS,DEL}(e)``: the list updates visible to ``event``."""
        return frozenset(
            eid
            for eid in self._visibility[event.eid]
            if self.event_by_eid(eid).is_update
        )

    # ------------------------------------------------------------------
    # Element bookkeeping (Section 3.1)
    # ------------------------------------------------------------------
    def elems(self) -> Set[Element]:
        """``elems(A)``: every element ever inserted."""
        result: Set[Element] = set()
        for event in self._history:
            if event.is_update and event.operation.is_insert:
                assert event.operation.element is not None
                result.add(event.operation.element)
        return result

    def insert_event_of(self, opid: OpId) -> Optional[DoEvent]:
        """The do event that inserted the element identified by ``opid``."""
        for event in self._history:
            if (
                event.is_update
                and event.operation.is_insert
                and event.operation.element.opid == opid
            ):
                return event
        return None

    def delete_events_of(self, opid: OpId) -> List[DoEvent]:
        """All do events deleting the element identified by ``opid``.

        (Several replicas may concurrently delete the same element.)
        """
        return [
            event
            for event in self._history
            if event.is_update
            and event.operation.is_delete
            and event.operation.element.opid == opid
        ]

    # ------------------------------------------------------------------
    # Prefixes (Definition 2.9, closing paragraph)
    # ------------------------------------------------------------------
    def prefix(self, length: int) -> "AbstractExecution":
        """The prefix of the first ``length`` history events."""
        head = self._history[:length]
        keep = {event.eid for event in head}
        visibility = {
            event.eid: frozenset(self._visibility[event.eid] & keep)
            for event in head
        }
        return AbstractExecution(head, visibility, validate=False)

    # ------------------------------------------------------------------
    # Compliance (Definition 2.11)
    # ------------------------------------------------------------------
    def complies_with(self, execution: Execution) -> bool:
        """``H|R == α|do_R`` for every replica ``R``."""
        replicas = set(execution.replicas()) | {
            event.replica for event in self._history
        }
        for replica in replicas:
            history_projection = [
                event.eid for event in self._history if event.replica == replica
            ]
            execution_projection = [
                event.eid for event in execution.do_events(replica)
            ]
            if history_projection != execution_projection:
                return False
        return True


def abstract_from_execution(execution: Execution) -> AbstractExecution:
    """Derive the abstract execution with ``vis := causal order``.

    This is exactly the construction in the paper's proof of Theorem 8.2:
    ``H`` is the subsequence of do events of ``α`` and an update is visible
    to an event iff it happens-before it.
    """
    execution.check_well_formed()
    visibility = visibility_from_causality(execution)
    return AbstractExecution(execution.do_events(), visibility)
