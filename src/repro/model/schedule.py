"""Schedules: the temporal skeleton of an execution (Definition 4.7).

A schedule fixes *when* each user operation is generated and *when* each
message is processed, without fixing replica behaviour.  Replaying the same
schedule against two protocols is how the equivalence experiments compare
them (Theorem 7.1: "the behaviors of corresponding replicas in the CSS
protocol and the CSCW protocol are the same under the same schedule").

Steps:

* :class:`Generate` — a client generates a user operation from an
  :class:`OpSpec` (positions are interpreted against the client's current
  local document, so the same spec is meaningful for every protocol);
* :class:`ServerReceive` — the server processes the next queued message
  from a given client;
* :class:`ClientReceive` — a client processes the next queued message from
  the server;
* :class:`Read` — a client performs a read (a ``do(Read, w)`` event);
* :class:`Drain` — deliver every in-flight message to quiescence, in a
  deterministic round-robin order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Union

from repro.common.ids import ReplicaId
from repro.errors import ScheduleError


@dataclass(frozen=True)
class OpSpec:
    """A protocol-independent description of a user operation.

    ``kind`` is ``"ins"`` or ``"del"``; ``position`` is interpreted against
    the generating client's current document (and must be valid for it);
    ``value`` is the inserted value for ``"ins"`` and ignored for ``"del"``.
    """

    kind: str
    position: int
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("ins", "del"):
            raise ScheduleError(f"unknown operation kind {self.kind!r}")
        if self.position < 0:
            raise ScheduleError(f"negative position {self.position}")
        if self.kind == "ins" and self.value is None:
            raise ScheduleError("insert specs need a value")

    def __str__(self) -> str:
        if self.kind == "ins":
            return f"Ins({self.value}, {self.position})"
        return f"Del(_, {self.position})"


@dataclass(frozen=True)
class Generate:
    """Client ``client`` generates the operation described by ``spec``."""

    client: ReplicaId
    spec: OpSpec


@dataclass(frozen=True)
class Read:
    """Client (or server) ``replica`` performs a read."""

    replica: ReplicaId


@dataclass(frozen=True)
class ServerReceive:
    """Server processes the next queued message from ``client``."""

    client: ReplicaId


@dataclass(frozen=True)
class ClientReceive:
    """Client ``client`` processes the next queued server message."""

    client: ReplicaId


@dataclass(frozen=True)
class Drain:
    """Deliver all in-flight messages to quiescence (round-robin)."""


Step = Union[Generate, Read, ServerReceive, ClientReceive, Drain]


class Schedule:
    """An immutable sequence of schedule steps."""

    def __init__(self, steps: Sequence[Step]) -> None:
        self._steps: List[Step] = list(steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> Step:
        return self._steps[index]

    def clients(self) -> List[ReplicaId]:
        """Clients mentioned by the schedule, in first-seen order."""
        seen: dict = {}
        for step in self._steps:
            name: Optional[ReplicaId] = None
            if isinstance(step, (Generate, ClientReceive, ServerReceive)):
                name = step.client
            elif isinstance(step, Read):
                name = step.replica
            if name is not None and name != "s":
                seen.setdefault(name, None)
        return list(seen)

    def generate_steps(self) -> List[Generate]:
        return [s for s in self._steps if isinstance(s, Generate)]

    def __add__(self, other: "Schedule") -> "Schedule":
        return Schedule(self._steps + list(other))


class ScheduleBuilder:
    """Fluent construction of schedules for scenario code.

    >>> schedule = (
    ...     ScheduleBuilder()
    ...     .ins("c1", 0, "x")
    ...     .server_recv("c1")
    ...     .client_recv("c2")
    ...     .drain()
    ...     .build()
    ... )
    """

    def __init__(self) -> None:
        self._steps: List[Step] = []

    def ins(self, client: ReplicaId, position: int, value: Any) -> "ScheduleBuilder":
        self._steps.append(Generate(client, OpSpec("ins", position, value)))
        return self

    def delete(self, client: ReplicaId, position: int) -> "ScheduleBuilder":
        self._steps.append(Generate(client, OpSpec("del", position)))
        return self

    def read(self, replica: ReplicaId) -> "ScheduleBuilder":
        self._steps.append(Read(replica))
        return self

    def server_recv(self, client: ReplicaId, times: int = 1) -> "ScheduleBuilder":
        self._steps.extend(ServerReceive(client) for _ in range(times))
        return self

    def client_recv(self, client: ReplicaId, times: int = 1) -> "ScheduleBuilder":
        self._steps.extend(ClientReceive(client) for _ in range(times))
        return self

    def drain(self) -> "ScheduleBuilder":
        self._steps.append(Drain())
        return self

    def step(self, step: Step) -> "ScheduleBuilder":
        self._steps.append(step)
        return self

    def build(self) -> Schedule:
        return Schedule(self._steps)
