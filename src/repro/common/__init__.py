"""Shared low-level building blocks: identifiers, priorities, utilities."""

from repro.common.ids import (
    EMPTY_STATE,
    SERVER_ID,
    OpId,
    ReplicaId,
    SeqGenerator,
    SerialCounter,
    SerialNumber,
    StateKey,
    format_opid_set,
)
from repro.common.priority import Priority, priority_of

__all__ = [
    "EMPTY_STATE",
    "SERVER_ID",
    "OpId",
    "ReplicaId",
    "SeqGenerator",
    "SerialCounter",
    "SerialNumber",
    "StateKey",
    "format_opid_set",
    "Priority",
    "priority_of",
]
