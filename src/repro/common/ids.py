"""Identifiers for replicas and operations.

The paper (Section 3.1) assumes all inserted elements are unique, "which can
be done by attaching replica identifiers and sequence numbers".  ``OpId`` is
exactly that pair.  Because there is a one-to-one correspondence between
insert operations and inserted elements, an ``OpId`` doubles as the identity
of the element the operation inserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

#: Replicas are named by plain strings, e.g. ``"c1"``, ``"c2"`` or ``"s"``.
ReplicaId = str

#: The conventional name of the central Jupiter server replica.
SERVER_ID: ReplicaId = "s"


@dataclass(frozen=True, order=True)
class OpId:
    """Globally unique identity of an *original* user operation.

    The identity survives operational transformation: a transformed
    operation ``o{L}`` keeps the ``OpId`` of ``org(o)`` (paper, Definition
    4.5).  The derived ordering (``replica`` then ``seq``) is arbitrary but
    deterministic; protocols must *not* use it as the Jupiter total order —
    that order is the server serialisation order (Definition 4.3).

    The hash is computed once and cached: ids live inside state keys,
    prefix sets and document id-sets, so the state-space hot path hashes
    the same id many thousands of times.
    """

    replica: ReplicaId
    seq: int
    _hash: int = field(
        default=0, init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.replica, self.seq)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.replica}:{self.seq}"


class SeqGenerator:
    """Per-replica monotonic sequence-number source.

    >>> gen = SeqGenerator("c1")
    >>> gen.next_opid()
    OpId(replica='c1', seq=1)
    >>> gen.next_opid()
    OpId(replica='c1', seq=2)
    """

    def __init__(self, replica: ReplicaId, start: int = 1) -> None:
        self._replica = replica
        self._next = start

    @property
    def replica(self) -> ReplicaId:
        return self._replica

    @property
    def current(self) -> int:
        """The next sequence number that will be handed out."""
        return self._next

    def next_opid(self) -> OpId:
        """Return a fresh :class:`OpId` and advance the counter."""
        opid = OpId(self._replica, self._next)
        self._next += 1
        return opid


def format_opid_set(opids: Iterable[OpId]) -> str:
    """Render a set of operation ids compactly, for diagnostics.

    States in the paper are written like ``{1, 2, 3}``; we print
    ``{c1:1, c2:1, c3:1}`` (sorted) so messages stay deterministic.
    """
    inner = ", ".join(str(o) for o in sorted(opids))
    return "{" + inner + "}"


@dataclass(frozen=True)
class SerialNumber:
    """A server serialisation index.

    Serial numbers start at 1 and define the Jupiter total order
    (Definition 4.3): ``o ⇒ o'`` iff ``serial(o) < serial(o')``.
    """

    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"serial numbers start at 1, got {self.index}")

    def __lt__(self, other: "SerialNumber") -> bool:
        return self.index < other.index

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"#{self.index}"


# A replica state in the paper is the set of original operations processed
# (Definition 4.5); an empty frozenset is the initial state σ0.
StateKey = FrozenSet[OpId]

EMPTY_STATE: StateKey = frozenset()


@dataclass
class SerialCounter:
    """Monotonic :class:`SerialNumber` source used by servers."""

    _next: int = field(default=1)

    def next_serial(self) -> SerialNumber:
        serial = SerialNumber(self._next)
        self._next += 1
        return serial

    @property
    def issued(self) -> int:
        """How many serial numbers have been handed out so far."""
        return self._next - 1
