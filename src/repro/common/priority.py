"""Replica priorities used to break ties between concurrent inserts.

Two concurrent insertions at the same position must be ordered
deterministically for the transformation functions to satisfy CP1
(Definition 4.4).  Following the convention in the paper's Figure 7
("we assume that client with a larger id has a higher priority"), the
priority of a replica is derived from its identifier; an insert by a
higher-priority replica ends up *to the left of* (before) a concurrent
equal-position insert by a lower-priority replica.
"""

from __future__ import annotations

import re
from typing import Tuple

from repro.common.ids import ReplicaId

#: A priority is an arbitrary-but-total comparable key.  Bigger = higher.
Priority = Tuple[int, str]

_TRAILING_INT = re.compile(r"^(.*?)(\d+)$")


def priority_of(replica: ReplicaId) -> Priority:
    """Derive the tie-breaking priority of a replica from its name.

    Names of the form ``<prefix><number>`` (e.g. ``"c3"``) compare first by
    the numeric suffix so that ``c10`` outranks ``c2``, matching the
    paper's "larger id has a higher priority" convention.  Names without a
    numeric suffix compare lexicographically after all numbered names with
    the same numeric component (0).

    >>> priority_of("c3") > priority_of("c2")
    True
    >>> priority_of("c10") > priority_of("c9")
    True
    """
    match = _TRAILING_INT.match(replica)
    if match:
        prefix, digits = match.groups()
        return (int(digits), prefix)
    return (0, replica)
