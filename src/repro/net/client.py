"""The deployed CSS client: a ``CssClient`` behind a TCP connection.

A :class:`NetClient` owns exactly what a simulated client endpoint owns —
a :class:`~repro.jupiter.css.CssClient` plus a
:class:`~repro.jupiter.session.SessionSender` /
:class:`~repro.jupiter.session.SessionReceiver` pair — and keeps every
unacknowledged outgoing frame retransmittable, so a dropped connection
loses nothing:

* on (re)connect it sends ``hello {client, delivered}`` where
  ``delivered`` is its receiver's cumulative ack (broadcasts consumed);
* the server's ``welcome {ack, resync}`` tells it which of its pending
  frames the server already consumed (dropped from the buffer) and how
  many broadcasts will be re-shipped from the write-ahead log;
* it then retransmits its unacknowledged suffix in sequence order; the
  server's receiver suppresses any duplicates, restoring exactly-once.

Broadcast frames arriving out of order across a reconnect (live traffic
racing the WAL resync) are parked by sequence number and released to the
protocol strictly in order — the same discipline the simulator enforces.

**Reconnect pacing and jitter.**  Backoff reuses
:class:`~repro.jupiter.session.RetransmitPolicy`: the delay before dial
attempt ``n`` is ``base * factor**(n-1)`` capped at ``cap`` and inflated
by up to ``jitter`` (10%) of itself from an RNG seeded with
``reconnect_seed`` — deterministic per client, so tests replay exactly,
but de-correlated *across* clients, so a herd of reconnecting clients
does not stampede a recovering server in lockstep.  Two independent caps
bound the retrying: ``max_connect_attempts`` limits consecutive failed
dials inside one :meth:`NetClient.connect` call, and
``max_reconnect_attempts`` (``None`` = unlimited) limits how many times
:meth:`NetClient.wait_converged` will re-establish a dead connection
before raising :class:`ReconnectExhausted` — a clean terminal error
instead of retrying forever.

**Failover.**  Given a replica ``roster`` the client survives primary
loss: a dead connection advances round-robin through the roster (with
the same seeded backoff), a ``redirect`` frame from a backup jumps
straight to the primary of its view, and every frame's ``epoch`` is
checked so a deposed primary's stale broadcasts are dropped rather than
applied.  Acknowledgements from a replicated server are quorum-gated, so
an op the client saw acked is on f+1 disks and survives the failover.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.ids import SERVER_ID, ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.persistence import opid_from_obj, space_from_obj
from repro.jupiter.session import (
    RetransmitPolicy,
    SessionReceiver,
    SessionSender,
)
from repro.model.schedule import OpSpec
from repro.net.codec import (
    CODEC_JSON,
    SUPPORTED_CODECS,
    compact_client_op_obj,
    document_signature,
    encode_envelope,
    message_from_wire,
    message_to_obj,
    roster_from_obj,
)
from repro.net.transport import HEARTBEAT_INTERVAL, read_frame, write_frame
from repro.obs import get_obs

#: Most recent round-trip samples kept for the loadgen report; the full
#: distribution lives in the ``repro_net_rtt_seconds`` histogram, which
#: is bounded by construction, so the raw-sample window can be small.
RTT_SAMPLE_CAP = 2048


class ReconnectExhausted(ConnectionError):
    """The configured reconnect budget ran out: a clean terminal error.

    Subclasses :class:`ConnectionError` so existing callers that treat
    connection failures uniformly keep working, while tests (and the
    load generator) can tell "gave up by policy" from a raw socket error.
    """


class NetClient:
    """One deployed CSS client endpoint."""

    def __init__(
        self,
        client_id: ReplicaId,
        host: str = "127.0.0.1",
        port: int = 0,
        reconnect_seed: int = 0,
        max_connect_attempts: int = 8,
        roster: Optional[List[Tuple[str, int]]] = None,
        max_reconnect_attempts: Optional[int] = None,
        heartbeat_interval: Optional[float] = HEARTBEAT_INTERVAL,
        doc: str = "",
        codecs: Optional[List[str]] = None,
        batch: bool = True,
    ) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        #: document this client edits; ``""`` lets the server choose its
        #: default (the pre-fleet behaviour).  A fleet router reads the
        #: field from the hello to pick the owning worker.
        self.doc = doc
        #: codec preference list offered in the hello.  A non-empty
        #: offer makes this a v2 session (compact contexts, GC pins,
        #: floor rebasing) whichever codec the server picks; an empty
        #: tuple reproduces a v1 client exactly.
        self.codecs: Tuple[str, ...] = (
            tuple(codecs) if codecs is not None else tuple(SUPPORTED_CODECS)
        )
        #: ask the server to coalesce its broadcast bursts for us
        self.batch = batch
        #: the codec the current connection negotiated
        self.codec = CODEC_JSON
        self.css = CssClient(client_id)
        self.sender = SessionSender((client_id, SERVER_ID))
        self.receiver = SessionReceiver((SERVER_ID, client_id))
        #: unacknowledged outgoing messages, seq -> ClientOperation.
        #: Stored as protocol messages, not encoded bodies: the wire
        #: encoding depends on the *current* connection's dialect and on
        #: the oracle's base at transmission time, so each (re)transmit
        #: encodes afresh.
        self.unacked: Dict[int, ClientOperation] = {}
        #: per-seq generation floor (``delivered`` when the op was
        #: generated): the lowest serial the op's context can reference.
        #: The GC pin reported to the server is the minimum over these.
        self._gen_floor: Dict[int, int] = {}
        #: out-of-order broadcast *bodies* parked until the session
        #: releases them — decoded only at release, because a compact
        #: context resolves against the oracle's base at decode time
        self.parked: Dict[int, Dict[str, Any]] = {}
        #: reconnects answered by whole-state transfer (GC passed us)
        self.state_transfers = 0
        self.backoff = RetransmitPolicy(seed=reconnect_seed)
        self.max_connect_attempts = max_connect_attempts
        self.max_reconnect_attempts = max_reconnect_attempts
        #: replica roster for failover; updated from welcome/redirect
        self.roster: Optional[List[Tuple[str, int]]] = (
            [(str(h), int(p)) for h, p in roster] if roster else None
        )
        self._target = 0
        if self.roster and (host, port) in self.roster:
            self._target = self.roster.index((host, port))
        #: highest epoch observed; frames from lower epochs are stale
        self.epoch = 0
        self.view = 0
        self.redirects = 0
        self.reconnect_cycles = 0
        self.connects = 0
        self.resync_frames = 0
        #: seconds between keepalive pings on an idle connection (feeds
        #: the server's idle deadline); ``None`` disables the heartbeat
        self.heartbeat_interval = heartbeat_interval
        #: times this client was evicted as a slow consumer
        self.evictions = 0
        #: the most recent ``evicted`` envelope's reason, for diagnostics
        self.last_eviction: Optional[str] = None
        #: times admission control answered ``retry_after`` on connect
        self.shed_retries = 0
        #: operations the server rejected with a typed ``error`` envelope
        self.op_rejections = 0
        self.rtts: Deque[float] = deque(maxlen=RTT_SAMPLE_CAP)
        self._obs = get_obs()
        self._sent_at: Dict[Any, float] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._progress = asyncio.Event()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def delivered(self) -> int:
        """Broadcasts consumed in order (the resync cursor)."""
        return self.receiver.cumulative_ack

    def _current_target(self) -> "Tuple[str, int]":
        if self.roster:
            return self.roster[self._target % len(self.roster)]
        return (self.host, self.port)

    def _advance_target(self) -> None:
        """Walk the roster round-robin after a failed dial/handshake."""
        if self.roster:
            self._target = (self._target + 1) % len(self.roster)

    def _absorb_redirect(self, frame: Dict[str, Any]) -> None:
        """Jump to the primary a backup pointed us at."""
        self.redirects += 1
        self.view = max(self.view, int(frame.get("view", 0)))
        self.epoch = max(self.epoch, int(frame.get("epoch", 0)))
        roster_obj = frame.get("roster")
        if roster_obj:
            self.roster = roster_from_obj(roster_obj)
        target = (str(frame.get("host", "")), int(frame.get("port", 0)))
        if self.roster and target in self.roster:
            self._target = self.roster.index(target)
        elif self.roster:
            self._target = int(frame.get("primary", 0)) % len(self.roster)
        else:
            self.host, self.port = target
        self._obs.trace(
            "net.redirected",
            client=self.client_id,
            view=self.view,
            target=f"{target[0]}:{target[1]}",
        )

    async def connect(self) -> None:
        """Dial, handshake, resync, and start the reader task.

        With a roster, failed dials and ``redirect`` answers walk the
        replica list (seeded backoff between attempts) until a primary
        answers ``welcome``; ``max_connect_attempts`` failed dials raise
        :class:`ReconnectExhausted`.
        """
        attempt = 0
        # Redirect chains are bounded: a full roster sweep plus slack.
        redirect_budget = max(4, 2 * len(self.roster or ()))
        while True:
            host, port = self._current_target()
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                attempt += 1
                if attempt >= self.max_connect_attempts:
                    raise ReconnectExhausted(
                        f"{self.client_id}: no server reachable after "
                        f"{attempt} dial attempts"
                    )
                self._advance_target()
                await asyncio.sleep(self.backoff.timeout(attempt))
                continue
            try:
                hello = encode_envelope(
                    "hello",
                    client=self.client_id,
                    delivered=self.delivered,
                    epoch=self.epoch,
                    doc=self.doc,
                )
                if self.codecs:
                    # Offering codecs is what marks the session v2; a
                    # bare hello reproduces the v1 wire exactly.
                    hello["codecs"] = list(self.codecs)
                    hello["features"] = {"batch": self.batch}
                    hello["pin"] = self._pin()
                await write_frame(writer, hello, doc=self.doc)
                first = await read_frame(reader, doc=self.doc)
            except (ConnectionError, OSError):
                writer.close()
                attempt += 1
                if attempt >= self.max_connect_attempts:
                    raise ReconnectExhausted(
                        f"{self.client_id}: handshake kept failing after "
                        f"{attempt} attempts"
                    )
                self._advance_target()
                await asyncio.sleep(self.backoff.timeout(attempt))
                continue
            if first is None or first.get("type") == "evicted":
                # The link died before a welcome arrived — the hello (or
                # the reply) was lost in transit, or the server's idle
                # deadline reaped the half-open session and its eviction
                # notice beat the close.  Either way: a failed attempt,
                # not a protocol violation.
                writer.close()
                attempt += 1
                if attempt >= self.max_connect_attempts:
                    raise ReconnectExhausted(
                        f"{self.client_id}: handshake kept dying after "
                        f"{attempt} attempts"
                    )
                self._advance_target()
                await asyncio.sleep(self.backoff.timeout(attempt))
                continue
            if first.get("type") == "retry_after":
                # Admission control shed us: honor the server's pacing
                # hint with the seeded backoff on top, so a shed herd
                # does not stampede back in lockstep.
                writer.close()
                self.shed_retries += 1
                self._obs.trace(
                    "net.shed_retry",
                    client=self.client_id,
                    seconds=first.get("seconds"),
                    reason=first.get("reason"),
                )
                attempt += 1
                if attempt >= self.max_connect_attempts:
                    raise ReconnectExhausted(
                        f"{self.client_id}: shed by admission control "
                        f"across {attempt} attempts"
                    )
                pause = max(0.0, float(first.get("seconds", 0.0)))
                await asyncio.sleep(
                    max(pause, self.backoff.timeout(attempt))
                )
                continue
            if first is not None and first.get("type") == "redirect":
                writer.close()
                self._absorb_redirect(first)
                redirect_budget -= 1
                if redirect_budget <= 0:
                    # Redirect loop: the roster disagrees about the
                    # primary (mid view-change).  Treat as a failed
                    # attempt and back off before trying again.
                    attempt += 1
                    if attempt >= self.max_connect_attempts:
                        raise ReconnectExhausted(
                            f"{self.client_id}: redirect loop persisted "
                            f"across {attempt} attempts"
                        )
                    redirect_budget = max(4, 2 * len(self.roster or ()))
                    await asyncio.sleep(self.backoff.timeout(attempt))
                continue
            welcome = first
            break
        # A batching server may coalesce the welcome with the first
        # resync frames into one multi envelope; unwrap it and hold the
        # trailing members until the session state is set up below.
        trailing: List[Dict[str, Any]] = []
        if welcome is not None and welcome.get("type") == "multi":
            members = list(welcome.get("frames") or ())
            welcome = members[0] if members else None
            trailing = members[1:]
        self._reader, self._writer = reader, writer
        self.connects += 1
        if self.connects > 1:
            self._obs.net_reconnects.inc()
            self._obs.trace(
                "net.reconnect", client=self.client_id, attempt=self.connects
            )
        if welcome is None or welcome["type"] != "welcome":
            raise ProtocolError(
                f"{self.client_id}: expected welcome, got {welcome!r}"
            )
        self.view = max(self.view, int(welcome.get("view", 0)))
        self.epoch = max(self.epoch, int(welcome.get("epoch", 0)))
        self.codec = str(welcome.get("codec") or CODEC_JSON)
        roster_obj = welcome.get("roster")
        if roster_obj:
            self.roster = roster_from_obj(roster_obj)
        state = welcome.get("state")
        initial = welcome.get("initial") or ""
        if (
            initial
            and self.connects == 1
            and self.sender.next_seq == 1
            and state is None
        ):
            # First contact with a seeded document: adopt the server's
            # initial text before any history applies.  The canonical
            # ``from_string`` identities make both sides byte-identical.
            self.css = CssClient(
                self.client_id, ListDocument.from_string(initial)
            )
        if state is not None:
            # GC truncated the records our cursor needs: adopt the
            # server's snapshot wholesale instead of replaying them.
            self._adopt_state(state)
        resync = int(welcome.get("resync", 0))
        self.resync_frames += resync
        if resync:
            self._obs.net_resync_frames.inc(resync)
        self._absorb_ack(int(welcome.get("ack", 0)))
        floor = welcome.get("floor")
        if floor is not None and self.codecs:
            self._maybe_rebase(min(int(floor), self.delivered))
        # Retransmit the unacknowledged suffix in sequence order; the
        # server's session receiver suppresses anything it already has.
        if self.unacked:
            self._obs.session_retransmits.inc(len(self.unacked))
        for seq in sorted(self.unacked):
            await write_frame(
                writer,
                self._data_envelope(seq, self._encode_op(self.unacked[seq])),
                doc=self.doc,
                codec=self.codec,
            )
        for member in trailing:
            self._handle_frame(member)
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self.heartbeat_interval is not None:
            self._heartbeat_task = asyncio.ensure_future(
                self._heartbeat_loop()
            )

    async def _heartbeat_loop(self) -> None:
        """Ping on idle so the server's read deadline sees a live peer."""
        try:
            while self._writer is not None:
                await asyncio.sleep(self.heartbeat_interval)
                await self.ping()
        except (ConnectionError, OSError):
            return  # the reader task notices the dead link and reconnects
        except asyncio.CancelledError:
            return

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader, doc=self.doc)
                if frame is None:
                    return
                self._handle_frame(frame)
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            self._progress.set()

    async def drop(self) -> None:
        """Abruptly sever the connection (no ``bye``), keeping all state."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None

    async def close(self) -> None:
        """Graceful shutdown: say ``bye`` and release the socket."""
        if self._writer is not None:
            try:
                await write_frame(
                    self._writer, encode_envelope("bye"), doc=self.doc
                )
            except ConnectionError:
                pass
        await self.drop()

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def _absorb_ack(self, ack: int) -> None:
        ack = min(ack, self.sender.next_seq - 1)
        self.sender.ack(ack)
        for seq in [s for s in self.unacked if s <= ack]:
            del self.unacked[seq]
            self._gen_floor.pop(seq, None)
        obs = self._obs
        if obs.enabled:
            obs.net_unacked_frames.set(len(self.unacked))

    def _pin(self) -> int:
        """The GC pin: the floor the server must hold for this client.

        The minimum generation floor over the unacknowledged ops (each
        recorded as ``delivered`` at generate time — the lowest serial
        that op's context can reference), clamped to the consumption
        cursor so a resync always works from records.  With nothing
        outstanding the cursor itself is the pin.
        """
        if self._gen_floor:
            return min(min(self._gen_floor.values()), self.delivered)
        return self.delivered

    def _encode_op(self, message: ClientOperation) -> Dict[str, Any]:
        """Encode one outgoing op in the current connection's dialect."""
        if self.codecs:
            return compact_client_op_obj(message, self.css.oracle)
        return message_to_obj(message)

    def _data_envelope(self, seq: int, body: Dict[str, Any]) -> Dict[str, Any]:
        envelope = encode_envelope(
            "data", seq=seq, ack=self.delivered, epoch=self.epoch, body=body
        )
        if self.codecs:
            envelope["pin"] = self._pin()
        return envelope

    def _maybe_rebase(self, floor: int) -> None:
        """Trim the local mirror to the server's GC floor.

        The server never advertises a floor above this client's pin, so
        every unacknowledged op's context stays expressible (members at
        or below the floor are implied by it) and every future broadcast
        decodes.  Clamping to ``delivered`` keeps a floor that raced
        ahead of an in-flight resync from trimming serials not yet seen.
        """
        if floor > self.css.oracle.base:
            self.css.rebase_to_serial(floor)

    def _adopt_state(self, state: Dict[str, Any]) -> None:
        """Adopt a whole-state transfer (the post-grace resync path).

        Replaces the protocol state with the server's snapshot: the
        rebased space, the serial order past its base, and a session
        repositioned at ``op_seq`` (how many of our ops the server has
        serialised — seqs above it were never consumed, so their numbers
        are safely reused).  Unacknowledged-and-unserialised ops are
        dropped with the old state; everything the server ever
        acknowledged is inside the snapshot.
        """
        snap = state["snapshot"]
        op_seq = int(state["op_seq"])
        delivered = int(state["delivered"])
        css = CssClient(self.client_id)
        base = int(snap.get("base", 0))
        if base:
            css.oracle.trim_below(base)
        for opid_obj, serial in sorted(snap["serials"], key=lambda i: i[1]):
            css.oracle.record(opid_from_obj(opid_obj), int(serial))
        css.space = space_from_obj(snap["space"], css.oracle)
        css.restore_session(pending=[], next_seq=op_seq + 1)
        self.css = css
        self.unacked.clear()
        self.parked.clear()
        self._sent_at.clear()
        self._gen_floor.clear()
        self.sender = SessionSender((self.client_id, SERVER_ID))
        self.sender.restore({"next_seq": op_seq + 1, "acked": op_seq})
        self.receiver = SessionReceiver((SERVER_ID, self.client_id))
        self.receiver.fast_forward(delivered)
        self.state_transfers += 1
        self._obs.net_state_transfers.labels(self.doc).inc()
        self._obs.trace(
            "net.state_transfer",
            client=self.client_id,
            delivered=delivered,
            op_seq=op_seq,
            base=base,
        )

    def _handle_frame(self, frame: Dict[str, Any]) -> None:
        kind = frame["type"]
        if kind == "multi":
            # The server coalesced a burst; members are ordinary frames.
            for member in frame.get("frames", ()):
                self._handle_frame(member)
            return
        frame_epoch = int(frame.get("epoch", self.epoch))
        if frame_epoch > self.epoch:
            self.epoch = frame_epoch
        elif frame_epoch < self.epoch and kind == "data":
            # A deposed primary's leftover broadcast: it may carry an
            # operation the view change discarded.  Never apply it.
            self._obs.repl_stale_rejected.inc()
            return
        if kind == "ack":
            self._absorb_ack(int(frame.get("ack", 0)))
            floor = frame.get("floor")
            if floor is not None and self.codecs:
                self._maybe_rebase(min(int(floor), self.delivered))
            self._progress.set()
            return
        if kind == "pong":
            return
        if kind == "evicted":
            # The server dropped us as a slow consumer.  Nothing is
            # lost: the WAL re-ships every missed broadcast on the next
            # connect, and our unacked frames retransmit.  Record it and
            # let the read loop end when the server hangs up.
            self.evictions += 1
            self.last_eviction = str(frame.get("reason", ""))
            self._obs.trace(
                "net.evicted", client=self.client_id, reason=self.last_eviction
            )
            self._progress.set()
            return
        if kind == "error":
            # The server rejected one of our frames (e.g. oversized) but
            # kept the session alive.
            self.op_rejections += 1
            self._obs.trace(
                "net.op_rejected",
                client=self.client_id,
                reason=frame.get("reason"),
            )
            self._progress.set()
            return
        if kind != "data":
            return
        self._absorb_ack(int(frame.get("ack", 0)))
        seq = int(frame["seq"])
        # Park the encoded body; a compact context resolves against the
        # oracle's base, which moves as floors arrive — so decode only
        # at release, immediately before applying.
        released = self.receiver.receive(seq)
        if released == 0:
            if seq >= self.receiver.expected:
                self.parked[seq] = frame["body"]
        else:
            self.parked[seq] = frame["body"]
            first = self.receiver.expected - released
            for released_seq in range(first, self.receiver.expected):
                body = self.parked.pop(released_seq)
                payload = message_from_wire(body, self.css.oracle)
                if not isinstance(payload, ServerOperation):
                    raise ProtocolError(
                        f"{self.client_id}: server data frames must carry "
                        f"ServerOperation, got {type(payload).__name__}"
                    )
                self._apply(payload)
            obs = self._obs
            if obs.enabled:
                obs.net_parked_frames.set(len(self.parked))
        floor = frame.get("floor")
        if floor is not None and self.codecs:
            self._maybe_rebase(min(int(floor), self.delivered))
        self._progress.set()

    def _apply(self, broadcast: ServerOperation) -> None:
        is_echo = broadcast.origin == self.client_id
        opid = broadcast.operation.opid
        self.css.receive(broadcast)
        if is_echo and opid in self._sent_at:
            rtt = time.perf_counter() - self._sent_at.pop(opid)
            self.rtts.append(rtt)
            self._obs.net_rtt.observe(rtt)

    # ------------------------------------------------------------------
    # User operations
    # ------------------------------------------------------------------
    async def generate(self, spec: OpSpec) -> None:
        """Apply one user edit locally and ship it to the server."""
        result = self.css.generate(spec)
        seq = self.sender.send()
        self.unacked[seq] = result.outgoing
        self._gen_floor[seq] = self.delivered
        self._sent_at[result.operation.opid] = time.perf_counter()
        if self._writer is None:
            return  # offline: the message stays buffered for retransmission
        try:
            await write_frame(
                self._writer,
                self._data_envelope(seq, self._encode_op(result.outgoing)),
                doc=self.doc,
                codec=self.codec,
            )
        except ConnectionError:
            self._writer = None

    async def ping(self) -> None:
        if self._writer is not None:
            envelope = encode_envelope("ping", t=time.perf_counter())
            if self.codecs:
                # The heartbeat carries the pin so an idle client's GC
                # floor keeps tracking its cursor.
                envelope["pin"] = self._pin()
            await write_frame(
                self._writer, envelope, doc=self.doc, codec=self.codec
            )

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converged(self, total_operations: int) -> bool:
        """All broadcasts consumed and nothing of ours still pending."""
        return (
            self.delivered >= total_operations
            and self.css.pending_count == 0
            and not self.unacked
        )

    async def wait_converged(
        self, total_operations: int, timeout: float = 30.0
    ) -> bool:
        """Wait until :meth:`converged`; reconnect if the link dies.

        Each re-established connection counts against
        ``max_reconnect_attempts`` (when configured); exhausting the
        budget raises :class:`ReconnectExhausted` instead of silently
        spinning until the timeout.
        """
        deadline = time.monotonic() + timeout
        while not self.converged(total_operations):
            if time.monotonic() > deadline:
                return False
            if not self.connected or (
                self._reader_task is not None and self._reader_task.done()
            ):
                self.reconnect_cycles += 1
                if (
                    self.max_reconnect_attempts is not None
                    and self.reconnect_cycles > self.max_reconnect_attempts
                ):
                    raise ReconnectExhausted(
                        f"{self.client_id}: gave up after "
                        f"{self.max_reconnect_attempts} reconnect attempts"
                    )
                await self.drop()
                await self.connect()
            self._progress.clear()
            try:
                await asyncio.wait_for(self._progress.wait(), timeout=0.5)
            except asyncio.TimeoutError:
                pass
        return True

    def signature(self) -> str:
        return document_signature(self.css.document)
