"""The deployed CSS client: a ``CssClient`` behind a TCP connection.

A :class:`NetClient` owns exactly what a simulated client endpoint owns —
a :class:`~repro.jupiter.css.CssClient` plus a
:class:`~repro.jupiter.session.SessionSender` /
:class:`~repro.jupiter.session.SessionReceiver` pair — and keeps every
unacknowledged outgoing frame retransmittable, so a dropped connection
loses nothing:

* on (re)connect it sends ``hello {client, delivered}`` where
  ``delivered`` is its receiver's cumulative ack (broadcasts consumed);
* the server's ``welcome {ack, resync}`` tells it which of its pending
  frames the server already consumed (dropped from the buffer) and how
  many broadcasts will be re-shipped from the write-ahead log;
* it then retransmits its unacknowledged suffix in sequence order; the
  server's receiver suppresses any duplicates, restoring exactly-once.

Broadcast frames arriving out of order across a reconnect (live traffic
racing the WAL resync) are parked by sequence number and released to the
protocol strictly in order — the same discipline the simulator enforces.

Reconnect backoff reuses :class:`~repro.jupiter.session.RetransmitPolicy`
so retry pacing stays seeded and deterministic per client.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.common.ids import SERVER_ID, ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient
from repro.jupiter.messages import ServerOperation
from repro.jupiter.session import (
    RetransmitPolicy,
    SessionReceiver,
    SessionSender,
)
from repro.model.schedule import OpSpec
from repro.net.codec import (
    document_signature,
    encode_envelope,
    message_from_obj,
    message_to_obj,
)
from repro.net.transport import read_frame, write_frame
from repro.obs import get_obs

#: Most recent round-trip samples kept for the loadgen report; the full
#: distribution lives in the ``repro_net_rtt_seconds`` histogram, which
#: is bounded by construction, so the raw-sample window can be small.
RTT_SAMPLE_CAP = 2048


class NetClient:
    """One deployed CSS client endpoint."""

    def __init__(
        self,
        client_id: ReplicaId,
        host: str = "127.0.0.1",
        port: int = 0,
        reconnect_seed: int = 0,
        max_connect_attempts: int = 8,
    ) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.css = CssClient(client_id)
        self.sender = SessionSender((client_id, SERVER_ID))
        self.receiver = SessionReceiver((SERVER_ID, client_id))
        #: unacknowledged outgoing frames, seq -> message envelope obj
        self.unacked: Dict[int, Dict[str, Any]] = {}
        #: out-of-order broadcasts parked until the session releases them
        self.parked: Dict[int, ServerOperation] = {}
        self.backoff = RetransmitPolicy(seed=reconnect_seed)
        self.max_connect_attempts = max_connect_attempts
        self.connects = 0
        self.resync_frames = 0
        self.rtts: Deque[float] = deque(maxlen=RTT_SAMPLE_CAP)
        self._obs = get_obs()
        self._sent_at: Dict[Any, float] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._progress = asyncio.Event()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def delivered(self) -> int:
        """Broadcasts consumed in order (the resync cursor)."""
        return self.receiver.cumulative_ack

    async def connect(self) -> None:
        """Dial, handshake, resync, and start the reader task."""
        attempt = 0
        while True:
            attempt += 1
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError:
                if attempt >= self.max_connect_attempts:
                    raise
                await asyncio.sleep(self.backoff.timeout(attempt))
        self._reader, self._writer = reader, writer
        self.connects += 1
        if self.connects > 1:
            self._obs.net_reconnects.inc()
            self._obs.trace(
                "net.reconnect", client=self.client_id, attempt=self.connects
            )
        await write_frame(
            writer,
            encode_envelope(
                "hello", client=self.client_id, delivered=self.delivered
            ),
        )
        welcome = await read_frame(reader)
        if welcome is None or welcome["type"] != "welcome":
            raise ProtocolError(
                f"{self.client_id}: expected welcome, got {welcome!r}"
            )
        initial = welcome.get("initial") or ""
        if initial and self.connects == 1 and self.sender.next_seq == 1:
            # First contact with a seeded document: adopt the server's
            # initial text before any history applies.  The canonical
            # ``from_string`` identities make both sides byte-identical.
            self.css = CssClient(
                self.client_id, ListDocument.from_string(initial)
            )
        resync = int(welcome.get("resync", 0))
        self.resync_frames += resync
        if resync:
            self._obs.net_resync_frames.inc(resync)
        self._absorb_ack(int(welcome.get("ack", 0)))
        # Retransmit the unacknowledged suffix in sequence order; the
        # server's session receiver suppresses anything it already has.
        if self.unacked:
            self._obs.session_retransmits.inc(len(self.unacked))
        for seq in sorted(self.unacked):
            await write_frame(
                writer,
                encode_envelope(
                    "data",
                    seq=seq,
                    ack=self.delivered,
                    body=self.unacked[seq],
                ),
            )
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                self._handle_frame(frame)
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            self._progress.set()

    async def drop(self) -> None:
        """Abruptly sever the connection (no ``bye``), keeping all state."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None

    async def close(self) -> None:
        """Graceful shutdown: say ``bye`` and release the socket."""
        if self._writer is not None:
            try:
                await write_frame(self._writer, encode_envelope("bye"))
            except ConnectionError:
                pass
        await self.drop()

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def _absorb_ack(self, ack: int) -> None:
        ack = min(ack, self.sender.next_seq - 1)
        self.sender.ack(ack)
        for seq in [s for s in self.unacked if s <= ack]:
            del self.unacked[seq]
        obs = self._obs
        if obs.enabled:
            obs.net_unacked_frames.set(len(self.unacked))

    def _handle_frame(self, frame: Dict[str, Any]) -> None:
        kind = frame["type"]
        if kind == "ack":
            self._absorb_ack(int(frame.get("ack", 0)))
            self._progress.set()
            return
        if kind == "pong":
            return
        if kind != "data":
            return
        self._absorb_ack(int(frame.get("ack", 0)))
        seq = int(frame["seq"])
        payload = message_from_obj(frame["body"])
        if not isinstance(payload, ServerOperation):
            raise ProtocolError(
                f"{self.client_id}: server data frames must carry "
                f"ServerOperation, got {type(payload).__name__}"
            )
        released = self.receiver.receive(seq)
        if released == 0:
            if seq >= self.receiver.expected:
                self.parked[seq] = payload
            return
        self.parked[seq] = payload
        first = self.receiver.expected - released
        for released_seq in range(first, self.receiver.expected):
            self._apply(self.parked.pop(released_seq))
        obs = self._obs
        if obs.enabled:
            obs.net_parked_frames.set(len(self.parked))
        self._progress.set()

    def _apply(self, broadcast: ServerOperation) -> None:
        is_echo = broadcast.origin == self.client_id
        opid = broadcast.operation.opid
        self.css.receive(broadcast)
        if is_echo and opid in self._sent_at:
            rtt = time.perf_counter() - self._sent_at.pop(opid)
            self.rtts.append(rtt)
            self._obs.net_rtt.observe(rtt)

    # ------------------------------------------------------------------
    # User operations
    # ------------------------------------------------------------------
    async def generate(self, spec: OpSpec) -> None:
        """Apply one user edit locally and ship it to the server."""
        result = self.css.generate(spec)
        seq = self.sender.send()
        body = message_to_obj(result.outgoing)
        self.unacked[seq] = body
        self._sent_at[result.operation.opid] = time.perf_counter()
        if self._writer is None:
            return  # offline: the frame stays buffered for retransmission
        try:
            await write_frame(
                self._writer,
                encode_envelope(
                    "data", seq=seq, ack=self.delivered, body=body
                ),
            )
        except ConnectionError:
            self._writer = None

    async def ping(self) -> None:
        if self._writer is not None:
            await write_frame(
                self._writer,
                encode_envelope("ping", t=time.perf_counter()),
            )

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converged(self, total_operations: int) -> bool:
        """All broadcasts consumed and nothing of ours still pending."""
        return (
            self.delivered >= total_operations
            and self.css.pending_count == 0
            and not self.unacked
        )

    async def wait_converged(
        self, total_operations: int, timeout: float = 30.0
    ) -> bool:
        """Wait until :meth:`converged`; reconnect if the link dies."""
        deadline = time.monotonic() + timeout
        while not self.converged(total_operations):
            if time.monotonic() > deadline:
                return False
            if not self.connected or (
                self._reader_task is not None and self._reader_task.done()
            ):
                await self.drop()
                await self.connect()
            self._progress.clear()
            try:
                await asyncio.wait_for(self._progress.wait(), timeout=0.5)
            except asyncio.TimeoutError:
                pass
        return True

    def signature(self) -> str:
        return document_signature(self.css.document)
