"""Fleet load generation: router + K workers x D documents x C clients.

The fleet analogue of :mod:`repro.net.loadgen`, and the first place the
paper's convergence property is checked *per document across a sharded
fleet*: every client of every document must end byte-identical to its
document's other clients **and** to the owning worker's recovered state
— while documents placed on different workers serialise concurrently
with zero coupling.

The coordinator:

1. spawns ``repro fleet route`` on an ephemeral port;
2. spawns K ``repro fleet worker`` processes sharing one ``wal_dir``
   (placement moves, storage stays), and waits until the router's admin
   plane reports all K leases live;
3. spawns D x C ``repro connect --doc`` clients, all pointed at the
   *router* — each one's first hello is answered with a redirect to its
   document's owner, exercising the client's existing redirect/roster
   machinery;
4. optionally SIGKILLs one worker mid-run: its lease lapses, the router
   re-places its documents onto the survivors (rendezvous argmax), the
   orphaned clients walk their roster back through the router, and the
   new owners recover the shards from the shared per-document WAL files
   — **zero acknowledged operations may be lost**;
5. verifies per-document signature equality (clients + owning worker),
   merges every process's metrics snapshot exactly, and reports
   per-shard and fleet-aggregate throughput plus placement skew.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.net.fleet.placement import placement_skew
from repro.net.loadgen import (
    _child_env,
    admin,
    percentile,
    split_ops,
)
from repro.obs import merge_snapshots, snapshot_total

# ----------------------------------------------------------------------
# Process spawning
# ----------------------------------------------------------------------


def _spawn_announced(
    command: List[str], marker: str
) -> Tuple[subprocess.Popen, Dict[str, Any]]:
    """Spawn a subprocess and parse its one-line ``marker {json}`` banner."""
    process = subprocess.Popen(
        command,
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            stderr = process.stderr.read() if process.stderr else ""
            raise RuntimeError(f"{marker} process failed to start:\n{stderr}")
        if line.startswith(marker + " "):
            return process, json.loads(line[len(marker) + 1:])


def _spawn_router(
    host: str, lease_seconds: float, heartbeat_interval: float
) -> Tuple[subprocess.Popen, int]:
    process, announced = _spawn_announced(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "route",
            "--host",
            host,
            "--port",
            "0",
            "--lease",
            str(lease_seconds),
            "--heartbeat",
            str(heartbeat_interval),
            "--announce",
            "--quiet",
        ],
        "REPRO-FLEET-ROUTER",
    )
    return process, int(announced["port"])


def _spawn_worker(
    worker_id: str,
    host: str,
    router_port: int,
    wal_dir: str,
    seed: int,
) -> Tuple[subprocess.Popen, int]:
    process, announced = _spawn_announced(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "worker",
            "--worker",
            worker_id,
            "--router",
            f"{host}:{router_port}",
            "--host",
            host,
            "--port",
            "0",
            "--wal-dir",
            wal_dir,
            "--heartbeat-seed",
            str(seed),
            "--announce",
            "--quiet",
        ],
        "REPRO-FLEET-WORKER",
    )
    return process, int(announced["port"])


def _await_live_workers(
    host: str, router_port: int, expected: int, deadline: float = 15.0
) -> Dict[str, Any]:
    """Poll the router until ``expected`` leases are live."""
    end = time.monotonic() + deadline
    while True:
        try:
            stats = admin(host, router_port, "stats")
            if int(stats.get("live_workers", 0)) >= expected:
                return stats
        except (ConnectionError, OSError):
            pass
        if time.monotonic() >= end:
            raise RuntimeError(
                f"router never saw {expected} live workers "
                f"within {deadline:.1f}s"
            )
        time.sleep(0.1)


# ----------------------------------------------------------------------
# The fleet coordinator
# ----------------------------------------------------------------------
def run_fleet_loadgen(
    workers: int = 2,
    docs: int = 8,
    clients_per_doc: int = 3,
    ops_per_doc: int = 60,
    seed: int = 7,
    host: str = "127.0.0.1",
    op_interval: float = 0.02,
    timeout: float = 240.0,
    insert_ratio: float = 0.7,
    kill_worker: bool = False,
    kill_after: Optional[float] = None,
    lease_seconds: float = 1.2,
    heartbeat_interval: float = 0.3,
    wal_dir: Optional[str] = None,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Run the full fleet and report per-document convergence.

    ``ok`` is True iff every client of every document converged, each
    document's signatures (its clients plus the owning worker's admin
    signature) are byte-identical, and — with ``kill_worker`` — at
    least one lease expired, every re-placed document ended on a
    surviving worker, and no acknowledged operation was lost (which is
    what per-client convergence at ``expect_total`` certifies: every
    acked edit is in every replica's final state).
    """
    if workers < 1 or docs < 1 or clients_per_doc < 1:
        raise ValueError("need at least one worker, document, and client")
    if ops_per_doc < clients_per_doc:
        raise ValueError("need at least one operation per client")
    if kill_worker and workers < 2:
        raise ValueError("kill_worker needs at least two workers")

    def log(text: str) -> None:
        if not quiet:
            print(f"[fleet] {text}", flush=True)

    doc_names = [f"doc-{index}" for index in range(docs)]
    shares = split_ops(ops_per_doc, clients_per_doc)
    owned_dir = wal_dir is None
    if owned_dir:
        wal_dir = tempfile.mkdtemp(prefix="repro-fleet-")
    router_process: Optional[subprocess.Popen] = None
    worker_processes: List[Tuple[str, subprocess.Popen, int]] = []
    client_processes: List[Tuple[str, str, subprocess.Popen]] = []
    started = time.perf_counter()
    try:
        router_process, router_port = _spawn_router(
            host, lease_seconds, heartbeat_interval
        )
        log(f"router pid {router_process.pid} on {host}:{router_port}")
        for index in range(workers):
            worker_id = f"w{index}"
            process, port = _spawn_worker(
                worker_id, host, router_port, wal_dir, seed * 100 + index
            )
            worker_processes.append((worker_id, process, port))
            log(f"worker {worker_id} pid {process.pid} on {host}:{port}")
        _await_live_workers(host, router_port, workers)
        placement_before = {
            doc: admin(host, router_port, "route", doc=doc)["worker"]
            for doc in doc_names
        }
        log(f"initial placement: {placement_before}")
        for doc in doc_names:
            for cindex in range(clients_per_doc):
                name = f"{doc}-c{cindex}"
                command = [
                    sys.executable,
                    "-m",
                    "repro",
                    "connect",
                    "--host",
                    host,
                    "--port",
                    str(router_port),
                    "--doc",
                    doc,
                    "--client",
                    name,
                    "--ops",
                    str(shares[cindex]),
                    "--expect-total",
                    str(ops_per_doc),
                    "--seed",
                    str(seed * 10000 + doc_names.index(doc) * 100 + cindex),
                    "--insert-ratio",
                    str(insert_ratio),
                    "--op-interval",
                    str(op_interval),
                    "--timeout",
                    str(timeout),
                    # A client orphaned by a worker SIGKILL ping-pongs
                    # router -> dead-worker until the lease expires; give
                    # it budget to ride that out instead of giving up.
                    "--max-connect-attempts",
                    "64",
                    "--json",
                ]
                client_processes.append(
                    (
                        doc,
                        name,
                        subprocess.Popen(
                            command,
                            env=_child_env(),
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE,
                            text=True,
                        ),
                    )
                )
        log(
            f"spawned {len(client_processes)} clients "
            f"({clients_per_doc} per document, {shares} ops each)"
        )
        killed_worker = ""
        if kill_worker:
            delay = kill_after
            if delay is None:
                delay = max(2.0, shares[0] * op_interval * 0.5 + 1.0)
            time.sleep(delay)
            killed_worker, victim, victim_port = worker_processes[0]
            victim.kill()
            victim.wait()
            log(
                f"SIGKILLed worker {killed_worker} pid {victim.pid} "
                f"({host}:{victim_port}) after {delay:.1f}s"
            )
        reports: List[Dict[str, Any]] = []
        failures: List[str] = []
        for doc, name, process in client_processes:
            try:
                stdout, stderr = process.communicate(timeout=timeout + 30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                stdout, stderr = process.communicate()
                failures.append(f"{name}: timed out")
                continue
            lines = [l for l in stdout.splitlines() if l.strip()]
            if process.returncode != 0 or not lines:
                failures.append(
                    f"{name}: exit {process.returncode}\n{stderr.strip()}"
                )
                if lines:
                    try:
                        reports.append(json.loads(lines[-1]))
                    except json.JSONDecodeError:
                        pass
                continue
            reports.append(json.loads(lines[-1]))
        wall = time.perf_counter() - started
        router_stats = admin(host, router_port, "stats")
        router_metrics = admin(host, router_port, "metrics")
        placement_after = {
            doc: admin(host, router_port, "route", doc=doc)["worker"]
            for doc in doc_names
        }
        worker_addr = {
            worker_id: port
            for worker_id, process, port in worker_processes
            if process.poll() is None
        }
        # Per-document server-side signature from each doc's owner.
        server_signatures: Dict[str, str] = {}
        worker_metric_snapshots: List[Dict[str, Any]] = []
        per_doc_stats: Dict[str, Dict[str, Any]] = {}
        for doc in doc_names:
            owner = placement_after[doc]
            port = worker_addr.get(owner)
            if port is None:
                failures.append(f"{doc}: owner {owner} is not alive")
                continue
            view = admin(host, port, "signature", doc=doc)
            if "error" in view:
                # The new owner has not opened the shard yet (no client
                # reached it after re-placement) — recover it on demand
                # by asking again after a hello-less stats poll cannot
                # help; record the miss instead.
                failures.append(f"{doc}: {view['error']}")
                continue
            server_signatures[doc] = view["signature"]
            per_doc_stats[doc] = {
                "owner": owner,
                "serial": view["serial"],
                "document_length": len(view.get("document") or ""),
            }
        for worker_id, port in worker_addr.items():
            metrics = admin(host, port, "metrics")
            if metrics.get("snapshot", {}).get("metrics"):
                worker_metric_snapshots.append(metrics["snapshot"])
    finally:
        for _worker_id, process, port in worker_processes:
            if process.poll() is not None:
                continue
            try:
                admin(host, port, "shutdown")
            except (ConnectionError, OSError):
                pass
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
        if router_process is not None and router_process.poll() is None:
            try:
                admin(host, router_port, "shutdown")
            except (ConnectionError, OSError):
                pass
            try:
                router_process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                router_process.kill()
        for _doc, _name, process in client_processes:
            if process.poll() is None:
                process.kill()
        if owned_dir:
            shutil.rmtree(wal_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    by_doc: Dict[str, List[Dict[str, Any]]] = {doc: [] for doc in doc_names}
    for report in reports:
        by_doc.setdefault(report.get("doc", ""), []).append(report)
    doc_results: Dict[str, Dict[str, Any]] = {}
    all_identical = True
    all_converged = not failures
    for doc in doc_names:
        doc_reports = by_doc.get(doc, [])
        signatures = {r["client"]: r["signature"] for r in doc_reports}
        if doc in server_signatures:
            signatures[f"worker:{placement_after[doc]}"] = server_signatures[
                doc
            ]
        identical = len(set(signatures.values())) == 1 and bool(signatures)
        converged = len(doc_reports) == clients_per_doc and all(
            r["converged"] for r in doc_reports
        )
        all_identical = all_identical and identical
        all_converged = all_converged and converged
        doc_results[doc] = {
            "converged": converged,
            "signatures_identical": identical,
            "signatures": signatures,
            "ops": ops_per_doc,
            "ops_per_sec": ops_per_doc / wall if wall > 0 else 0.0,
            **per_doc_stats.get(doc, {}),
        }
    total_ops = ops_per_doc * docs
    client_metrics = merge_snapshots(
        [r["metrics"] for r in reports if r.get("metrics", {}).get("metrics")]
    )
    fleet_metrics = merge_snapshots(
        [client_metrics] + worker_metric_snapshots
        + (
            [router_metrics["snapshot"]]
            if router_metrics.get("snapshot", {}).get("metrics")
            else []
        )
    )
    redirect_counts = [r["redirects"] for r in reports]
    rtts = [sample for r in reports for sample in r.get("rtt_ms", [])]
    live_workers = sorted(worker_addr)
    skew = placement_skew(placement_after, live_workers)
    expirations = int(router_stats.get("expirations", 0))
    replaced_docs = sorted(
        doc
        for doc in doc_names
        if kill_worker and placement_before[doc] != placement_after[doc]
    )
    replacement_ok = (not kill_worker) or (
        expirations >= 1
        and all(
            placement_after[doc] in live_workers
            for doc in doc_names
        )
        and all(
            placement_before[doc] == placement_after[doc]
            for doc in doc_names
            if placement_before[doc] in live_workers
        )
    )
    ok = (
        all_converged
        and all_identical
        and len(server_signatures) == docs
        and replacement_ok
    )
    return {
        "ok": ok,
        "workers": workers,
        "docs": docs,
        "clients_per_doc": clients_per_doc,
        "ops_per_doc": ops_per_doc,
        "total_ops": total_ops,
        "seed": seed,
        "killed_worker": killed_worker if kill_worker else "",
        "expirations": expirations,
        "replaced_docs": replaced_docs,
        "replacement_ok": replacement_ok,
        "converged": all_converged,
        "signatures_identical": all_identical,
        "failures": failures,
        "wall_seconds": wall,
        "ops_per_sec": total_ops / wall if wall > 0 else 0.0,
        "placement_before": placement_before,
        "placement_after": placement_after,
        "placement_skew": skew,
        "live_workers": live_workers,
        "redirects_total": sum(redirect_counts),
        "redirects_p99": percentile(
            [float(count) for count in redirect_counts], 0.99
        ),
        "rtt_ms_p50": percentile(rtts, 0.50),
        "rtt_ms_p99": percentile(rtts, 0.99),
        "router_stats": {
            "registrations": router_stats.get("registrations", 0),
            "expirations": expirations,
            "redirects": router_stats.get("redirects", 0),
            "replacements": router_stats.get("replacements", 0),
            "live_workers": router_stats.get("live_workers", 0),
        },
        "docs_detail": doc_results,
        "fleet_metrics": fleet_metrics,
        "fleet_frames_received": snapshot_total(
            fleet_metrics, "repro_net_frames_received_total"
        ),
        "fleet_frames_sent": snapshot_total(
            fleet_metrics, "repro_net_frames_sent_total"
        ),
        "clients": reports,
    }
