"""The fleet router: one process that maps ``doc_id -> worker``.

The router speaks the existing framed envelope protocol and *reuses*
the redirect machinery the replicated tier built: a client ``hello``
naming a document is answered with the same ``redirect {host, port,
roster}`` envelope a VSR backup sends, and the client's existing
redirect-budget/roster-walk logic does the rest.  The roster shipped in
every redirect is ``[router, owning worker]`` — so a client that loses
its worker walks back to the router and is re-routed to wherever the
document lives *now*.

Control plane (two new envelope types, documented in
:mod:`repro.net.codec`):

* ``fleet_register {worker, host, port}`` — a worker announces itself;
  answered with ``fleet_ack {lease, interval}`` quoting the lease and
  the heartbeat cadence the router expects;
* ``fleet_heartbeat {worker, docs}`` — lease renewal on the same
  connection, carrying the documents the worker currently hosts;
  answered with ``fleet_ack``.  A heartbeat for a lapsed lease is
  answered with ``fleet_ack {registered: false}`` — the worker must
  re-register (its ``(host, port)`` may be stale).

Lease expiry is the failure detector: a sweep task runs every half
lease, and when a worker lapses the router logs exactly which documents
move where (the rendezvous argmax over the survivors) — deterministic
re-placement, no assignment table to repair.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Any, Dict, Optional

from repro.net.codec import DEFAULT_DOC, WireError, encode_envelope
from repro.net.fleet.placement import place, placement_map, placement_skew
from repro.net.fleet.registry import WorkerRegistry
from repro.net.transport import WRITE_TIMEOUT, read_frame, write_frame
from repro.obs import get_obs

LOGGER = logging.getLogger("repro.net.fleet.router")

#: Default lease; a worker missing four 0.3s heartbeats is declared dead.
DEFAULT_LEASE = 1.2

#: Default heartbeat cadence quoted to workers in ``fleet_ack``.
DEFAULT_HEARTBEAT = 0.3


class FleetRouter:
    """Route clients to document owners; keep the worker registry."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = DEFAULT_LEASE,
        heartbeat_interval: float = DEFAULT_HEARTBEAT,
        retry_after: float = 0.5,
        write_timeout: Optional[float] = WRITE_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = WorkerRegistry(lease_seconds=lease_seconds)
        self.heartbeat_interval = heartbeat_interval
        #: seconds quoted in ``retry_after`` when no worker holds a lease
        self.retry_after = retry_after
        self.write_timeout = write_timeout
        self.started_at = time.monotonic()
        self.redirects = 0
        self.replacements = 0
        #: every document a client ever asked for -> its last known owner
        #: (re-placement bookkeeping; routing itself is stateless)
        self.docs_seen: Dict[str, str] = {}
        self._obs = get_obs()
        self._logger = LOGGER
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._closed = asyncio.Event()

    def _log(self, text: str) -> None:
        self._logger.info("%s", text)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        self._sweep_task = asyncio.ensure_future(self._sweep_loop())
        self._log(
            f"fleet router listening on {self.host}:{self.port} "
            f"(lease {self.registry.lease_seconds:.3f}s, heartbeat "
            f"{self.heartbeat_interval:.3f}s)"
        )

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def stop(self) -> None:
        self._closed.set()
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            self._sweep_task = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()

    # ------------------------------------------------------------------
    # Failure detection and re-placement
    # ------------------------------------------------------------------
    async def _sweep_loop(self) -> None:
        try:
            while not self._closed.is_set():
                await asyncio.sleep(self.registry.lease_seconds / 2.0)
                self._expire_lapsed()
        except asyncio.CancelledError:
            return

    def _expire_lapsed(self) -> None:
        for info in self.registry.expire():
            self._obs.fleet_expirations.inc()
            survivors = self.registry.live()
            moved = sorted(
                doc
                for doc, owner in self.docs_seen.items()
                if owner == info.worker_id
            )
            self._log(
                f"lease expired: {info.worker_id} "
                f"({info.host}:{info.port}, {info.heartbeats} heartbeats); "
                f"{len(moved)} documents to re-place over "
                f"{len(survivors)} survivors"
            )
            for doc in moved:
                if survivors:
                    new_owner = place(doc, survivors)
                    self.docs_seen[doc] = new_owner
                    self.replacements += 1
                    self._obs.fleet_replacements.inc()
                    self._log(f"re-placed {doc!r}: {info.worker_id} -> {new_owner}")
                else:
                    # Nobody to serve it; the next hello is shed with
                    # retry_after until a worker registers.
                    del self.docs_seen[doc]
            self._obs.trace(
                "fleet.expire", worker=info.worker_id, moved=len(moved)
            )
        self._obs.fleet_live_workers.set(len(self.registry))

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame(reader)
        except WireError as exc:
            self._log(f"rejecting connection: {exc}")
            writer.close()
            return
        if frame is None:
            writer.close()
            return
        kind = frame.get("type")
        try:
            if kind == "hello":
                await self._handle_hello(frame, writer)
            elif kind == "fleet_register":
                await self._handle_worker(frame, reader, writer)
            elif kind == "admin":
                await self._handle_admin(frame, writer)
            else:
                self._log(
                    f"first frame must be hello/fleet_register/admin, "
                    f"got {kind!r}"
                )
                writer.close()
        except (WireError, ConnectionError, asyncio.IncompleteReadError):
            writer.close()

    async def _handle_hello(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Answer a client hello with a redirect to the document's owner."""
        doc = str(frame.get("doc") or DEFAULT_DOC)
        client = str(frame.get("client", ""))
        workers = self.registry.live()
        if not workers:
            await write_frame(
                writer,
                encode_envelope(
                    "retry_after",
                    seconds=self.retry_after,
                    reason="no live workers hold a lease",
                ),
                timeout=self.write_timeout,
            )
            writer.close()
            return
        owner = place(doc, workers)
        self.docs_seen[doc] = owner
        host, port = self.registry.addr(owner)
        self.redirects += 1
        self._obs.fleet_redirects.inc()
        self._obs.trace(
            "fleet.route", client=client, doc=doc, worker=owner
        )
        # The same envelope a VSR backup answers with; the roster lets
        # the client walk back to this router when the worker dies.
        await write_frame(
            writer,
            encode_envelope(
                "redirect",
                host=host,
                port=port,
                primary=1,
                view=0,
                epoch=0,
                roster=[[self.host, self.port], [host, port]],
            ),
            timeout=self.write_timeout,
        )
        writer.close()

    async def _handle_worker(
        self,
        first: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one worker's register + heartbeat stream."""
        frame: Optional[Dict[str, Any]] = first
        worker_id = ""
        try:
            while frame is not None:
                kind = frame.get("type")
                if kind == "fleet_register":
                    worker_id = str(frame.get("worker", ""))
                    info = self.registry.register(
                        worker_id,
                        str(frame.get("host", "")),
                        int(frame.get("port", 0)),
                    )
                    self._obs.fleet_registrations.inc()
                    self._obs.fleet_live_workers.set(len(self.registry))
                    self._obs.trace(
                        "fleet.register",
                        worker=worker_id,
                        addr=f"{info.host}:{info.port}",
                    )
                    self._log(
                        f"registered {worker_id} at {info.host}:{info.port} "
                        f"({len(self.registry)} live)"
                    )
                    registered = True
                elif kind == "fleet_heartbeat":
                    worker_id = str(frame.get("worker", worker_id))
                    registered = self.registry.heartbeat(
                        worker_id, frame.get("docs")
                    )
                else:
                    break
                await write_frame(
                    writer,
                    encode_envelope(
                        "fleet_ack",
                        registered=registered,
                        lease=self.registry.lease_seconds,
                        interval=self.heartbeat_interval,
                    ),
                    timeout=self.write_timeout,
                )
                frame = await read_frame(reader)
        finally:
            writer.close()
            # The lease — not the connection — is the liveness signal:
            # a broken pipe here just means the worker will reconnect
            # (or its lease will lapse and the sweep re-places its docs).

    # ------------------------------------------------------------------
    # Admin plane
    # ------------------------------------------------------------------
    async def _handle_admin(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        command = frame.get("cmd")
        if command == "stats":
            self._expire_lapsed()  # stats reflect liveness *now*
            workers = self.registry.live()
            assignment = placement_map(sorted(self.docs_seen), workers) if workers else {}
            reply = encode_envelope(
                "admin_reply",
                role="router",
                doc_id="",
                docs_hosted=0,
                uptime_seconds=round(
                    time.monotonic() - self.started_at, 6
                ),
                workers={
                    worker: {
                        "host": self.registry.get(worker).host,
                        "port": self.registry.get(worker).port,
                        "heartbeats": self.registry.get(worker).heartbeats,
                        "docs": sorted(self.registry.get(worker).docs),
                    }
                    for worker in workers
                },
                live_workers=len(workers),
                registrations=self.registry.registrations,
                expirations=self.registry.expirations,
                redirects=self.redirects,
                replacements=self.replacements,
                docs_seen=len(self.docs_seen),
                placement=assignment,
                placement_skew=placement_skew(assignment, workers),
            )
        elif command == "route":
            doc = str(frame.get("doc") or DEFAULT_DOC)
            workers = self.registry.live()
            if not workers:
                reply = encode_envelope(
                    "admin_reply", error="no live workers hold a lease"
                )
            else:
                owner = place(doc, workers)
                host, port = self.registry.addr(owner)
                reply = encode_envelope(
                    "admin_reply",
                    doc=doc,
                    worker=owner,
                    host=host,
                    port=port,
                )
        elif command == "metrics":
            obs = self._obs
            reply = encode_envelope(
                "admin_reply",
                enabled=obs.enabled,
                exposition=obs.render(),
                snapshot=obs.snapshot(),
            )
        elif command == "shutdown":
            reply = encode_envelope("admin_reply", stopping=True)
            await write_frame(writer, reply, timeout=self.write_timeout)
            writer.close()
            await self.stop()
            return
        else:
            reply = encode_envelope(
                "admin_reply", error=f"unknown admin command {command!r}"
            )
        await write_frame(writer, reply, timeout=self.write_timeout)
        writer.close()


# ----------------------------------------------------------------------
# Process entry point (the ``repro fleet route`` verb)
# ----------------------------------------------------------------------
async def _route(
    host: str,
    port: int,
    lease_seconds: float,
    heartbeat_interval: float,
    retry_after: float,
    announce: bool,
) -> int:
    router = FleetRouter(
        host=host,
        port=port,
        lease_seconds=lease_seconds,
        heartbeat_interval=heartbeat_interval,
        retry_after=retry_after,
    )
    await router.start()
    if announce:
        print(
            "REPRO-FLEET-ROUTER "
            + json.dumps({"host": router.host, "port": router.port}),
            flush=True,
        )
    await router.wait_closed()
    return 0


def run_router(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_seconds: float = DEFAULT_LEASE,
    heartbeat_interval: float = DEFAULT_HEARTBEAT,
    retry_after: float = 0.5,
    announce: bool = False,
) -> int:
    """Blocking entry point for ``repro fleet route``."""
    try:
        return asyncio.run(
            _route(
                host,
                port,
                lease_seconds,
                heartbeat_interval,
                retry_after,
                announce,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
