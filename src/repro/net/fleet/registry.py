"""The worker registry: membership with leases.

Pure bookkeeping, no I/O — the router drives it from its frame handlers
and a sweep task, and tests drive it with an injected clock.  The state
machine per worker:

    (unknown) --register--> LIVE --heartbeat--> LIVE
        ^                     |
        |                     | no heartbeat for ``lease_seconds``
        +------register------ EXPIRED (forgotten)

A heartbeat from an expired (or never-registered) worker is *rejected* —
the worker must re-register, so the router's view of ``(host, port)`` is
always as fresh as its lease.  Expiry is the failure detector: a worker
that died without deregistering stops heartbeating, its lease lapses,
and :meth:`WorkerRegistry.expire` reports it exactly once so the router
can log the re-placement of its documents.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError


class WorkerInfo:
    """One registered worker's lease state."""

    def __init__(
        self, worker_id: str, host: str, port: int, now: float
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.registered_at = now
        self.last_heartbeat = now
        self.heartbeats = 0
        #: documents the worker reported hosting in its last heartbeat
        self.docs: Set[str] = set()

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)


class WorkerRegistry:
    """Registration, heartbeats, and lease expiry for a worker fleet."""

    def __init__(
        self,
        lease_seconds: float = 1.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_seconds <= 0:
            raise ProtocolError(
                f"lease of {lease_seconds}s must be positive"
            )
        self.lease_seconds = lease_seconds
        self._clock = clock
        self._workers: Dict[str, WorkerInfo] = {}
        self.registrations = 0
        self.expirations = 0

    def register(self, worker_id: str, host: str, port: int) -> WorkerInfo:
        """Admit (or re-admit) a worker; its lease starts now."""
        if not worker_id:
            raise ProtocolError("worker id must be non-empty")
        info = WorkerInfo(str(worker_id), str(host), int(port), self._clock())
        self._workers[info.worker_id] = info
        self.registrations += 1
        return info

    def heartbeat(self, worker_id: str, docs: Optional[List[str]] = None) -> bool:
        """Renew a lease; ``False`` means unknown/expired — re-register."""
        info = self._workers.get(worker_id)
        if info is None:
            return False
        info.last_heartbeat = self._clock()
        info.heartbeats += 1
        if docs is not None:
            info.docs = {str(d) for d in docs}
        return True

    def expire(self) -> List[WorkerInfo]:
        """Drop every worker whose lease lapsed; returns them, once."""
        now = self._clock()
        lapsed = [
            info
            for info in self._workers.values()
            if now - info.last_heartbeat > self.lease_seconds
        ]
        for info in lapsed:
            del self._workers[info.worker_id]
            self.expirations += 1
        return sorted(lapsed, key=lambda info: info.worker_id)

    def live(self) -> List[str]:
        """Sorted ids of every worker holding a current lease."""
        return sorted(self._workers)

    def get(self, worker_id: str) -> Optional[WorkerInfo]:
        return self._workers.get(worker_id)

    def addr(self, worker_id: str) -> Tuple[str, int]:
        info = self._workers.get(worker_id)
        if info is None:
            raise ProtocolError(f"worker {worker_id!r} holds no lease")
        return info.addr

    def __len__(self) -> int:
        return len(self._workers)
