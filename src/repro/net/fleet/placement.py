"""Deterministic document placement: rendezvous (HRW) hashing.

Every router (and every test) must agree on which worker owns a
document given only the live worker set — no coordination, no stored
assignment table.  Rendezvous hashing gives exactly that: the owner of
``doc`` is the worker maximising ``sha256(worker "|" doc)``.  Two
properties matter here:

* **determinism** — the argmax is a pure function of the (sorted) live
  set and the document id, so independent observers always agree;
* **minimal movement** — when a worker dies, only the documents whose
  argmax *was* that worker move (each to its runner-up); every other
  document keeps its owner, so a lease expiry never triggers a fleet-wide
  reshuffle the way naive ``hash(doc) % N`` would.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.errors import ProtocolError


def _score(worker: str, doc: str) -> bytes:
    return hashlib.sha256(f"{worker}|{doc}".encode("utf-8")).digest()


def place(doc: str, workers: Sequence[str]) -> str:
    """The worker owning ``doc`` — the rendezvous argmax over ``workers``.

    Ties are impossible in practice (a sha256 collision); worker ids are
    deduplicated and the argmax is taken over the sorted set so the
    result is independent of input order.
    """
    candidates = sorted(set(workers))
    if not candidates:
        raise ProtocolError(f"no live workers to place document {doc!r} on")
    return max(candidates, key=lambda worker: _score(worker, doc))


def placement_map(
    docs: Iterable[str], workers: Sequence[str]
) -> Dict[str, str]:
    """Place every document: ``doc -> owning worker``."""
    return {doc: place(doc, workers) for doc in docs}


def placement_skew(assignment: Dict[str, str], workers: Sequence[str]) -> float:
    """Load imbalance of an assignment: ``max_docs_per_worker / mean``.

    1.0 is a perfectly even spread; a worker owning every document in a
    two-worker fleet scores 2.0.  Workers owning nothing still count in
    the mean — an empty fleet member *is* skew.
    """
    candidates = sorted(set(workers))
    if not candidates or not assignment:
        return 1.0
    counts: List[int] = [
        sum(1 for owner in assignment.values() if owner == worker)
        for worker in candidates
    ]
    mean = len(assignment) / len(candidates)
    return max(counts) / mean if mean > 0 else 1.0
