"""The fleet worker: a multi-document NetServer plus a lease keeper.

The serving half is entirely :class:`~repro.net.server.NetServer` — one
listener hosting a shard per document, each with its own serial order
and an on-disk WAL under the fleet's shared ``wal_dir``.  What this
module adds is the *membership* half: a background task that registers
with the router and then heartbeats on the cadence the router quotes
back, with seeded jitter so a fleet restarted in lockstep does not
heartbeat (or re-register) in lockstep.

The worker does not know which documents it owns — ownership is the
router's rendezvous argmax, and the worker simply serves whatever
``hello {doc}`` frames reach it (opening shards lazily, recovering any
existing ``<doc>.wal``).  That asymmetry is deliberate: re-placement
after a crash needs no handoff protocol, because the new owner's first
client hello triggers recovery from the shared per-document log.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
from typing import Optional

from repro.net.codec import DEFAULT_DOC, WireError, encode_envelope
from repro.net.server import NetServer
from repro.net.transport import read_frame, write_frame
from repro.obs import get_obs

LOGGER = logging.getLogger("repro.net.fleet.worker")


class FleetWorker:
    """One fleet member: serve documents, keep the lease alive."""

    def __init__(
        self,
        worker_id: str,
        router_host: str,
        router_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        wal_dir: Optional[str] = None,
        initial_text: str = "",
        snapshot_every: int = 64,
        heartbeat_seed: int = 0,
        max_connections: int = 256,
        idle_timeout: Optional[float] = 60.0,
    ) -> None:
        self.worker_id = str(worker_id)
        self.router_host = router_host
        self.router_port = int(router_port)
        self.server = NetServer(
            host=host,
            port=port,
            initial_text=initial_text,
            snapshot_every=snapshot_every,
            max_connections=max_connections,
            idle_timeout=idle_timeout,
            doc_id=DEFAULT_DOC,
            wal_dir=wal_dir,
        )
        #: seeded jitter: each heartbeat sleeps interval * (0.8 .. 1.0),
        #: deterministic per worker, de-correlated across the fleet
        self._rng = random.Random(heartbeat_seed)
        self.heartbeats_sent = 0
        self.registrations = 0
        self._obs = get_obs()
        self._logger = LOGGER
        self._lease_task: Optional[asyncio.Task] = None
        self._closed = asyncio.Event()

    def _log(self, text: str) -> None:
        self._logger.info("%s", text)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()
        self._lease_task = asyncio.ensure_future(self._lease_loop())
        self._log(
            f"fleet worker {self.worker_id} serving on "
            f"{self.server.host}:{self.server.port}, registering with "
            f"{self.router_host}:{self.router_port}"
        )

    async def wait_closed(self) -> None:
        await asyncio.wait(
            [
                asyncio.ensure_future(self._closed.wait()),
                asyncio.ensure_future(self.server.wait_closed()),
            ],
            return_when=asyncio.FIRST_COMPLETED,
        )

    async def stop(self) -> None:
        self._closed.set()
        if self._lease_task is not None:
            self._lease_task.cancel()
            self._lease_task = None
        await self.server.stop()

    # ------------------------------------------------------------------
    # Lease keeping
    # ------------------------------------------------------------------
    async def _lease_loop(self) -> None:
        """Register, then heartbeat forever; reconnect on any failure.

        The router quotes the heartbeat ``interval`` in its ack; every
        sleep is jittered *downward* (0.8x .. 1.0x) so a heartbeat is
        never late by design, only by failure — and the jitter is seeded
        per worker so a synchronised fleet restart de-correlates.
        """
        backoff = 0
        while not self._closed.is_set():
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    self.router_host, self.router_port
                )
                await write_frame(
                    writer,
                    encode_envelope(
                        "fleet_register",
                        worker=self.worker_id,
                        host=self.server.host,
                        port=self.server.port,
                    ),
                )
                ack = await read_frame(reader)
                if ack is None or ack.get("type") != "fleet_ack":
                    raise WireError(f"expected fleet_ack, got {ack!r}")
                self.registrations += 1
                backoff = 0
                interval = float(ack.get("interval", 0.3))
                self._obs.trace(
                    "fleet.registered",
                    worker=self.worker_id,
                    lease=ack.get("lease"),
                    interval=interval,
                )
                while not self._closed.is_set():
                    await asyncio.sleep(
                        interval * (0.8 + 0.2 * self._rng.random())
                    )
                    await write_frame(
                        writer,
                        encode_envelope(
                            "fleet_heartbeat",
                            worker=self.worker_id,
                            docs=sorted(self.server.shards),
                        ),
                    )
                    ack = await read_frame(reader)
                    if ack is None or ack.get("type") != "fleet_ack":
                        raise WireError(f"expected fleet_ack, got {ack!r}")
                    self.heartbeats_sent += 1
                    if not ack.get("registered", True):
                        # Our lease lapsed (a long GC pause, a router
                        # restart): re-register on a fresh connection.
                        self._log(
                            f"{self.worker_id}: lease lapsed, re-registering"
                        )
                        break
            except asyncio.CancelledError:
                return
            except (OSError, ConnectionError, WireError, EOFError) as exc:
                backoff += 1
                if backoff == 1:
                    self._log(
                        f"{self.worker_id}: router unreachable: {exc}"
                    )
                await asyncio.sleep(
                    min(0.1 * backoff, 1.0)
                    * (0.8 + 0.2 * self._rng.random())
                )
            finally:
                if writer is not None:
                    writer.close()


# ----------------------------------------------------------------------
# Process entry point (the ``repro fleet worker`` verb)
# ----------------------------------------------------------------------
async def _worker(
    worker_id: str,
    router_host: str,
    router_port: int,
    host: str,
    port: int,
    wal_dir: Optional[str],
    initial_text: str,
    snapshot_every: int,
    heartbeat_seed: int,
    announce: bool,
) -> int:
    worker = FleetWorker(
        worker_id,
        router_host,
        router_port,
        host=host,
        port=port,
        wal_dir=wal_dir,
        initial_text=initial_text,
        snapshot_every=snapshot_every,
        heartbeat_seed=heartbeat_seed,
    )
    await worker.start()
    if announce:
        print(
            "REPRO-FLEET-WORKER "
            + json.dumps(
                {
                    "worker": worker.worker_id,
                    "host": worker.host,
                    "port": worker.port,
                }
            ),
            flush=True,
        )
    await worker.wait_closed()
    return 0


def run_fleet_worker(
    worker_id: str,
    router_host: str,
    router_port: int,
    host: str = "127.0.0.1",
    port: int = 0,
    wal_dir: Optional[str] = None,
    initial_text: str = "",
    snapshot_every: int = 64,
    heartbeat_seed: int = 0,
    announce: bool = False,
) -> int:
    """Blocking entry point for ``repro fleet worker``."""
    try:
        return asyncio.run(
            _worker(
                worker_id,
                router_host,
                router_port,
                host,
                port,
                wal_dir,
                initial_text,
                snapshot_every,
                heartbeat_seed,
                announce,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
