"""``repro.net.fleet`` — sharded multi-document serving.

The Jupiter protocol serialises each document independently: nothing in
the paper's correctness argument couples two documents' serial orders.
That makes horizontal scaling a *placement* problem, not a protocol
problem — and this package is exactly that placement layer:

* :mod:`repro.net.fleet.placement` — deterministic rendezvous (HRW)
  hashing of ``doc_id`` onto the live worker set: every router replica
  computes the same owner from the same membership, and a membership
  change moves only the documents whose argmax changed;
* :mod:`repro.net.fleet.registry` — the worker registry: registration,
  heartbeats, lease expiry, and the re-placement bookkeeping when a
  lease lapses;
* :mod:`repro.net.fleet.router` — the router process: answers client
  ``hello``\\ s with a ``redirect`` to the owning worker (the same
  envelope, roster-walk, and redirect-budget machinery the replicated
  tier already uses), and exposes the fleet admin plane;
* :mod:`repro.net.fleet.worker` — a multi-document
  :class:`~repro.net.server.NetServer` plus the registration/heartbeat
  loop that keeps its lease alive;
* :mod:`repro.net.fleet.loadgen` — the fleet coordinator: router + K
  workers x D documents x C clients, per-document byte-identical
  signature checks, exact fleet-wide metric merges, and the
  kill-a-worker re-placement drill.

Durability model: placement moves, storage stays.  Every worker mounts
the same ``wal_dir``; a document's write-ahead log lives in one
``<doc>.wal`` file regardless of which worker currently owns it, so the
next owner recovers exactly the state the old owner acknowledged.
"""

from repro.net.fleet.placement import (
    place,
    placement_map,
    placement_skew,
)
from repro.net.fleet.registry import WorkerInfo, WorkerRegistry
from repro.net.fleet.router import FleetRouter, run_router
from repro.net.fleet.worker import FleetWorker, run_fleet_worker
from repro.net.fleet.loadgen import run_fleet_loadgen

__all__ = [
    "place",
    "placement_map",
    "placement_skew",
    "WorkerInfo",
    "WorkerRegistry",
    "FleetRouter",
    "run_router",
    "FleetWorker",
    "run_fleet_worker",
    "run_fleet_loadgen",
]
