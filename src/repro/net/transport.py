"""Framed transport: length-prefixed JSON frames on asyncio streams.

A frame on the wire is a 4-byte big-endian length followed by that many
bytes of UTF-8 JSON (one envelope, see :func:`repro.net.codec.decode_envelope`).
Length-prefixing restores message boundaries on top of TCP's byte
stream; the JSON envelope carries the version and type.

TCP already gives each *connection* reliable FIFO bytes, so within one
connection the session layer's reorder buffer stays empty.  What TCP
does **not** give is continuity across connections — a client that
reconnects has no idea which of its frames the server processed, and
vice versa.  That is exactly the seam
:mod:`repro.jupiter.session` closes: every data frame carries the
channel sequence number and a cumulative ack, so after a reconnect the
sender retransmits its unacknowledged suffix and the receiver suppresses
the duplicates (see the reconnect state machine in
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.net.codec import WireError, decode_envelope
from repro.obs import get_obs

#: Frame length header: 4-byte unsigned big-endian.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame body; a resync of a very long run stays far
#: below this, and anything larger is junk or an attack.
MAX_FRAME = 16 * 1024 * 1024

#: Seconds between client heartbeat pings on an idle connection.
HEARTBEAT_INTERVAL = 5.0


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`~repro.net.codec.WireError` on a truncated frame, an
    oversized length prefix, or a body that fails envelope decoding.
    """
    header = await _read_exactly(reader, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds the {MAX_FRAME} cap")
    body = await _read_exactly(reader, length, at_boundary=False)
    if body is None:  # pragma: no cover - needs a mid-frame EOF race
        raise WireError("connection closed mid-frame")
    obs = get_obs()
    if obs.enabled:
        obs.net_frames_in.inc()
        obs.net_bytes_in.inc(_HEADER.size + length)
    return decode_envelope(body)


async def _read_exactly(
    reader: asyncio.StreamReader, count: int, at_boundary: bool
) -> Optional[bytes]:
    try:
        return await reader.readexactly(count)
    except asyncio.IncompleteReadError as exc:
        if at_boundary and not exc.partial:
            return None  # clean EOF between frames
        raise WireError(
            f"connection closed after {len(exc.partial)}/{count} bytes"
        ) from exc


async def write_frame(
    writer: asyncio.StreamWriter, envelope: Dict[str, Any]
) -> None:
    """Serialise and send one envelope, waiting for the buffer to drain."""
    body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise WireError(f"frame of {len(body)} bytes exceeds the {MAX_FRAME} cap")
    obs = get_obs()
    if obs.enabled:
        obs.net_frames_out.inc()
        obs.net_bytes_out.inc(_HEADER.size + len(body))
    writer.write(_HEADER.pack(len(body)) + body)
    await writer.drain()
