"""Framed transport: length-prefixed JSON frames on asyncio streams.

A frame on the wire is a 4-byte big-endian length followed by that many
bytes of UTF-8 JSON (one envelope, see :func:`repro.net.codec.decode_envelope`).
Length-prefixing restores message boundaries on top of TCP's byte
stream; the JSON envelope carries the version and type.

TCP already gives each *connection* reliable FIFO bytes, so within one
connection the session layer's reorder buffer stays empty.  What TCP
does **not** give is continuity across connections — a client that
reconnects has no idea which of its frames the server processed, and
vice versa.  That is exactly the seam
:mod:`repro.jupiter.session` closes: every data frame carries the
channel sequence number and a cumulative ack, so after a reconnect the
sender retransmits its unacknowledged suffix and the receiver suppresses
the duplicates (see the reconnect state machine in
``docs/ARCHITECTURE.md``).

**Backpressure.**  ``await drain()`` is TCP flow control surfacing into
the application: a peer that stops reading eventually zero-windows the
connection and ``drain()`` never returns.  Awaiting it inline from a
shared code path (the server's serialise/commit loop) therefore lets one
stalled socket head-of-line-block every healthy session.  Two tools in
this module manufacture isolation instead:

* :func:`write_frame` accepts a ``timeout`` — a *write deadline* — so a
  wedged peer surfaces as :class:`~repro.net.codec.WireError` instead of
  an eternal await;
* :class:`FrameSender` decouples serialisation from I/O entirely: a
  bounded per-peer outbound queue drained by one dedicated writer task.
  Enqueueing is synchronous and never blocks; a peer whose queue fills
  or whose writes stall is *evicted* (the owner decides), and the
  write-ahead log re-ships everything it missed on reconnect.
"""

from __future__ import annotations

import asyncio
import struct
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.net.codec import (
    CODEC_JSON,
    WIRE_VERSION,
    WireError,
    decode_envelope,
    encode_frame_bytes,
)
from repro.obs import get_obs

#: Frame length header: 4-byte unsigned big-endian.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame body; a resync of a very long run stays far
#: below this, and anything larger is junk or an attack.
MAX_FRAME = 16 * 1024 * 1024

#: Seconds between client heartbeat pings on an idle connection.
HEARTBEAT_INTERVAL = 5.0

#: Default write deadline: how long one frame may sit in ``drain()``
#: before the peer is declared wedged.  Far above any healthy RTT, far
#: below "forever".
WRITE_TIMEOUT = 10.0

#: Default bound on one peer's outbound queue.  Sized for bursts (a big
#: WAL resync) while still converting a genuinely stalled consumer into
#: an eviction within one burst.
OUTBOUND_QUEUE = 256

#: Most envelopes coalesced into one ``multi`` frame by a batching
#: :class:`FrameSender`.  Bounds per-frame latency and keeps a batch of
#: worst-case resync payloads far under :data:`MAX_FRAME`.
BATCH_MAX = 64


class FrameTooLarge(WireError):
    """A frame exceeded :data:`MAX_FRAME`; ``length`` is the claimed size.

    Distinguished from other :class:`WireError`\\ s so a server can keep
    the session alive: the oversized body is still sitting in the stream
    and can be drained (:func:`drain_payload`) and rejected with a typed
    ``error`` envelope instead of killing the connection.
    """

    def __init__(self, message: str, length: int) -> None:
        super().__init__(message)
        self.length = length


async def read_frame(
    reader: asyncio.StreamReader, doc: str = ""
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    ``doc`` labels the frame counter with the document this stream
    serves (``""`` for streams with no document context: handshakes,
    admin, replication).

    Raises :class:`FrameTooLarge` on an oversized length prefix (the
    body is *not* consumed — callers may :func:`drain_payload` it and
    continue) and :class:`~repro.net.codec.WireError` on a truncated
    frame or a body that fails envelope decoding.
    """
    header = await _read_exactly(reader, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {MAX_FRAME} cap", length
        )
    body = await _read_exactly(reader, length, at_boundary=False)
    if body is None:  # pragma: no cover - needs a mid-frame EOF race
        raise WireError("connection closed mid-frame")
    obs = get_obs()
    if obs.enabled:
        obs.net_frames_in.labels(doc).inc()
        obs.net_bytes_in.inc(_HEADER.size + length)
    return decode_envelope(body)


async def drain_payload(reader: asyncio.StreamReader, length: int) -> None:
    """Read and discard ``length`` bytes (an oversized frame's body).

    Raises :class:`~repro.net.codec.WireError` if the stream ends before
    the advertised body does.
    """
    remaining = length
    while remaining > 0:
        chunk = await reader.read(min(remaining, 256 * 1024))
        if not chunk:
            raise WireError(
                f"connection closed {remaining} bytes into an oversized body"
            )
        remaining -= len(chunk)


async def _read_exactly(
    reader: asyncio.StreamReader, count: int, at_boundary: bool
) -> Optional[bytes]:
    try:
        return await reader.readexactly(count)
    except asyncio.IncompleteReadError as exc:
        if at_boundary and not exc.partial:
            return None  # clean EOF between frames
        raise WireError(
            f"connection closed after {len(exc.partial)}/{count} bytes"
        ) from exc


async def write_frame(
    writer: asyncio.StreamWriter,
    envelope: Dict[str, Any],
    timeout: Optional[float] = None,
    doc: str = "",
    codec: str = CODEC_JSON,
) -> None:
    """Serialise and send one envelope, waiting for the buffer to drain.

    ``timeout`` is the write deadline: if ``drain()`` has not completed
    within it the transport is aborted and :class:`WireError` raised —
    a wedged (zero-window) peer surfaces as an error instead of an
    eternal await.  ``None`` waits forever (the pre-deadline behaviour,
    still appropriate for client-side writes where the event loop has
    nothing better to do).  ``doc`` labels the frame counter with the
    document this stream serves (``""`` = no document context).
    ``codec`` picks the byte serialisation — the session's negotiated
    codec; the receiver sniffs it per frame, so mixing is safe.
    """
    body = encode_frame_bytes(envelope, codec)
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME} cap",
            len(body),
        )
    obs = get_obs()
    if obs.enabled:
        obs.net_frames_out.labels(doc).inc()
        obs.net_bytes_out.inc(_HEADER.size + len(body))
    writer.write(_HEADER.pack(len(body)) + body)
    if timeout is None:
        await writer.drain()
        return
    try:
        await asyncio.wait_for(writer.drain(), timeout=timeout)
    except asyncio.TimeoutError:
        if obs.enabled:
            obs.net_write_stalls.inc()
        # Abort rather than close: close() would try to flush the very
        # buffer the peer refuses to read.
        writer.transport.abort()
        raise WireError(
            f"write stalled past the {timeout:.3f}s deadline "
            f"({envelope.get('type', '?')} frame)"
        )


class FrameSender:
    """Bounded outbound queue + dedicated writer task for one peer.

    The owner enqueues envelopes with :meth:`try_send` — synchronous,
    never blocking — and a single writer task drains the queue through
    :func:`write_frame` under the write deadline, preserving FIFO order
    per peer.  Failure is *fail-fast and typed*:

    * :meth:`try_send` returns ``False`` when the queue is at capacity —
      the consumer is slower than the producer by a whole queue's worth
      and the owner should evict it;
    * a write error or deadline overrun records ``failure``, closes the
      transport, and invokes ``on_failure`` exactly once, from the
      writer task (so the owner can do eviction bookkeeping without
      racing the serialisation path).

    Nothing queued is precious: every broadcast lives in the write-ahead
    log and is re-shipped on reconnect, so an evicted peer's unsent
    suffix is dropped on the floor by design.

    ``codec`` and ``batch`` are the session's negotiated wire options,
    set by the owner after the handshake (both default to the v1
    behaviour: JSON, one envelope per frame).  With ``batch`` on, the
    writer task drains *everything* queued at each wakeup and coalesces
    it into one ``multi`` frame (up to :data:`BATCH_MAX` envelopes), so
    a serialisation burst costs one syscall and one length prefix per
    tick instead of one per operation.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        capacity: int = OUTBOUND_QUEUE,
        write_timeout: Optional[float] = WRITE_TIMEOUT,
        on_failure: Optional[Callable[[str], None]] = None,
        label: str = "",
        doc: str = "",
    ) -> None:
        if capacity < 1:
            raise WireError(f"outbound queue capacity {capacity} must be >= 1")
        self.writer = writer
        self.capacity = capacity
        self.write_timeout = write_timeout
        self.label = label
        #: document the peer's session serves; labels the frame counters
        self.doc = doc
        #: negotiated wire codec for outbound frames (owner-set, mutable)
        self.codec = CODEC_JSON
        #: negotiated batching: coalesce queued envelopes into ``multi``
        self.batch = False
        self.failure: Optional[str] = None
        self.closed = False
        self.frames_sent = 0
        self.frames_dropped = 0
        #: envelopes that rode inside a ``multi`` instead of alone
        self.frames_coalesced = 0
        self._queue: Deque[Dict[str, Any]] = deque()
        self._wakeup = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        #: invoked exactly once, from the writer task, on write
        #: error/stall; the owner may replace or clear it at any time
        self.on_failure = on_failure
        self._task = asyncio.ensure_future(self._run())

    @property
    def depth(self) -> int:
        """Frames currently queued (the per-peer backlog)."""
        return len(self._queue)

    def try_send(self, envelope: Dict[str, Any], force: bool = False) -> bool:
        """Enqueue one envelope; ``False`` if the queue is full or dead.

        ``force`` bypasses the capacity check — used for exactly one
        frame, the ``evicted`` notice, which must be *attempted* even
        though the queue just overflowed (a merely-slow peer will read
        it; a wedged one never will, and the abort cuts it off).
        """
        if self.closed or self.failure is not None:
            return False
        if not force and len(self._queue) >= self.capacity:
            return False
        self._queue.append(envelope)
        self._wakeup.set()
        return True

    async def send_wait(self, envelope: Dict[str, Any]) -> bool:
        """Enqueue, *awaiting* queue space instead of failing when full.

        For bursts that outrun the queue by design — the WAL resync on
        reconnect — where the producer is this peer's own connection
        task and blocking it is the correct backpressure (a healthy
        late joiner must not be evicted for the server's own burst).
        ``False`` once the sender is closed or failed.
        """
        while not self.closed and self.failure is None:
            if self.try_send(envelope):
                return True
            self._space.clear()
            await self._space.wait()
        return False

    async def _run(self) -> None:
        try:
            while True:
                while not self._queue:
                    if self.closed:
                        return
                    self._wakeup.clear()
                    await self._wakeup.wait()
                envelope = self._queue.popleft()
                if self.batch and self._queue:
                    batched = [envelope]
                    while self._queue and len(batched) < BATCH_MAX:
                        batched.append(self._queue.popleft())
                    envelope = {
                        "v": WIRE_VERSION,
                        "type": "multi",
                        "frames": batched,
                    }
                    self.frames_coalesced += len(batched)
                    obs = get_obs()
                    if obs.enabled:
                        obs.net_frames_coalesced.labels(self.doc).inc(
                            len(batched)
                        )
                await write_frame(
                    self.writer,
                    envelope,
                    timeout=self.write_timeout,
                    doc=self.doc,
                    codec=self.codec,
                )
                self.frames_sent += 1
                if len(self._queue) < self.capacity:
                    self._space.set()
        except asyncio.CancelledError:
            return
        except (WireError, ConnectionError, OSError) as exc:
            self.failure = str(exc)
            self.frames_dropped += len(self._queue)
            self._queue.clear()
            self.writer.transport.abort()
            if self.on_failure is not None:
                self.on_failure(self.failure)
        finally:
            self.closed = True
            self._space.set()  # wake any send_wait so it observes closure
            self.writer.close()

    def close_soon(self) -> None:
        """Flush the backlog from the writer task, then close.

        Synchronous and non-blocking — the eviction path calls this from
        the serialisation loop.  A merely-slow peer receives everything
        queued (its ``evicted`` notice included); a wedged one hits the
        write deadline on the next frame and is aborted.
        """
        self.closed = True
        self._wakeup.set()

    async def aclose(self) -> None:
        """Flush what is queued (bounded by the deadline) and close."""
        self.closed = True
        self._wakeup.set()
        if not self._task.done():
            try:
                await asyncio.wait_for(
                    self._task, timeout=self.write_timeout
                )
            except asyncio.TimeoutError:
                self._task.cancel()
        self.writer.close()

    def abort(self) -> None:
        """Drop the backlog and sever the connection immediately."""
        self.closed = True
        self.frames_dropped += len(self._queue)
        self._queue.clear()
        self._wakeup.set()
        if not self._task.done():
            self._task.cancel()
        self.writer.transport.abort()
