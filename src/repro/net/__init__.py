"""``repro.net`` — the asyncio wire runtime.

Everything below :mod:`repro.sim` is simulated time on in-process
queues; this package is the first *deployed* code path.  It hosts a
:class:`~repro.jupiter.css.CssServer` behind a real TCP listener and
runs :class:`~repro.jupiter.css.CssClient`\\ s as independent OS
processes, moving protocol messages as length-prefixed, version-enveloped
JSON frames.  The stack is reused, not forked:

* :mod:`repro.jupiter.messages` dataclasses are the payload schema
  (serialised by :mod:`repro.net.codec`);
* :mod:`repro.jupiter.session` provides seq/ack/duplicate-suppression
  semantics so a reconnecting client resumes exactly-once FIFO delivery;
* the PR-2 write-ahead log
  (:class:`~repro.jupiter.persistence.ServerWriteAheadLog`) is the
  durable broadcast buffer: a reconnecting client resyncs from it via
  :meth:`~repro.jupiter.persistence.ServerWriteAheadLog.broadcasts_for`.

The load generator (:mod:`repro.net.loadgen`) drives N client processes
against one server process and checks the paper's convergence property
(Theorem 6.7) across OS process boundaries by comparing final document
signatures.
"""

from repro.net.codec import (
    WIRE_VERSION,
    WireError,
    decode_envelope,
    document_signature,
    encode_envelope,
    message_from_json,
    message_from_obj,
    message_to_json,
    message_to_obj,
)
from repro.net.transport import (
    MAX_FRAME,
    OUTBOUND_QUEUE,
    WRITE_TIMEOUT,
    FrameSender,
    FrameTooLarge,
    drain_payload,
    read_frame,
    write_frame,
)
from repro.net.chaosproxy import ChaosProxy, run_chaosproxy
from repro.net.client import NetClient, ReconnectExhausted
from repro.net.server import NetServer
from repro.net.loadgen import run_loadgen, run_worker
from repro.net.fleet import (
    FleetRouter,
    FleetWorker,
    WorkerRegistry,
    place,
    placement_map,
    placement_skew,
    run_fleet_loadgen,
    run_fleet_worker,
    run_router,
)

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "decode_envelope",
    "document_signature",
    "encode_envelope",
    "message_from_json",
    "message_from_obj",
    "message_to_json",
    "message_to_obj",
    "MAX_FRAME",
    "OUTBOUND_QUEUE",
    "WRITE_TIMEOUT",
    "FrameSender",
    "FrameTooLarge",
    "drain_payload",
    "read_frame",
    "write_frame",
    "ChaosProxy",
    "run_chaosproxy",
    "NetClient",
    "ReconnectExhausted",
    "NetServer",
    "run_loadgen",
    "run_worker",
    "FleetRouter",
    "FleetWorker",
    "WorkerRegistry",
    "place",
    "placement_map",
    "placement_skew",
    "run_fleet_loadgen",
    "run_fleet_worker",
    "run_router",
]
