"""Live load generation: N client OS processes against one TCP server.

This is the first place the paper's convergence property (Theorem 6.7)
is checked across *process* boundaries instead of inside one
interpreter.  The coordinator:

1. spawns ``repro serve`` as a subprocess on an ephemeral port (parsing
   its one-line ``REPRO-SERVE {...}`` announcement);
2. spawns one ``repro connect`` subprocess per client, each driving a
   seeded stream of edits against its live local document;
3. by default severs one client's connection mid-run (no ``bye``) — the
   worker reconnects and resyncs the broadcasts it missed from the
   server's write-ahead log, and retransmits its own unacknowledged
   frames;
4. waits for every worker to report convergence, asks the server for its
   document signature over the admin plane, shuts the server down, and
   compares: the run passes iff **every replica's final document
   signature is byte-identical**.

Every worker's operation stream is a pure function of ``seed`` and its
index; the interleaving is real wall-clock scheduling, which is exactly
the point — convergence must hold under schedules nobody picked.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import string
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from repro.model.schedule import OpSpec
from repro.net.client import NetClient
from repro.net.codec import encode_envelope
from repro.net.transport import read_frame, write_frame
from repro.obs import get_obs, merge_snapshots, snapshot_value

_ALPHABET = string.ascii_lowercase


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


# ----------------------------------------------------------------------
# Admin plane helpers
# ----------------------------------------------------------------------
async def _admin_async(host: str, port: int, command: str) -> Dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, encode_envelope("admin", cmd=command))
        reply = await read_frame(reader)
    finally:
        writer.close()
    if reply is None or reply.get("type") != "admin_reply":
        raise ConnectionError(f"admin {command!r}: bad reply {reply!r}")
    return reply


def admin(host: str, port: int, command: str) -> Dict[str, Any]:
    """Synchronous admin round-trip (signature / stats / shutdown)."""
    return asyncio.run(_admin_async(host, port, command))


# ----------------------------------------------------------------------
# One worker process
# ----------------------------------------------------------------------
async def run_worker(
    host: str,
    port: int,
    client_id: str,
    ops: int,
    expect_total: int,
    seed: int,
    insert_ratio: float = 0.7,
    reconnect_after: Optional[int] = None,
    offline_pause: float = 0.25,
    op_interval: float = 0.02,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """Drive one client: ``ops`` seeded edits, then wait for convergence.

    With ``reconnect_after = m`` the worker abruptly drops its TCP
    connection right after its ``m``-th edit, stays offline for
    ``offline_pause`` seconds (letting the other workers race ahead),
    then reconnects — exercising the hello/welcome resync from the
    server's write-ahead log and the retransmission of its own
    unacknowledged frames.
    """
    rng = random.Random(seed)
    client = NetClient(client_id, host, port, reconnect_seed=seed)
    started = time.perf_counter()
    await client.connect()
    resync_on_reconnect = 0
    for index in range(ops):
        length = len(client.css.document)
        inserting = length == 0 or rng.random() < insert_ratio
        if inserting:
            spec = OpSpec("ins", rng.randint(0, length), rng.choice(_ALPHABET))
        else:
            spec = OpSpec("del", rng.randint(0, length - 1))
        await client.generate(spec)
        if reconnect_after is not None and index + 1 == reconnect_after:
            await client.drop()
            await asyncio.sleep(offline_pause)
            before = client.resync_frames
            await client.connect()
            resync_on_reconnect += client.resync_frames - before
        await asyncio.sleep(op_interval)
    converged = await client.wait_converged(expect_total, timeout=timeout)
    duration = time.perf_counter() - started
    report = {
        "client": client_id,
        "ops": ops,
        "converged": converged,
        "signature": client.signature(),
        "document_length": len(client.css.document),
        "delivered": client.delivered,
        "connects": client.connects,
        "reconnects": client.connects - 1,
        "resync_frames": client.resync_frames,
        "resync_on_reconnect": resync_on_reconnect,
        "duration": duration,
        "rtt_ms": [round(r * 1000.0, 4) for r in client.rtts],
        "metrics": get_obs().snapshot(),
    }
    await client.close()
    return report


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
def _child_env() -> Dict[str, str]:
    """Environment for subprocesses: make ``repro`` importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _spawn_server(
    host: str, port: int, snapshot_every: int, initial_text: str
) -> "tuple[subprocess.Popen, int]":
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        str(port),
        "--snapshot-every",
        str(snapshot_every),
        "--announce",
        "--quiet",
    ]
    if initial_text:
        command += ["--initial", initial_text]
    process = subprocess.Popen(
        command,
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            stderr = process.stderr.read() if process.stderr else ""
            raise RuntimeError(f"server failed to start:\n{stderr}")
        if line.startswith("REPRO-SERVE "):
            announced = json.loads(line[len("REPRO-SERVE "):])
            return process, int(announced["port"])


def split_ops(total: int, clients: int) -> List[int]:
    """Distribute ``total`` operations over ``clients`` round-robin."""
    base, extra = divmod(total, clients)
    return [base + (1 if index < extra else 0) for index in range(clients)]


def run_loadgen(
    clients: int = 3,
    ops: int = 500,
    seed: int = 7,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 240.0,
    insert_ratio: float = 0.7,
    op_interval: float = 0.02,
    reconnect_clients: Optional[int] = None,
    snapshot_every: int = 256,
    initial_text: str = "",
    quiet: bool = False,
) -> Dict[str, Any]:
    """Run the full multi-process deployment and report convergence.

    ``reconnect_clients`` workers (default: 1 when there is more than
    one client) each drop and re-establish their connection mid-run.
    The returned report's ``ok`` is True iff every worker converged,
    every replica signature (workers + server) is byte-identical, and
    every requested reconnect actually happened and resynced.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if ops < clients:
        raise ValueError("need at least one operation per client")
    if reconnect_clients is None:
        reconnect_clients = 1 if clients > 1 else 0
    reconnect_clients = min(reconnect_clients, clients)

    def log(text: str) -> None:
        if not quiet:
            print(f"[loadgen] {text}", flush=True)

    server_process, bound_port = _spawn_server(
        host, port, snapshot_every, initial_text
    )
    log(f"server pid {server_process.pid} on {host}:{bound_port}")
    shares = split_ops(ops, clients)
    workers: List[subprocess.Popen] = []
    started = time.perf_counter()
    try:
        for index in range(clients):
            name = f"c{index + 1}"
            command = [
                sys.executable,
                "-m",
                "repro",
                "connect",
                "--host",
                host,
                "--port",
                str(bound_port),
                "--client",
                name,
                "--ops",
                str(shares[index]),
                "--expect-total",
                str(ops),
                "--seed",
                str(seed * 1000 + index),
                "--insert-ratio",
                str(insert_ratio),
                "--op-interval",
                str(op_interval),
                "--timeout",
                str(timeout),
                "--json",
            ]
            if index < reconnect_clients:
                command += [
                    "--reconnect-after",
                    str(max(1, shares[index] // 2)),
                ]
            workers.append(
                subprocess.Popen(
                    command,
                    env=_child_env(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
        log(f"spawned {clients} worker processes ({shares} ops each)")
        reports: List[Dict[str, Any]] = []
        failures: List[str] = []
        for index, worker in enumerate(workers):
            name = f"c{index + 1}"
            try:
                stdout, stderr = worker.communicate(timeout=timeout + 30.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                stdout, stderr = worker.communicate()
                failures.append(f"{name}: timed out")
                continue
            lines = [l for l in stdout.splitlines() if l.strip()]
            if worker.returncode != 0 or not lines:
                failures.append(
                    f"{name}: exit {worker.returncode}\n{stderr.strip()}"
                )
                continue
            reports.append(json.loads(lines[-1]))
        wall = time.perf_counter() - started
        server_view = admin(host, bound_port, "signature")
        server_stats = admin(host, bound_port, "stats")
        server_metrics = admin(host, bound_port, "metrics")
    finally:
        try:
            admin(host, bound_port, "shutdown")
        except (ConnectionError, OSError):
            pass
        try:
            server_process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            server_process.kill()
        for worker in workers:
            if worker.poll() is None:
                worker.kill()

    signatures = {r["client"]: r["signature"] for r in reports}
    signatures["s"] = server_view["signature"]
    identical = len(set(signatures.values())) == 1
    # Exact cross-process merge: every worker snapshots its registry and
    # the fixed bucket boundaries make the histograms sum element-wise.
    client_metrics = merge_snapshots(
        [r["metrics"] for r in reports if r.get("metrics", {}).get("metrics")]
    )
    rtt_observed = snapshot_value(client_metrics, "repro_net_rtt_seconds")
    reconnects = sum(r["reconnects"] for r in reports)
    resynced = sum(r["resync_on_reconnect"] for r in reports)
    rtts = [sample for r in reports for sample in r["rtt_ms"]]
    ok = (
        not failures
        and len(reports) == clients
        and all(r["converged"] for r in reports)
        and identical
        and reconnects >= reconnect_clients
        and (reconnect_clients == 0 or resynced > 0)
    )
    return {
        "ok": ok,
        "clients": clients,
        "ops": ops,
        "seed": seed,
        "converged": all(r["converged"] for r in reports) and not failures,
        "signatures_identical": identical,
        "signatures": signatures,
        "document_length": len(server_view.get("document") or ""),
        "serial": server_view["serial"],
        "reconnects": reconnects,
        "resync_on_reconnect": resynced,
        "failures": failures,
        "wall_seconds": wall,
        "ops_per_sec": ops / wall if wall > 0 else 0.0,
        "rtt_ms_p50": percentile(rtts, 0.50),
        "rtt_ms_p99": percentile(rtts, 0.99),
        "server_stats": {
            "frames_received": server_stats["frames_received"],
            "resync_frames_sent": server_stats["resync_frames_sent"],
            "duplicates_suppressed": server_stats["duplicates_suppressed"],
            "wal": server_stats["wal"],
        },
        "client_metrics": client_metrics,
        "client_rtt_observations": rtt_observed,
        "server_metrics_enabled": bool(server_metrics.get("enabled")),
        "server_exposition": server_metrics.get("exposition", ""),
        "workers": reports,
    }
