"""Live load generation: N client OS processes against one TCP server.

This is the first place the paper's convergence property (Theorem 6.7)
is checked across *process* boundaries instead of inside one
interpreter.  The coordinator:

1. spawns ``repro serve`` as a subprocess on an ephemeral port (parsing
   its one-line ``REPRO-SERVE {...}`` announcement);
2. spawns one ``repro connect`` subprocess per client, each driving a
   seeded stream of edits against its live local document;
3. by default severs one client's connection mid-run (no ``bye``) — the
   worker reconnects and resyncs the broadcasts it missed from the
   server's write-ahead log, and retransmits its own unacknowledged
   frames;
4. waits for every worker to report convergence, asks the server for its
   document signature over the admin plane, shuts the server down, and
   compares: the run passes iff **every replica's final document
   signature is byte-identical**.

Every worker's operation stream is a pure function of ``seed`` and its
index; the interleaving is real wall-clock scheduling, which is exactly
the point — convergence must hold under schedules nobody picked.

With ``replicas = 2f+1 > 1`` the coordinator instead spawns a quorum
roster of ``repro serve --replica-of`` processes sharing one ordered
roster, hands every worker the same roster, and (with ``kill_primary``)
SIGKILLs the view-0 primary mid-run.  The surviving replicas run the
view change, the workers fail over via the roster walk, and the final
signature check is performed against whichever replica reports
``role == "primary"`` afterwards — acknowledged operations must survive
the crash byte-for-byte.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import socket
import string
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.model.schedule import OpSpec
from repro.net.client import NetClient
from repro.net.codec import encode_envelope, parse_roster
from repro.net.transport import read_frame, write_frame
from repro.obs import get_obs, merge_snapshots, snapshot_value
from repro.sim.faults import NetChaosPlan

_ALPHABET = string.ascii_lowercase

# ``--codec`` values mapped to the codec offer in the client hello:
# "bin" negotiates the binary framing (JSON fallback), "json" keeps v2
# envelopes over JSON, "v1" sends the legacy hello with no offer at all
# (no compact contexts, no batching — refused once the server has GC'd
# history the session would need).
_CODEC_OFFERS = {
    "bin": ("bin", "json"),
    "json": ("json",),
    "v1": (),
}


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


# ----------------------------------------------------------------------
# Admin plane helpers
# ----------------------------------------------------------------------
async def _admin_async(
    host: str,
    port: int,
    command: str,
    timeout: float = 5.0,
    **fields: Any,
) -> Dict[str, Any]:
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except asyncio.TimeoutError as exc:
        raise ConnectionError(
            f"admin {command!r}: no connection within {timeout:.1f}s"
        ) from exc
    try:
        await write_frame(
            writer, encode_envelope("admin", cmd=command, **fields)
        )
        reply = await asyncio.wait_for(read_frame(reader), timeout=timeout)
    except asyncio.TimeoutError as exc:
        raise ConnectionError(
            f"admin {command!r}: no reply within {timeout:.1f}s"
        ) from exc
    finally:
        writer.close()
    if reply is None or reply.get("type") != "admin_reply":
        raise ConnectionError(f"admin {command!r}: bad reply {reply!r}")
    return reply


def admin(
    host: str, port: int, command: str, timeout: float = 5.0, **fields: Any
) -> Dict[str, Any]:
    """Synchronous admin round-trip (signature / stats / shutdown).

    Extra keyword ``fields`` ride in the admin envelope — a multi-doc
    worker's signature/stats commands accept ``doc=...``.
    """
    return asyncio.run(
        _admin_async(host, port, command, timeout=timeout, **fields)
    )


# ----------------------------------------------------------------------
# One worker process
# ----------------------------------------------------------------------
async def _connect_with_retry(
    client: NetClient, connect_timeout: float
) -> int:
    """Connect-phase retry: tolerate a server that is still starting.

    Workers are spawned concurrently with (and sometimes before) the
    server processes, so the very first dial can land on a port nobody
    listens on yet.  Retry connection-refused with bounded exponential
    backoff until ``connect_timeout`` elapses; the last error is
    re-raised once the deadline passes.  Returns the number of failed
    attempts absorbed.
    """
    deadline = time.monotonic() + connect_timeout
    attempt = 0
    while True:
        try:
            await client.connect()
            return attempt
        except (ConnectionError, OSError):
            attempt += 1
            pause = min(0.1 * (2 ** min(attempt, 4)), 1.5)
            if time.monotonic() + pause >= deadline:
                raise
            await asyncio.sleep(pause)


async def run_worker(
    host: str,
    port: int,
    client_id: str,
    ops: int,
    expect_total: int,
    seed: int,
    insert_ratio: float = 0.7,
    reconnect_after: Optional[int] = None,
    offline_pause: float = 0.25,
    op_interval: float = 0.02,
    timeout: float = 60.0,
    roster: Optional[str] = None,
    max_reconnect_attempts: Optional[int] = None,
    connect_timeout: float = 20.0,
    doc: str = "",
    max_connect_attempts: int = 8,
    duration: Optional[float] = None,
    codec: str = "bin",
    batch: bool = True,
) -> Dict[str, Any]:
    """Drive one client: ``ops`` seeded edits, then wait for convergence.

    With ``reconnect_after = m`` the worker abruptly drops its TCP
    connection right after its ``m``-th edit, stays offline for
    ``offline_pause`` seconds (letting the other workers race ahead),
    then reconnects — exercising the hello/welcome resync from the
    server's write-ahead log and the retransmission of its own
    unacknowledged frames.

    ``roster`` (a ``host:port,...`` string) enables failover: on
    connection loss the client walks the replica roster and follows
    redirects until it finds the current primary.

    ``duration`` adds a deadline-based stop: the edit loop ends once
    that many seconds have elapsed, whatever the op count says — the
    open-loop mode scenario phases (and standalone soak runs) need.
    With ``duration`` set, ``ops`` becomes an optional cap (``0`` =
    unlimited); the report's ``ops`` field is always the count actually
    generated.
    """
    rng = random.Random(seed)
    try:
        offered = _CODEC_OFFERS[codec]
    except KeyError:
        raise ValueError(f"unknown codec {codec!r}") from None
    client = NetClient(
        client_id,
        host,
        port,
        reconnect_seed=seed,
        max_connect_attempts=max_connect_attempts,
        roster=parse_roster(roster) if roster else None,
        max_reconnect_attempts=max_reconnect_attempts,
        doc=doc,
        codecs=offered,
        batch=batch,
    )
    started = time.perf_counter()
    deadline = None if duration is None else started + duration
    connect_retries = await _connect_with_retry(client, connect_timeout)
    resync_on_reconnect = 0
    index = 0
    while True:
        if deadline is not None and time.perf_counter() >= deadline:
            break
        if index >= ops and (deadline is None or ops > 0):
            break
        length = len(client.css.document)
        inserting = length == 0 or rng.random() < insert_ratio
        if inserting:
            spec = OpSpec("ins", rng.randint(0, length), rng.choice(_ALPHABET))
        else:
            spec = OpSpec("del", rng.randint(0, length - 1))
        await client.generate(spec)
        if reconnect_after is not None and index + 1 == reconnect_after:
            await client.drop()
            await asyncio.sleep(offline_pause)
            before = client.resync_frames
            connect_retries += await _connect_with_retry(
                client, connect_timeout
            )
            resync_on_reconnect += client.resync_frames - before
        await asyncio.sleep(op_interval)
        index += 1
    converged = await client.wait_converged(expect_total, timeout=timeout)
    duration_wall = time.perf_counter() - started
    report = {
        "client": client_id,
        "doc": doc,
        "ops": index,
        "converged": converged,
        "signature": client.signature(),
        "document_length": len(client.css.document),
        "delivered": client.delivered,
        "connects": client.connects,
        "reconnects": client.connects - 1,
        "resync_frames": client.resync_frames,
        "resync_on_reconnect": resync_on_reconnect,
        "connect_retries": connect_retries,
        "view": client.view,
        "epoch": client.epoch,
        "redirects": client.redirects,
        "duration": duration_wall,
        "rtt_ms": [round(r * 1000.0, 4) for r in client.rtts],
        "metrics": get_obs().snapshot(),
    }
    await client.close()
    return report


async def run_scenario_worker(
    host: str,
    port: int,
    client_id: str,
    events: "Sequence[Any]",
    expect_total: int,
    *,
    initial_length: int = 0,
    started_at: Optional[float] = None,
    time_scale: float = 1.0,
    timeout: float = 60.0,
    connect_timeout: float = 20.0,
    reconnect_seed: int = 0,
    doc: str = "",
) -> Dict[str, Any]:
    """Drive one client through a compiled scenario program.

    ``events`` is one client's slice of a
    :class:`repro.scenarios.compile.ScenarioProgram` — timed ``join`` /
    ``op`` / ``offline`` / ``online`` events.  Each fires at
    ``started_at + event.at * time_scale`` on the wall clock (pass one
    shared ``started_at`` so all workers share a timeline); ``op``
    intents are resolved against the live local document exactly as the
    sim binding resolves them, ``offline`` severs the TCP connection
    abruptly (edits keep buffering locally), and ``online``/``join``
    (re)connect — resyncing missed broadcasts from the server's WAL and
    retransmitting the client's own unacknowledged frames.

    Returns the same report shape as :func:`run_worker`, plus a
    ``lane`` list of executed events (in scenario time) for the
    timeline renderer.
    """
    # Imported lazily: repro.scenarios imports this module's sibling
    # wire binding, so a top-level import would be circular.
    from repro.scenarios.compile import resolve_intent

    client = NetClient(client_id, host, port, reconnect_seed=reconnect_seed, doc=doc)
    cursor = initial_length
    lane: List[Dict[str, Any]] = []
    connect_retries = 0
    resync_on_reconnect = 0
    generated = 0
    started = time.perf_counter()
    t0 = started_at if started_at is not None else time.monotonic()
    for event in events:
        delay = (t0 + event.at * time_scale) - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        if event.kind in ("join", "online"):
            before = client.resync_frames
            connect_retries += await _connect_with_retry(
                client, connect_timeout
            )
            if event.kind == "online":
                resync_on_reconnect += client.resync_frames - before
        elif event.kind == "offline":
            await client.drop()
        elif event.kind == "op":
            spec, cursor = resolve_intent(
                event.intent, cursor, len(client.css.document)
            )
            await client.generate(spec)
            generated += 1
        else:
            raise ValueError(f"unknown scenario event kind {event.kind!r}")
        lane.append(
            {"at": event.at, "kind": event.kind, "phase": event.phase}
        )
    converged = await client.wait_converged(expect_total, timeout=timeout)
    report = {
        "client": client_id,
        "doc": doc,
        "ops": generated,
        "converged": converged,
        "signature": client.signature(),
        "document_length": len(client.css.document),
        "delivered": client.delivered,
        "connects": client.connects,
        "reconnects": max(0, client.connects - 1),
        "resync_frames": client.resync_frames,
        "resync_on_reconnect": resync_on_reconnect,
        "connect_retries": connect_retries,
        "duration": time.perf_counter() - started,
        "rtt_ms": [round(r * 1000.0, 4) for r in client.rtts],
        "lane": lane,
        "metrics": get_obs().snapshot(),
    }
    await client.close()
    return report


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
def _child_env() -> Dict[str, str]:
    """Environment for subprocesses: make ``repro`` importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _free_ports(count: int, host: str) -> List[int]:
    """Reserve ``count`` distinct currently-free TCP ports on ``host``.

    The sockets are held open until all ports are collected so the OS
    cannot hand the same port out twice, then released.  (A race with
    other processes grabbing the port before the replica binds it is
    possible but vanishingly rare in practice; the replica would fail
    loudly at startup.)
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _spawn_server(
    host: str,
    port: int,
    snapshot_every: int,
    initial_text: str,
    replica_of: Optional[str] = None,
    failover_delay: Optional[float] = None,
) -> "tuple[subprocess.Popen, int]":
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        str(port),
        "--snapshot-every",
        str(snapshot_every),
        "--announce",
        "--quiet",
    ]
    if initial_text:
        command += ["--initial", initial_text]
    if replica_of:
        command += ["--replica-of", replica_of]
    if failover_delay is not None:
        command += ["--failover-delay", str(failover_delay)]
    process = subprocess.Popen(
        command,
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            stderr = process.stderr.read() if process.stderr else ""
            raise RuntimeError(f"server failed to start:\n{stderr}")
        if line.startswith("REPRO-SERVE "):
            announced = json.loads(line[len("REPRO-SERVE "):])
            return process, int(announced["port"])


def split_ops(total: int, clients: int) -> List[int]:
    """Distribute ``total`` operations over ``clients`` round-robin."""
    base, extra = divmod(total, clients)
    return [base + (1 if index < extra else 0) for index in range(clients)]


def primary_deadline_for(failover_delay: float, replicas: int) -> float:
    """How long :func:`_find_primary` should keep polling.

    A full election can take every surviving replica's staggered turn
    (``failover_delay`` per view it waits out) plus log install and
    replay, so the budget scales with the roster's detection delay
    instead of hardcoding a wall-clock guess that flaps on slow CI:
    a generous ten staggered-election rounds, floored at 15 seconds.
    """
    return max(15.0, 10.0 * failover_delay * max(replicas, 1))


def _find_primary(
    server_processes: List[Tuple[subprocess.Popen, int]],
    host: str,
    deadline: float = 15.0,
    admin_timeout: float = 5.0,
) -> Tuple[int, Dict[str, Any]]:
    """Locate the live replica currently acting as primary.

    Polls the admin plane of every replica whose process is still alive
    until one reports ``role == "primary"`` (a standalone server has no
    replication block and is trivially primary).  Raises after
    ``deadline`` seconds — at that point the roster has no primary and
    the run has genuinely failed.  Callers with a replicated roster
    derive ``deadline`` from the roster's failover delay via
    :func:`primary_deadline_for`.
    """
    end = time.monotonic() + deadline
    while True:
        for process, port in server_processes:
            if process.poll() is not None:
                continue
            try:
                stats = admin(host, port, "stats", timeout=admin_timeout)
            except (ConnectionError, OSError):
                continue
            replication = stats.get("replication") or {}
            role = stats.get("role") or replication.get("role")
            if role in (None, "primary"):
                return port, stats
        if time.monotonic() >= end:
            raise RuntimeError("no live primary replica found")
        time.sleep(0.2)


def _spawn_chaosproxy(
    host: str, target_port: int, plan: NetChaosPlan
) -> "tuple[subprocess.Popen, int]":
    """Spawn ``repro chaosproxy`` in front of the server; returns its port."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "chaosproxy",
        "--target",
        f"{host}:{target_port}",
        "--host",
        host,
        "--port",
        "0",
        "--plan-json",
        json.dumps(plan.to_obj()),
        "--announce",
    ]
    process = subprocess.Popen(
        command,
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            stderr = process.stderr.read() if process.stderr else ""
            raise RuntimeError(f"chaos proxy failed to start:\n{stderr}")
        if line.startswith("REPRO-CHAOSPROXY "):
            announced = json.loads(line[len("REPRO-CHAOSPROXY "):])
            return process, int(announced["port"])


def run_loadgen(
    clients: int = 3,
    ops: int = 500,
    seed: int = 7,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 240.0,
    insert_ratio: float = 0.7,
    op_interval: float = 0.02,
    reconnect_clients: Optional[int] = None,
    snapshot_every: int = 64,
    initial_text: str = "",
    quiet: bool = False,
    replicas: int = 1,
    kill_primary: bool = False,
    failover_delay: float = 0.5,
    kill_after: Optional[float] = None,
    chaos: Optional[NetChaosPlan] = None,
    primary_deadline: Optional[float] = None,
    codec: str = "bin",
) -> Dict[str, Any]:
    """Run the full multi-process deployment and report convergence.

    ``reconnect_clients`` workers (default: 1 when there is more than
    one client) each drop and re-establish their connection mid-run.
    The returned report's ``ok`` is True iff every worker converged,
    every replica signature (workers + server) is byte-identical, and
    every requested reconnect actually happened and resynced.

    ``replicas = 2f+1 > 1`` spawns a quorum roster instead of a single
    server (ephemeral ports; ``port`` is ignored).  ``kill_primary``
    SIGKILLs the view-0 primary ``kill_after`` seconds into the run
    (default: roughly mid-run), after which the report additionally
    requires ``view_changes >= 1`` and the signature comparison is made
    against the *new* primary — the replica that adopted the
    quorum-certified log.

    ``chaos`` interposes a seeded :mod:`repro.net.chaosproxy` subprocess
    between the workers and the server: every client byte stream rides
    through the plan's latency/jitter/reset faults while the admin plane
    (and the final signature check) talks to the server directly.

    ``primary_deadline`` bounds the post-run primary search; by default
    it is derived from ``failover_delay`` (see
    :func:`primary_deadline_for`) so slow-CI replicated runs don't flap.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if ops < clients:
        raise ValueError("need at least one operation per client")
    if replicas > 1 and (replicas < 3 or replicas % 2 == 0):
        raise ValueError("replica roster must be an odd count >= 3 (2f+1)")
    if kill_primary and replicas < 3:
        raise ValueError("--kill-primary needs a replica roster (>= 3)")
    if chaos is not None and replicas > 1:
        raise ValueError(
            "chaos proxying covers the single-server deployment; the "
            "replicated roster is chaos-tested in-process "
            "(tests/net/test_chaos_net.py)"
        )
    if primary_deadline is None:
        primary_deadline = primary_deadline_for(failover_delay, replicas)
    if reconnect_clients is None:
        reconnect_clients = 1 if clients > 1 else 0
    reconnect_clients = min(reconnect_clients, clients)

    def log(text: str) -> None:
        if not quiet:
            print(f"[loadgen] {text}", flush=True)

    server_processes: List[Tuple[subprocess.Popen, int]] = []
    roster_text = ""
    if replicas > 1:
        ports = _free_ports(replicas, host)
        roster_text = ",".join(f"{host}:{p}" for p in ports)
        for index, replica_port in enumerate(ports):
            process, bound = _spawn_server(
                host,
                replica_port,
                snapshot_every,
                initial_text,
                replica_of=roster_text,
                failover_delay=failover_delay,
            )
            server_processes.append((process, bound))
            log(f"replica s{index} pid {process.pid} on {host}:{bound}")
        bound_port = server_processes[0][1]
    else:
        server_process, bound_port = _spawn_server(
            host, port, snapshot_every, initial_text
        )
        server_processes.append((server_process, bound_port))
        log(f"server pid {server_process.pid} on {host}:{bound_port}")
    proxy_process: Optional[subprocess.Popen] = None
    worker_port = bound_port
    if chaos is not None:
        proxy_process, worker_port = _spawn_chaosproxy(
            host, bound_port, chaos
        )
        log(
            f"chaos proxy pid {proxy_process.pid} on {host}:{worker_port} "
            f"-> {host}:{bound_port} (seed {chaos.seed})"
        )
    shares = split_ops(ops, clients)
    workers: List[subprocess.Popen] = []
    started = time.perf_counter()
    try:
        for index in range(clients):
            name = f"c{index + 1}"
            command = [
                sys.executable,
                "-m",
                "repro",
                "connect",
                "--host",
                host,
                "--port",
                str(worker_port),
                "--client",
                name,
                "--ops",
                str(shares[index]),
                "--expect-total",
                str(ops),
                "--seed",
                str(seed * 1000 + index),
                "--insert-ratio",
                str(insert_ratio),
                "--op-interval",
                str(op_interval),
                "--timeout",
                str(timeout),
                "--codec",
                codec,
                "--json",
            ]
            if roster_text:
                command += ["--roster", roster_text]
            if index < reconnect_clients:
                command += [
                    "--reconnect-after",
                    str(max(1, shares[index] // 2)),
                ]
            workers.append(
                subprocess.Popen(
                    command,
                    env=_child_env(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
        log(f"spawned {clients} worker processes ({shares} ops each)")
        if kill_primary:
            # Roughly mid-run: interpreter startup plus half the edit
            # stream of the busiest worker.
            delay = kill_after
            if delay is None:
                delay = max(2.0, shares[0] * op_interval * 0.5 + 1.0)
            time.sleep(delay)
            victim, victim_port = server_processes[0]
            victim.kill()
            victim.wait()
            log(
                f"killed view-0 primary pid {victim.pid} "
                f"({host}:{victim_port}) after {delay:.1f}s"
            )
        reports: List[Dict[str, Any]] = []
        failures: List[str] = []
        for index, worker in enumerate(workers):
            name = f"c{index + 1}"
            try:
                stdout, stderr = worker.communicate(timeout=timeout + 30.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                stdout, stderr = worker.communicate()
                failures.append(f"{name}: timed out")
                continue
            lines = [l for l in stdout.splitlines() if l.strip()]
            if worker.returncode != 0 or not lines:
                failures.append(
                    f"{name}: exit {worker.returncode}\n{stderr.strip()}"
                )
                # A non-converged worker still prints its report line;
                # keep it for the post-mortem (it does not count toward
                # the convergence check below, which requires a clean
                # exit from every worker).
                if lines:
                    try:
                        reports.append(json.loads(lines[-1]))
                    except json.JSONDecodeError:
                        pass
                continue
            reports.append(json.loads(lines[-1]))
        wall = time.perf_counter() - started
        primary_port, server_stats = _find_primary(
            server_processes, host, deadline=primary_deadline
        )
        server_view = admin(host, primary_port, "signature")
        server_metrics = admin(host, primary_port, "metrics")
    finally:
        if proxy_process is not None and proxy_process.poll() is None:
            proxy_process.kill()
        for process, replica_port in server_processes:
            if process.poll() is not None:
                continue
            try:
                admin(host, replica_port, "shutdown")
            except (ConnectionError, OSError):
                pass
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
        for worker in workers:
            if worker.poll() is None:
                worker.kill()

    replication = server_stats.get("replication") or {}
    view_changes = int(replication.get("view_changes", 0))
    signatures = {r["client"]: r["signature"] for r in reports}
    signatures[replication.get("replica", "s")] = server_view["signature"]
    identical = len(set(signatures.values())) == 1
    # Exact cross-process merge: every worker snapshots its registry and
    # the fixed bucket boundaries make the histograms sum element-wise.
    client_metrics = merge_snapshots(
        [r["metrics"] for r in reports if r.get("metrics", {}).get("metrics")]
    )
    rtt_observed = snapshot_value(client_metrics, "repro_net_rtt_seconds")
    reconnects = sum(r["reconnects"] for r in reports)
    resynced = sum(r["resync_on_reconnect"] for r in reports)
    rtts = [sample for r in reports for sample in r["rtt_ms"]]
    ok = (
        not failures
        and len(reports) == clients
        and all(r["converged"] for r in reports)
        and identical
        and reconnects >= reconnect_clients
        # A kill-primary run pauses commits during the outage, so the
        # deliberately-dropped worker may genuinely have nothing to
        # resync when it reconnects; only demand resync evidence when
        # the roster stayed healthy.
        and (reconnect_clients == 0 or kill_primary or resynced > 0)
        and (not kill_primary or view_changes >= 1)
    )
    return {
        "ok": ok,
        "clients": clients,
        "ops": ops,
        "seed": seed,
        "replicas": replicas,
        "roster": roster_text,
        "chaos": chaos.to_obj() if chaos is not None else None,
        "killed_primary": kill_primary,
        "view_changes": view_changes,
        "primary": replication.get("replica", "s"),
        "view": int(replication.get("view", 0)),
        "converged": all(r["converged"] for r in reports) and not failures,
        "signatures_identical": identical,
        "signatures": signatures,
        "document_length": len(server_view.get("document") or ""),
        "serial": server_view["serial"],
        "reconnects": reconnects,
        "resync_on_reconnect": resynced,
        "failures": failures,
        "wall_seconds": wall,
        "ops_per_sec": ops / wall if wall > 0 else 0.0,
        "rtt_ms_p50": percentile(rtts, 0.50),
        "rtt_ms_p99": percentile(rtts, 0.99),
        "server_stats": {
            "frames_received": server_stats["frames_received"],
            "resync_frames_sent": server_stats["resync_frames_sent"],
            "duplicates_suppressed": server_stats["duplicates_suppressed"],
            "overload": server_stats.get("overload", {}),
            "wal": server_stats["wal"],
        },
        "client_metrics": client_metrics,
        "client_rtt_observations": rtt_observed,
        "server_metrics_enabled": bool(server_metrics.get("enabled")),
        "server_exposition": server_metrics.get("exposition", ""),
        "workers": reports,
    }
