"""A seeded TCP chaos proxy: socket-level fault injection for the wire
runtime.

PR 1's :class:`~repro.sim.faults.FaultPlan` adversaries the *simulated*
network; this module is its twin for the real one.  A
:class:`ChaosProxy` listens on its own port, forwards every accepted
connection to the target server, and perturbs the byte stream according
to a declarative :class:`~repro.sim.faults.NetChaosPlan` — latency and
jitter, per-connection bandwidth caps, one mid-run reset of every live
connection, one-way partitions (bytes read and discarded, the TCP mirror
of a one-way channel outage), and per-connection slow-loris stalls where
the socket stays open but nothing moves.

Every random draw comes from one RNG seeded with the plan's seed, so a
run through the proxy replays deterministically up to OS scheduling.
The proxy never parses frames: it is a byte pump, which is exactly the
point — the session layer and the server's overload armor must survive
an adversary that knows nothing about message boundaries (a reset or a
stall lands mid-frame as often as not).

The chaos-net property suite (``tests/net/test_chaos_net.py``) drives
real clients through sampled plans against a real
:class:`~repro.net.server.NetServer` and asserts the paper's convergence
guarantee end to end: byte-identical document signatures and zero lost
acknowledged operations.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Optional, Set

from repro.sim.faults import NetChaosPlan

#: Forwarding slice: small enough that latency/bandwidth shaping applies
#: per-slice, large enough that a healthy proxy adds little overhead.
CHUNK = 4096


class ChaosProxy:
    """One seeded TCP proxy in front of one server.

    Start it, point clients at ``(host, port)``, and every byte flows
    through :meth:`_pump` twice (client→server and server→client), each
    direction shaped independently by the plan.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: Optional[NetChaosPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan or NetChaosPlan()
        self.host = host
        self.port = port
        self._rng = random.Random(self.plan.seed)
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_at = 0.0
        self._reset_done = False
        self._reset_task: Optional[asyncio.Task] = None
        self._live: Set[asyncio.StreamWriter] = set()
        # -- stats -----------------------------------------------------
        self.connections = 0
        self.bytes_c2s = 0
        self.bytes_s2c = 0
        self.resets = 0
        self.stalls = 0
        self.partitioned_bytes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.plan.reset_after is not None:
            self._reset_task = asyncio.ensure_future(self._reset_watch())

    async def stop(self) -> None:
        if self._reset_task is not None:
            self._reset_task.cancel()
            self._reset_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._live):
            writer.transport.abort()
        self._live.clear()

    def _elapsed(self) -> float:
        """Seconds on the proxy clock (since :meth:`start`)."""
        return time.monotonic() - self._started_at

    # ------------------------------------------------------------------
    # Fault machinery
    # ------------------------------------------------------------------
    async def _reset_watch(self) -> None:
        """One mid-run reset: abort every live connection, exactly once.

        One-shot by design — a per-connection reset would fire on every
        reconnection forever and the run could never make progress.
        """
        await asyncio.sleep(self.plan.reset_after)
        if self._reset_done:
            return
        self._reset_done = True
        victims = list(self._live)
        for writer in victims:
            self.resets += 1
            writer.transport.abort()

    def _partitioned(self, direction: str) -> bool:
        plan = self.plan
        if plan.partition != direction:
            return False
        at = self._elapsed()
        return plan.partition_at <= at < plan.partition_at + plan.partition_for

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        stall_gate: "asyncio.Event",
    ) -> None:
        """Forward one direction of one connection, shaped by the plan."""
        plan = self.plan
        window_start = time.monotonic()
        window_bytes = 0
        try:
            while True:
                chunk = await reader.read(CHUNK)
                if not chunk:
                    break
                # The gate is checked *after* the read: a pump idling in
                # ``read`` when the stall engages must still hold any
                # chunk that arrives mid-stall until the window passes.
                await stall_gate.wait()
                if plan.latency or plan.jitter:
                    await asyncio.sleep(
                        plan.latency + self._rng.uniform(0.0, plan.jitter)
                    )
                if plan.bandwidth:
                    window_bytes += len(chunk)
                    owed = window_bytes / plan.bandwidth
                    spent = time.monotonic() - window_start
                    if owed > spent:
                        await asyncio.sleep(owed - spent)
                if self._partitioned(direction):
                    # One-way outage: the bytes vanish.  TCP's own
                    # retransmission cannot help — they were delivered
                    # to *us*; the session layer must re-earn delivery.
                    self.partitioned_bytes += len(chunk)
                    continue
                if direction == "c2s":
                    self.bytes_c2s += len(chunk)
                else:
                    self.bytes_s2c += len(chunk)
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _stall_watch(self, gate: asyncio.Event) -> None:
        """Slow-loris one connection: hold both pumps shut for a while."""
        plan = self.plan
        await asyncio.sleep(plan.stall_at)
        self.stalls += 1
        gate.clear()
        await asyncio.sleep(plan.stall_for)
        gate.set()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            writer.transport.abort()
            return
        self.connections += 1
        self._live.add(writer)
        self._live.add(up_writer)
        stall_gate = asyncio.Event()
        stall_gate.set()
        stall_task: Optional[asyncio.Task] = None
        if self.plan.stall_at is not None:
            stall_task = asyncio.ensure_future(self._stall_watch(stall_gate))
        try:
            await asyncio.gather(
                self._pump(reader, up_writer, "c2s", stall_gate),
                self._pump(up_reader, writer, "s2c", stall_gate),
            )
        finally:
            if stall_task is not None:
                stall_task.cancel()
            self._live.discard(writer)
            self._live.discard(up_writer)
            writer.close()
            up_writer.close()

    def stats(self) -> dict:
        return {
            "connections": self.connections,
            "bytes_c2s": self.bytes_c2s,
            "bytes_s2c": self.bytes_s2c,
            "resets": self.resets,
            "stalls": self.stalls,
            "partitioned_bytes": self.partitioned_bytes,
        }


# ----------------------------------------------------------------------
# Process entry point (the ``repro chaosproxy`` verb)
# ----------------------------------------------------------------------
async def _proxy_main(
    proxy: ChaosProxy, announce: bool
) -> int:
    await proxy.start()
    if announce:
        # One machine-parseable line; loadgen reads this to discover the
        # ephemeral port (the same contract as REPRO-SERVE).
        print(
            "REPRO-CHAOSPROXY "
            + json.dumps(
                {
                    "host": proxy.host,
                    "port": proxy.port,
                    "target": f"{proxy.target_host}:{proxy.target_port}",
                    "plan": proxy.plan.to_obj(),
                }
            ),
            flush=True,
        )
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:  # pragma: no cover - teardown only
        return 0


def run_chaosproxy(
    target_host: str,
    target_port: int,
    plan: Optional[NetChaosPlan] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: bool = False,
) -> int:
    """Blocking entry point for ``repro chaosproxy``."""
    proxy = ChaosProxy(
        target_host, target_port, plan=plan, host=host, port=port
    )
    try:
        return asyncio.run(_proxy_main(proxy, announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
