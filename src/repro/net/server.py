"""The deployed CSS server: a real TCP listener around ``CssServer``.

One :class:`NetServer` hosts exactly the objects the simulator hosts —
a :class:`~repro.jupiter.css.CssServer`, a
:class:`~repro.jupiter.persistence.ServerWriteAheadLog`, and one
:class:`~repro.jupiter.session.SessionSender` /
:class:`~repro.jupiter.session.SessionReceiver` pair per client channel —
but drives them from asyncio connections instead of simulated events.

Connection lifecycle (the server side of the reconnect state machine in
``docs/ARCHITECTURE.md``):

1. A client's first frame is ``hello {client, delivered}``, where
   ``delivered`` is its consumption cursor (how many broadcasts it has
   consumed, i.e. its receiver's cumulative ack).
2. The server registers the client (late joiners are welcome: they
   simply resync from serial 0), answers ``welcome {ack, serial,
   resync}`` — ``ack`` being the server's cumulative ack of the
   client-to-server channel, which lets the client drop acknowledged
   pending frames and retransmit only the rest —
3. and then **resyncs from durable state**: every broadcast with a
   serial in ``delivered+1 .. last_serial`` is rebuilt from the
   write-ahead log (:meth:`ServerWriteAheadLog.broadcasts_for`) and
   re-shipped as an ordinary ``data`` frame whose channel sequence
   number *is* the serial.
4. Thereafter ``data`` frames flow both ways; the WAL is appended
   *before* any broadcast frame hits a socket, so a crash can never
   lose an operation the world has seen.

Because every broadcast goes to every client exactly once in serial
order, the server→client channel sequence number always equals the
broadcast serial — which is what makes the WAL a perfect retransmission
buffer: nothing needs to be kept in memory per disconnected client.

**Replicated deployment.**  Started with a ``roster`` (ordered
``(host, port)`` pairs, one per replica) the same class becomes one
replica of a 2f+1 quorum group (:mod:`repro.jupiter.replication`):

* the **primary** of the current view serialises as above, but parks
  every broadcast frame and client acknowledgement until a quorum of
  ``f + 1`` replicas (itself included) has durably appended the record —
  an acknowledged operation therefore survives the loss of any ``f``
  replicas, the primary included;
* **backups** maintain a mirrored WAL fed over ``repl_append`` frames
  and answer client ``hello``\\ s with a ``redirect`` to the primary;
* when a backup loses its replication feed it waits a deterministic
  stagger (``failover_delay x views-until-my-turn``), gathers
  ``repl_offer`` promises from a quorum, adopts the log with the maximal
  ``(last_epoch, last_serial)``, re-stamps the uncommitted suffix under
  the new epoch, rebuilds the CSS server by WAL replay, and installs the
  adopted log on every reachable replica — the VSR view change, with the
  epoch in every frame rejecting whatever a deposed primary still ships.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import SERVER_ID, ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssServer
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.persistence import (
    ServerWriteAheadLog,
    compact_context,
    load_wal,
    record_operation,
    save_wal,
    snapshot_server,
)
from repro.jupiter.replication import (
    committed_origin_ack,
    elect,
    primary_for,
    quorum_size,
)
from repro.jupiter.session import SessionReceiver, SessionSender
from repro.net.codec import (
    DEFAULT_DOC,
    WireError,
    compact_server_op_obj,
    document_signature,
    encode_envelope,
    message_from_wire,
    message_to_obj,
    negotiate_codec,
    roster_to_obj,
)
from repro.net.transport import (
    MAX_FRAME,
    OUTBOUND_QUEUE,
    WRITE_TIMEOUT,
    FrameSender,
    FrameTooLarge,
    drain_payload,
    read_frame,
    write_frame,
)
from repro.obs import get_obs

#: The server's named logger; silent unless the embedding process (the
#: ``repro serve`` CLI, a test harness) configures handlers and a level.
LOGGER = logging.getLogger("repro.net.server")


class _Deposed(Exception):
    """A replica quoted a higher view: this primary must stand down."""


class _Reinstall(Exception):
    """The backup lags behind the compaction floor: full-log install."""


class _ClientChannel:
    """Per-client transport state: sessions, parked payloads, live writer."""

    def __init__(self, client: ReplicaId, shard: "_DocShard") -> None:
        self.client = client
        #: the document shard this channel belongs to — one client name
        #: may hold independent channels on several shards
        self.shard = shard
        self.sender = SessionSender((SERVER_ID, client))
        self.receiver = SessionReceiver((client, SERVER_ID))
        #: out-of-order payloads parked until the session releases them
        self.parked: Dict[int, Any] = {}
        self.writer: Optional[asyncio.StreamWriter] = None
        #: bounded outbound queue + writer task wrapping ``writer``; all
        #: frames to this peer flow through it so one stalled socket
        #: never blocks the serialise/commit/broadcast loops
        self.outbound: Optional[FrameSender] = None
        #: the client's consumption cursor (its last reported cumulative ack)
        self.delivered = 0
        self.connects = 0
        self.evictions = 0
        #: ``True`` once a hello negotiated the v2 wire options (codec /
        #: batching / pin reporting); a v1 session leaves it ``False``
        self.v2 = False
        #: the client's GC pin: the lowest context floor any of its
        #: still-unacknowledged operations may carry.  Reported in every
        #: v2 frame; the shard never rebases past the minimum pin, so an
        #: in-flight or retransmitted operation can always be attached.
        self.pin = 0
        #: monotonic timestamp the channel lost its socket (``None``
        #: while connected); drives the GC grace window for laggards.
        #: A channel rebuilt from a recovered WAL starts the clock at
        #: construction — its client may be long gone.
        self.disconnected_at: Optional[float] = time.monotonic()


class _DocShard:
    """One hosted document: its CSS server, WAL, channels, and disk file.

    Each shard carries an independent serialization order (its own
    serial counter, WAL, and per-client session pairs); nothing but the
    listener and the admission/overload accounting is shared between
    shards, which is exactly what makes multi-document hosting a safe
    generalisation — the per-document protocol is byte-identical to a
    single-document :class:`NetServer`.
    """

    def __init__(
        self,
        doc: str,
        server: CssServer,
        wal: ServerWriteAheadLog,
        wal_path: Optional[str] = None,
    ) -> None:
        self.doc = doc
        self.server = server
        self.wal = wal
        self.channels: Dict[ReplicaId, _ClientChannel] = {}
        #: monotonic timestamp the shard was opened (uptime accounting)
        self.opened_at = time.monotonic()
        #: on-disk WAL file (``None`` = in-memory only, the pre-fleet
        #: behaviour; replicated servers get durability from the quorum)
        self.wal_path = wal_path
        self.frames_received = 0
        self.resync_frames_sent = 0
        self.duplicates_suppressed = 0
        #: serial -> context floor ``d`` of the record at that serial,
        #: for every *retained* WAL record.  The GC fixpoint lowers a
        #: candidate floor until every retained record past it decodes
        #: against the new base (``d >= floor``); entries leave the map
        #: when compaction truncates their records.
        self.ctx_floors: Dict[int, int] = {
            int(record["serial"]): (
                int(record["ctx"][0]) if "ctx" in record else 0
            )
            for record in wal.records
        }
        self.gc_runs = 0
        self.states_pruned = 0

    @property
    def record_floor(self) -> int:
        """Serial the retained records resync from.

        Records cover ``record_floor + 1 .. last_serial``; a client
        whose cursor fell below it cannot be resynced from the log and
        needs a whole-state transfer (v2) or is turned away (v1).
        """
        if self.wal.records:
            return int(self.wal.records[0]["serial"]) - 1
        return self.wal.last_serial

    def prune_ctx_floors(self) -> None:
        """Drop floor entries whose records a compaction truncated."""
        if self.wal.records:
            low = int(self.wal.records[0]["serial"])
            stale = [serial for serial in self.ctx_floors if serial < low]
        else:
            stale = list(self.ctx_floors)
        for serial in stale:
            del self.ctx_floors[serial]

    def rewrite_disk(self) -> None:
        """Write the full WAL (header + records) — open and compaction."""
        if self.wal_path is not None:
            save_wal(self.wal, self.wal_path)

    def write_compaction(self) -> None:
        """Persist the compaction that just ran, as cheaply as it allows.

        A delta compaction appends one ``{"delta": ...}`` line — the
        incremental path that keeps steady-state disk writes
        O(changes-since-last-checkpoint).  A full checkpoint (or an
        in-memory-only shard) rewrites the file wholesale; ``load_wal``
        replays header + deltas + records either way.
        """
        if self.wal_path is None:
            return
        if (
            self.wal.last_compaction_mode == "delta"
            and self.wal.last_delta is not None
            and os.path.exists(self.wal_path)
        ):
            with open(self.wal_path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"delta": self.wal.last_delta}, sort_keys=True)
                    + "\n"
                )
                handle.flush()
        else:
            self.rewrite_disk()

    def append_disk(self) -> None:
        """Append the newest record as one line; flushed before any
        broadcast or acknowledgement leaves the process, so an
        acknowledged operation survives a SIGKILL (``load_wal`` drops a
        torn final line, never an acked one)."""
        if self.wal_path is None:
            return
        record = self.wal.records[-1]
        with open(self.wal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()


def _doc_filename(doc: str) -> str:
    """Deterministic, filesystem-safe WAL filename for a document id."""
    return urllib.parse.quote(doc, safe="") + ".wal"


class NetServer:
    """Serve CSS documents over TCP — one or many behind one listener.

    The client roster is dynamic: the first ``hello`` from an unknown
    name registers it (appending to both the protocol server's broadcast
    list and the WAL's roster).  WAL compaction uses the minimum
    consumption cursor over the roster as its retain floor, so a
    disconnected or lagging client can always resync from records.

    **Multi-document hosting (the fleet tier's worker role).**  Every
    hosted document is a :class:`_DocShard` with its own ``CssServer``,
    write-ahead log, and per-client session pairs; a ``hello`` naming a
    ``doc`` is routed to (and lazily opens) that shard, a doc-less hello
    lands on the default ``doc_id``.  Serialization orders are fully
    independent across shards; admission control and the overload
    accounting are shared, because sockets and memory are.  With a
    ``wal_dir``, each shard's WAL lives in ``<wal_dir>/<doc>.wal`` —
    appended (and flushed) *before* any broadcast or ack leaves the
    process, rewritten on compaction — so a re-placed document's next
    owner recovers exactly the state the old owner acknowledged.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        initial_text: str = "",
        snapshot_every: int = 64,
        quiet: bool = True,
        roster: Optional[Sequence[Tuple[str, int]]] = None,
        replica_index: int = 0,
        failover_delay: float = 0.5,
        max_connections: int = 64,
        max_queued_frames: int = 8192,
        outbound_queue: int = OUTBOUND_QUEUE,
        write_timeout: Optional[float] = WRITE_TIMEOUT,
        idle_timeout: Optional[float] = 60.0,
        retry_after: float = 1.0,
        doc_id: str = DEFAULT_DOC,
        wal_dir: Optional[str] = None,
        batch: bool = True,
        gc: bool = True,
        gc_interval: float = 0.25,
        gc_grace: float = 15.0,
        gc_threshold: int = 64,
    ) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self.initial_text = initial_text
        self.snapshot_every = snapshot_every
        # -- steady-state knobs -----------------------------------------
        #: coalesce bursts of outbound frames into ``multi`` envelopes
        #: (per peer, only if that peer's hello asked for batching)
        self.batch = batch
        #: enable the active-window GC sweep (acked-prefix pruning)
        self.gc_enabled = gc
        #: seconds between GC sweeps
        self.gc_interval = gc_interval
        #: how long a disconnected client's pin keeps holding the GC
        #: floor; past it the client is dropped from the floor and must
        #: accept a whole-state transfer on return
        self.gc_grace = gc_grace
        #: minimum floor advance (serials) before a rebase is worth its
        #: full-checkpoint cost — hysteresis against GC thrash
        self.gc_threshold = gc_threshold
        self._gc_task: Optional[asyncio.Task] = None
        # -- overload armor knobs --------------------------------------
        #: admission bound on concurrent client sessions
        self.max_connections = max_connections
        #: admission bound on the *total* outbound backlog (frames parked
        #: across every per-peer queue); new sessions are shed above it
        self.max_queued_frames = max_queued_frames
        #: per-peer outbound queue capacity (overflow evicts that peer)
        self.outbound_queue = outbound_queue
        #: write deadline applied to every server-side frame write
        self.write_timeout = write_timeout
        #: per-session read deadline; the client heartbeat (ping every
        #: HEARTBEAT_INTERVAL) keeps a healthy idle session far below it
        self.idle_timeout = idle_timeout
        #: seconds quoted in the retry_after envelope when shedding
        self.retry_after = retry_after
        self.evictions = 0
        self.shed_connections = 0
        self.oversize_rejected = 0
        # -- document shards -------------------------------------------
        #: the default document — what a doc-less ``hello`` lands on
        self.doc_id = str(doc_id)
        #: per-document WAL directory (one ``<doc>.wal`` file each);
        #: placement may move a document between fleet workers, but its
        #: log stays put — the next owner recovers from the same file
        self.wal_dir = wal_dir
        if wal_dir is not None and roster:
            raise ProtocolError(
                "wal_dir persistence is for standalone (fleet) workers; "
                "a replicated group's durability is the quorum"
            )
        self._obs = get_obs()
        self._logger = LOGGER
        self.started_at = time.monotonic()
        self.shards: Dict[str, _DocShard] = {}
        self._open_shard(self.doc_id)
        self.resync_frames_sent = 0
        self.frames_received = 0
        self.duplicates_suppressed = 0
        # -- replication state (inert in the standalone deployment) ----
        self.roster: Optional[List[Tuple[str, int]]] = (
            [(str(h), int(p)) for h, p in roster] if roster else None
        )
        if self.roster is not None and not (
            0 <= replica_index < len(self.roster)
        ):
            raise ProtocolError(
                f"replica index {replica_index} outside roster of "
                f"{len(self.roster)}"
            )
        self.replica_index = replica_index
        self.replica_ids: List[ReplicaId] = (
            [f"{SERVER_ID}{i}" for i in range(len(self.roster))]
            if self.roster
            else []
        )
        self.failover_delay = failover_delay
        self.view = 0
        #: epochs equal view numbers; stamped into every replicated frame
        self.epoch = 0
        #: highest view this replica promised to (repl_seek): frames from
        #: lower epochs are rejected even before the new view installs
        self.promised = 0
        #: quorum commit floor — the highest serial on f+1 disks
        self.committed = 0
        self.view_changes = 0
        #: per-replica durable high-water marks (primary bookkeeping);
        #: a dead backup's last ack stays — its disk outlives the process
        self._repl_acked: Dict[ReplicaId, int] = {}
        #: serial -> (origin client, broadcast frames) parked until commit
        self._pending: Dict[int, Tuple[ReplicaId, List[Tuple[ReplicaId, Dict[str, Any]]]]] = {}
        self._backup_tasks: Dict[int, asyncio.Task] = {}
        self._repl_wakeup: Dict[int, asyncio.Event] = {}
        self._primary_feed: Optional[asyncio.StreamWriter] = None
        self._failover_task: Optional[asyncio.Task] = None
        self._failover_started: Optional[float] = None
        self._failover_target = 0
        self._commit_lock = asyncio.Lock()
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        if self.replicated:
            self._obs.repl_commit_quorum.set(self.quorum)

    # ------------------------------------------------------------------
    # Replication roster
    # ------------------------------------------------------------------
    @property
    def replicated(self) -> bool:
        return self.roster is not None

    @property
    def replica_id(self) -> ReplicaId:
        if not self.replicated:
            return SERVER_ID
        return self.replica_ids[self.replica_index]

    @property
    def quorum(self) -> int:
        return quorum_size(len(self.roster)) if self.replicated else 1

    @property
    def is_primary(self) -> bool:
        """Standalone servers are trivially primary."""
        return (
            not self.replicated
            or primary_for(self.view, self.replica_ids) == self.replica_id
        )

    # ------------------------------------------------------------------
    # Document shards
    # ------------------------------------------------------------------
    # The pre-fleet single-document attributes remain as views onto the
    # default shard: every replication path (which is restricted to the
    # default document) and every existing embedder keeps working
    # unchanged.  The setters exist because the view change reassigns
    # ``self.wal`` / ``self.server`` / ``self.channels`` wholesale.
    @property
    def server(self) -> CssServer:
        return self.shards[self.doc_id].server

    @server.setter
    def server(self, value: CssServer) -> None:
        self.shards[self.doc_id].server = value

    @property
    def wal(self) -> ServerWriteAheadLog:
        return self.shards[self.doc_id].wal

    @wal.setter
    def wal(self, value: ServerWriteAheadLog) -> None:
        self.shards[self.doc_id].wal = value

    @property
    def channels(self) -> Dict[ReplicaId, _ClientChannel]:
        return self.shards[self.doc_id].channels

    @channels.setter
    def channels(self, value: Dict[ReplicaId, _ClientChannel]) -> None:
        self.shards[self.doc_id].channels = value

    def _open_shard(self, doc: str) -> _DocShard:
        """Return the shard for ``doc``, opening (and recovering) it lazily.

        With a ``wal_dir``, an existing ``<doc>.wal`` is replayed through
        a real :class:`CssServer` and every logged origin gets a rebuilt
        channel — the sender positioned at ``last_serial + 1`` and the
        receiver fast-forwarded past the origin's logged operations, the
        same restart recovery a single-document server performs.
        """
        shard = self.shards.get(doc)
        if shard is not None:
            return shard
        wal_path = None
        if self.wal_dir is not None:
            os.makedirs(self.wal_dir, exist_ok=True)
            wal_path = os.path.join(self.wal_dir, _doc_filename(doc))
        if wal_path is not None and os.path.exists(wal_path):
            wal = load_wal(wal_path)
            counts = wal.origin_counts()
            for origin in counts:
                # Belt and braces: any origin present in the log gets a
                # channel even if its registration record predates the
                # client-list snapshot.
                if origin != SERVER_ID and origin not in wal.clients:
                    wal.clients.append(origin)
            shard = _DocShard(doc, wal.recover(), wal, wal_path)
            for name in list(wal.clients):
                channel = _ClientChannel(name, shard)
                channel.sender.restore(
                    {"next_seq": wal.last_serial + 1, "acked": 0}
                )
                channel.receiver.fast_forward(counts.get(name, 0))
                shard.channels[name] = channel
            self._log(
                f"document {doc!r}: recovered through serial "
                f"{wal.last_serial} from {wal_path} "
                f"({len(shard.channels)} known clients)"
            )
        else:
            initial = (
                ListDocument.from_string(self.initial_text)
                if self.initial_text
                else None
            )
            shard = _DocShard(
                doc,
                CssServer(SERVER_ID, [], initial),
                ServerWriteAheadLog(
                    SERVER_ID,
                    [],
                    snapshot_every=self.snapshot_every,
                    initial_text=self.initial_text,
                ),
                wal_path,
            )
            shard.rewrite_disk()
        self.shards[doc] = shard
        return shard

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        role = ""
        if self.replicated:
            role = (
                f" as {self.replica_id} "
                f"({'primary' if self.is_primary else 'backup'} of view "
                f"{self.view}, roster of {len(self.roster)})"
            )
        self._log(f"listening on {self.host}:{self.port}{role}")
        if self.replicated and self.is_primary:
            self._start_replication()
        if self.gc_enabled:
            self._gc_task = asyncio.ensure_future(self._gc_loop())

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def stop(self) -> None:
        self._closed.set()
        self._stop_replication()
        if self._gc_task is not None:
            self._gc_task.cancel()
            self._gc_task = None
        if self._failover_task is not None:
            self._failover_task.cancel()
            self._failover_task = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        for shard in self.shards.values():
            for channel in shard.channels.values():
                if channel.outbound is not None:
                    channel.outbound.abort()
                    channel.outbound = None
                if channel.writer is not None:
                    channel.writer.close()
                    channel.writer = None

    def _log(self, text: str) -> None:
        self._logger.info("%s", text)

    # ------------------------------------------------------------------
    # Roster
    # ------------------------------------------------------------------
    def ensure_client(
        self, name: ReplicaId, shard: Optional[_DocShard] = None
    ) -> _ClientChannel:
        if shard is None:
            shard = self.shards[self.doc_id]
        channel = shard.channels.get(name)
        if channel is None:
            channel = _ClientChannel(name, shard)
            # A late joiner never receives live frames for serials that
            # predate its registration — those arrive via the WAL resync,
            # which stamps seq = serial.  Position the channel sender
            # where the log ends so the next live broadcast continues
            # the same numbering (seq == serial on every s->c channel).
            channel.sender.restore(
                {"next_seq": shard.wal.last_serial + 1, "acked": 0}
            )
            shard.channels[name] = channel
            shard.server.clients.append(name)
            shard.wal.clients.append(name)
        return channel

    def _channel_floor(self, shard: _DocShard, *, pins: bool) -> int:
        """Minimum per-channel floor across the roster, grace applied.

        With ``pins=False`` the per-channel value is its consumption
        cursor (the WAL retain floor: records above it can resync the
        client).  With ``pins=True`` it is the channel's reported GC
        pin — the client's own claim that nothing it will ever send
        again references a context below it.  The pin already folds in
        the client's delivered cursor *and* the generation floors of
        its unacked ops, and it rides every data frame, ping, and
        hello, so it is complete on its own; the server-side
        ``delivered`` (which only advances on piggybacked data-frame
        acks and goes stale the moment a client stops editing) must
        NOT be min'd in, or an idle roster wedges the rebase floor at
        its last burst.  A v1 session pins at 0 — it cannot report
        pins, so it blocks the rebase entirely.

        Disconnected channels hold their floor only for ``gc_grace``
        seconds; past it they stop counting, and a returning client is
        resynced by whole-state transfer instead of records.  A
        replicated group applies no grace (state transfer would ship an
        uncommitted suffix past the commit gate) and additionally clamps
        to the quorum commit floor: an uncommitted record must never be
        truncated — it is exactly what the next view change re-proposes.
        """
        now = time.monotonic()
        replicated = self.replicated and shard.doc == self.doc_id
        floors: List[int] = []
        for channel in shard.channels.values():
            if pins:
                value = channel.pin if channel.v2 else 0
            else:
                value = channel.delivered
            if replicated or channel.writer is not None:
                floors.append(value)
                continue
            at = channel.disconnected_at
            if at is None or now - at <= self.gc_grace:
                floors.append(value)
            # else: beyond grace — dropped from the floor; the client
            # gets a whole-state transfer when it comes back
        floor = min(floors) if floors else shard.wal.last_serial
        if replicated:
            floor = min(floor, self.committed)
        return floor

    def _retain_floor(self, shard: _DocShard) -> int:
        """Lowest consumption cursor across the roster (WAL retain floor)."""
        return self._channel_floor(shard, pins=False)

    def _gc_floor(self, shard: _DocShard) -> int:
        """The serial the shard may safely rebase to.

        Starts from the pin floor, then runs the decodability fixpoint:
        every *retained* record (serial above the floor) must carry a
        context floor ``d`` at or above the new base, or a resyncing
        client could not resolve its compact context.  Any violating
        record drags the floor down to its ``d``; the loop re-checks the
        records the lower floor now retains, and terminates because the
        floor strictly decreases toward the current base.
        """
        floor = self._channel_floor(shard, pins=True)
        base = shard.server.base
        if floor <= base:
            return base
        while True:
            low = min(
                (
                    d
                    for serial, d in shard.ctx_floors.items()
                    if serial > floor
                ),
                default=floor,
            )
            if low >= floor:
                return floor
            floor = low
            if floor <= base:
                return base

    def _gc_shard(self, shard: _DocShard) -> None:
        """One GC pass: rebase + checkpoint if the floor moved enough."""
        obs = self._obs
        floor = self._gc_floor(shard)
        base = shard.server.base
        if floor - base >= self.gc_threshold:
            pruned = shard.server.rebase_to_serial(floor)
            # A rebase invalidates the delta chain (the snapshot's key
            # floor moved), so this compaction writes a full checkpoint.
            shard.wal.compact(shard.server, retain_after=floor)
            shard.write_compaction()
            shard.prune_ctx_floors()
            shard.gc_runs += 1
            shard.states_pruned += pruned
            obs.trace(
                "net.gc",
                doc=shard.doc,
                floor=floor,
                pruned=pruned,
                nodes=shard.server.space.node_count(),
            )
            self._log(
                f"document {shard.doc!r}: GC rebased {base} -> {floor} "
                f"({pruned} states pruned, "
                f"{shard.server.space.node_count()} live nodes)"
            )
        if obs.enabled:
            obs.doc_space_nodes.labels(shard.doc).set(
                shard.server.space.node_count()
            )
            obs.serialized_order_len.labels(shard.doc).set(
                shard.server.oracle.last_serial - shard.server.base
            )
            obs.gc_floor.labels(shard.doc).set(shard.server.base)
            if shard.wal_path is not None and os.path.exists(shard.wal_path):
                obs.wal_bytes_on_disk.labels(shard.doc).set(
                    os.path.getsize(shard.wal_path)
                )

    async def _gc_loop(self) -> None:
        """The periodic active-window sweep (primary role only)."""
        try:
            while not self._closed.is_set():
                await asyncio.sleep(self.gc_interval)
                if self.replicated and not self.is_primary:
                    continue
                for shard in list(self.shards.values()):
                    self._gc_shard(shard)
        except asyncio.CancelledError:
            pass

    def _broadcast_envelope(
        self,
        channel: _ClientChannel,
        broadcast: ServerOperation,
        ctx: Optional[List[Any]] = None,
    ) -> Dict[str, Any]:
        """One data frame for a broadcast, in the channel's wire dialect.

        A v2 session gets the compact body (context serial-encoded,
        prefix implied by the serial); v1 gets the absolute form.  Both
        carry the shard's GC ``floor`` so a v2 client can trim its own
        mirror of the state space (a v1 client ignores the field — it
        only ever exists while the floor is 0).
        """
        shard = channel.shard
        if channel.v2:
            if ctx is None:
                ctx = compact_context(
                    broadcast.operation, shard.server.oracle
                )
            body = compact_server_op_obj(broadcast, ctx)
        else:
            body = message_to_obj(broadcast)
        return encode_envelope(
            "data",
            seq=broadcast.serial,
            ack=self._gated_ack(channel),
            epoch=self.epoch,
            floor=shard.server.base,
            body=body,
        )

    def _gated_ack(self, channel: _ClientChannel) -> int:
        """The c->s acknowledgement the client may act on.

        Standalone: the receiver's cumulative ack (the WAL record is
        already durable).  Replicated: clamped to the quorum commit
        floor, so a client never drops a retransmittable frame whose
        operation could still be lost in a view change.
        """
        ack = channel.receiver.cumulative_ack
        if self.replicated:
            ack = min(
                ack,
                committed_origin_ack(
                    channel.shard.wal, self.committed, channel.client
                ),
            )
        return ack

    def _update_connection_gauges(self) -> None:
        obs = self._obs
        if obs.enabled:
            parked = 0
            unacked = 0
            for doc, shard in self.shards.items():
                obs.net_connected_clients.labels(doc).set(
                    sum(
                        1
                        for c in shard.channels.values()
                        if c.writer is not None
                    )
                )
                obs.net_outbound_queue.labels(doc).set(
                    sum(
                        c.outbound.depth
                        for c in shard.channels.values()
                        if c.outbound is not None
                    )
                )
                parked += sum(len(c.parked) for c in shard.channels.values())
                unacked += sum(
                    c.sender.outstanding for c in shard.channels.values()
                )
            obs.net_parked_frames.set(parked)
            obs.net_unacked_frames.set(unacked)

    # ------------------------------------------------------------------
    # Overload armor: per-peer outbound queues, eviction, admission
    # ------------------------------------------------------------------
    def _all_channels(self) -> List[_ClientChannel]:
        return [
            c
            for shard in self.shards.values()
            for c in shard.channels.values()
        ]

    def _live_connections(self) -> int:
        """Live sessions across every shard (the admission bound)."""
        return sum(1 for c in self._all_channels() if c.writer is not None)

    def _queued_frames(self) -> int:
        """Total outbound backlog across every per-peer queue, all shards."""
        return sum(
            c.outbound.depth
            for c in self._all_channels()
            if c.outbound is not None
        )

    def _attach(
        self, channel: _ClientChannel, writer: asyncio.StreamWriter
    ) -> FrameSender:
        """Wrap a fresh connection's writer in a bounded outbound queue.

        A reconnect supersedes the stale socket: the old sender (and
        whatever backlog it still held — the WAL re-ships it) is
        aborted.  The failure callback runs in the writer task when a
        write errors or overruns the deadline; it performs the eviction
        bookkeeping there so the serialise path never blocks on it.
        """
        if channel.outbound is not None:
            channel.outbound.abort()
        channel.writer = writer
        sender = FrameSender(
            writer,
            capacity=self.outbound_queue,
            write_timeout=self.write_timeout,
            label=channel.client,
            doc=channel.shard.doc,
        )

        def on_failure(reason: str) -> None:
            if channel.writer is writer:
                channel.writer = None
                channel.outbound = None
                channel.disconnected_at = time.monotonic()
                self._record_eviction(channel, f"write failed: {reason}")

        sender.on_failure = on_failure
        channel.outbound = sender
        return sender

    def _record_eviction(self, channel: _ClientChannel, reason: str) -> None:
        self.evictions += 1
        channel.evictions += 1
        self._obs.net_evictions.inc()
        self._obs.trace("net.evict", client=channel.client, reason=reason)
        self._log(f"evicting {channel.client}: {reason}")
        self._update_connection_gauges()

    def _evict(self, channel: _ClientChannel, reason: str) -> None:
        """Drop a slow consumer; the WAL makes the eviction lossless.

        The typed ``evicted`` notice is *force*-enqueued past the full
        queue and the sender told to flush-then-close: a merely-slow
        peer reads the backlog plus the notice and reconnects cleanly; a
        wedged one hits the write deadline and is aborted by the writer
        task.  Either way this call returns immediately — eviction never
        blocks the serialise/commit loops.
        """
        sender = channel.outbound
        if sender is None:
            return
        channel.writer = None
        channel.outbound = None
        channel.disconnected_at = time.monotonic()
        sender.on_failure = None  # bookkeeping happens here, exactly once
        sender.try_send(
            encode_envelope("evicted", reason=reason, epoch=self.epoch),
            force=True,
        )
        sender.close_soon()
        self._record_eviction(channel, reason)

    def _send_to(self, channel: _ClientChannel, envelope: Dict[str, Any]) -> None:
        """Enqueue one frame for a peer; queue overflow evicts the peer."""
        sender = channel.outbound
        if sender is None or channel.writer is None:
            return  # offline: the WAL re-ships on reconnect
        if not sender.try_send(envelope):
            self._evict(
                channel,
                f"outbound queue overflow ({sender.capacity} frames queued)",
            )

    async def _shed(
        self, writer: asyncio.StreamWriter, name: str, reason: str
    ) -> None:
        """Refuse admission: answer ``retry_after`` and hang up."""
        self.shed_connections += 1
        self._obs.net_shed.inc()
        self._obs.trace("net.shed", client=name, reason=reason)
        self._log(f"shedding {name}: {reason}")
        try:
            await write_frame(
                writer,
                encode_envelope(
                    "retry_after", seconds=self.retry_after, reason=reason
                ),
                timeout=self.write_timeout,
            )
        except (WireError, ConnectionError):
            pass
        writer.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # The idle deadline covers the *first* frame too: a peer
            # that connects and never completes a hello (the classic
            # slow-loris admission attack) must not park a socket
            # forever.
            if self.idle_timeout is None:
                frame = await read_frame(reader)
            else:
                frame = await asyncio.wait_for(
                    read_frame(reader), timeout=self.idle_timeout
                )
        except asyncio.TimeoutError:
            self._log(
                "dropping half-open connection: no first frame within "
                f"the {self.idle_timeout:.3f}s idle deadline"
            )
            writer.close()
            return
        except WireError as exc:
            self._log(f"rejecting connection: {exc}")
            writer.close()
            return
        if frame is None:
            writer.close()
            return
        if frame["type"] == "admin":
            await self._handle_admin(frame, writer)
            return
        if frame["type"] in ("repl_install", "repl_append"):
            await self._handle_repl_feed(frame, reader, writer)
            return
        if frame["type"] == "repl_seek":
            await self._handle_seek(frame, writer)
            return
        if frame["type"] != "hello":
            self._log(f"first frame must be hello/admin, got {frame['type']!r}")
            writer.close()
            return
        await self._handle_session(frame, reader, writer)

    async def _handle_session(
        self,
        hello: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        name = str(hello.get("client", ""))
        if not name or name == SERVER_ID:
            self._log(f"invalid client name {name!r}")
            writer.close()
            return
        # A doc-less hello (every pre-fleet client) lands on the default
        # document; fleet clients name their document explicitly.
        doc = str(hello.get("doc") or self.doc_id)
        if self.replicated and (
            not self.is_primary or int(hello.get("epoch", 0)) > self.epoch
        ):
            # A backup (or a primary the client knows to be deposed)
            # points the client at the primary of its view and hangs up.
            await self._send_redirect(writer, name)
            return
        if self.replicated and doc != self.doc_id:
            # The quorum replicates exactly one document; other docs
            # belong to the fleet tier's standalone workers.
            self._log(
                f"{name}: rejecting hello for {doc!r} — a replicated "
                f"group serves only {self.doc_id!r}"
            )
            writer.close()
            return
        try:
            shard = self._open_shard(doc)
        except ProtocolError as exc:
            self._log(f"{name}: cannot open document {doc!r}: {exc}")
            writer.close()
            return
        # Admission control: shed excess load *before* registering the
        # client.  A reconnect superseding the same client's live socket
        # is never shed — it replaces a connection, it does not add one.
        existing = shard.channels.get(name)
        supersedes = existing is not None and existing.writer is not None
        if not supersedes and self._live_connections() >= self.max_connections:
            await self._shed(
                writer,
                name,
                f"at the {self.max_connections}-connection limit",
            )
            return
        if self._queued_frames() > self.max_queued_frames:
            await self._shed(
                writer,
                name,
                f"outbound backlog above {self.max_queued_frames} frames",
            )
            return
        # -- wire-dialect negotiation ----------------------------------
        # A hello offering ``codecs`` speaks the v2 dialect (compact
        # contexts, GC pins, floor rebasing) whatever codec wins; a bare
        # hello is a v1 session, which only works while the shard has
        # never rebased — its absolute contexts and the relative ones
        # coincide exactly at base 0.
        offered = hello.get("codecs")
        v2 = bool(offered)
        codec = negotiate_codec(offered)
        delivered = int(hello.get("delivered", 0))
        delivered = max(0, min(delivered, shard.wal.last_serial))
        if not v2 and (
            shard.server.base > 0 or delivered < shard.record_floor
        ):
            self._log(
                f"{name}: rejecting v1 hello — the document has been "
                f"GC-rebased to {shard.server.base} (records from "
                f"{shard.record_floor}); only v2 sessions can resolve "
                "relative contexts or adopt a state transfer"
            )
            try:
                await write_frame(
                    writer,
                    encode_envelope(
                        "error",
                        reason="document GC passed this session; "
                        "reconnect with a v2 client",
                        epoch=self.epoch,
                    ),
                    timeout=self.write_timeout,
                )
            except (WireError, ConnectionError):
                pass
            writer.close()
            return
        channel = self.ensure_client(name, shard)
        channel.v2 = v2
        channel.pin = max(channel.pin, int(hello.get("pin", 0)))
        channel.disconnected_at = None
        channel.delivered = max(channel.delivered, delivered)
        channel.connects += 1
        sender = self._attach(channel, writer)
        sender.codec = codec
        features = hello.get("features") or {}
        sender.batch = bool(self.batch and v2 and features.get("batch"))
        state: Optional[Dict[str, Any]] = None
        if v2 and (
            delivered < shard.record_floor
            or int(hello.get("pin", delivered)) < shard.server.base
        ):
            # The records this cursor needs were truncated, or the
            # client's unacknowledged ops pin below the rebase floor
            # (either way: it outlived its GC grace): resync by
            # whole-state transfer.  The client adopts the snapshot,
            # drops its unacknowledged ops (never serialised — their
            # seqs are reused), and continues from the log head.
            state = {
                "snapshot": snapshot_server(shard.server),
                "op_seq": shard.wal.origin_counts().get(name, 0),
                "delivered": shard.wal.last_serial,
            }
            delivered = shard.wal.last_serial
            channel.delivered = delivered
            channel.pin = delivered
            missed = []
            self._obs.net_state_transfers.labels(doc).inc()
        else:
            missed = shard.wal.broadcasts_for(shard.server, delivered)
            if self.replicated:
                # Never re-ship an uncommitted broadcast: a client must
                # not consume an operation a view change could still
                # lose.  The suffix arrives via the commit flush once
                # quorum-certified.
                missed = [b for b in missed if b.serial <= self.committed]
        welcome = encode_envelope(
            "welcome",
            server=SERVER_ID,
            doc=doc,
            ack=self._gated_ack(channel),
            serial=shard.wal.last_serial,
            resync=len(missed),
            initial=self.initial_text,
            view=self.view,
            epoch=self.epoch,
            roster=roster_to_obj(self.roster) if self.replicated else [],
            codec=codec,
            features={"batch": sender.batch},
            floor=shard.server.base,
        )
        if state is not None:
            welcome["state"] = state
        await sender.send_wait(welcome)
        self._obs.trace(
            "net.connect",
            client=name,
            doc=doc,
            connect=channel.connects,
            cursor=delivered,
            resync=len(missed),
            codec=codec,
            transfer=state is not None,
        )
        self._update_connection_gauges()
        # Resync from durable state: re-ship everything after the cursor.
        # send_wait backpressures *this* connection task when the burst
        # outruns the queue — a healthy late joiner is never evicted for
        # the server's own resync burst.
        if missed:
            self._obs.net_resync_frames.inc(len(missed))
        for broadcast in missed:
            self.resync_frames_sent += 1
            shard.resync_frames_sent += 1
            delivered_ok = await sender.send_wait(
                self._broadcast_envelope(channel, broadcast)
            )
            if not delivered_ok:
                break  # the peer died (or stalled out) mid-resync
        self._log(
            f"{name} connected (connect #{channel.connects}, "
            f"cursor {delivered}, resynced {len(missed)})"
        )
        try:
            while True:
                try:
                    if self.idle_timeout is None:
                        frame = await read_frame(reader, doc=doc)
                    else:
                        frame = await asyncio.wait_for(
                            read_frame(reader, doc=doc),
                            timeout=self.idle_timeout,
                        )
                except asyncio.TimeoutError:
                    # No frame (the heartbeat included) for a whole idle
                    # window: the peer is gone or wedged mid-frame (the
                    # slow-loris shape) — evict it.
                    self._evict(
                        channel,
                        f"idle past the {self.idle_timeout:.3f}s deadline",
                    )
                    break
                except FrameTooLarge as exc:
                    # Reject the op, keep the session: drain the body so
                    # framing stays aligned, answer a typed error.
                    await drain_payload(reader, exc.length)
                    self.oversize_rejected += 1
                    self._obs.net_oversize_rejected.inc()
                    self._log(
                        f"{name}: rejecting oversized frame "
                        f"({exc.length} > {MAX_FRAME} bytes)"
                    )
                    self._send_to(
                        channel,
                        encode_envelope(
                            "error",
                            reason="frame too large",
                            length=exc.length,
                            limit=MAX_FRAME,
                            epoch=self.epoch,
                        ),
                    )
                    continue
                if frame is None or frame["type"] == "bye":
                    break
                await self._handle_frame(channel, frame)
        except (WireError, ConnectionError, asyncio.IncompleteReadError) as exc:
            self._log(f"{name} dropped: {exc}")
        except ProtocolError as exc:
            # A malformed or out-of-contract peer loses its connection;
            # the server and every other client keep running.
            self._log(f"{name} violated the protocol: {exc}")
        except asyncio.CancelledError:
            pass  # event-loop teardown while the connection was idle
        finally:
            if channel.writer is writer:
                channel.writer = None
                channel.disconnected_at = time.monotonic()
                if channel.outbound is sender:
                    channel.outbound = None
                    await sender.aclose()
            # Otherwise the connection was superseded or evicted: the
            # sender owns the writer and closes it after its final flush
            # (closing here would race the evicted-notice delivery).
            self._obs.trace("net.disconnect", client=name)
            self._update_connection_gauges()

    async def _handle_frame(
        self, channel: _ClientChannel, frame: Dict[str, Any]
    ) -> None:
        kind = frame["type"]
        if kind == "multi":
            # A batched peer coalesced a burst; the members are ordinary
            # frames and are handled in order.
            for member in frame.get("frames", ()):
                await self._handle_frame(channel, member)
            return
        if "pin" in frame:
            # The GC pin only ever ratchets up: a frame reordered behind
            # a newer one must not drag the floor back down.
            channel.pin = max(channel.pin, int(frame["pin"]))
        if kind == "ping":
            self._send_to(channel, encode_envelope("pong", t=frame.get("t")))
            return
        if kind != "data":
            self._log(f"{channel.client}: ignoring frame type {kind!r}")
            return
        self.frames_received += 1
        channel.shard.frames_received += 1
        ack = min(int(frame.get("ack", 0)), channel.sender.next_seq - 1)
        channel.sender.ack(ack)
        channel.delivered = max(channel.delivered, ack)
        seq = int(frame["seq"])
        # Park the *encoded* body, not a decoded message: a compact
        # context resolves against the oracle's base at decode time, and
        # GC may advance the base between arrival and release.  Decoding
        # happens in _serialise, immediately before integration.
        body = frame["body"]
        released = channel.receiver.receive(seq)
        if released == 0:
            if seq >= channel.receiver.expected:
                channel.parked[seq] = body  # gap: park until it fills
            else:
                self.duplicates_suppressed += 1
                channel.shard.duplicates_suppressed += 1
        else:
            channel.parked[seq] = body
            first = channel.receiver.expected - released
            for released_seq in range(first, channel.receiver.expected):
                await self._serialise(channel, channel.parked.pop(released_seq))
        self._update_connection_gauges()
        # Always re-acknowledge: a duplicate means an earlier ack was lost.
        self._send_to(
            channel,
            encode_envelope(
                "ack",
                ack=self._gated_ack(channel),
                epoch=self.epoch,
                floor=channel.shard.server.base,
            ),
        )

    async def _serialise(
        self, origin: _ClientChannel, body: Dict[str, Any]
    ) -> None:
        """The write path: decode, serialise, log (write-ahead), broadcast.

        Replicated: the broadcast frames are *parked* under their serial
        and the backups woken; :meth:`_advance_commit` releases them (and
        the origin's acknowledgement) once a quorum has the record.
        """
        # Everything up to (and including) the per-channel sequence
        # allocation is synchronous: two connection tasks can never
        # interleave here, which is what keeps the s->c sequence number
        # equal to the serial on every channel — per shard, since each
        # shard carries its own independent serial counter.
        shard = origin.shard
        payload = message_from_wire(body, shard.server.oracle)
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(
                f"{origin.client}: client data frames must carry "
                f"ClientOperation, got {type(payload).__name__}"
            )
        outgoing = shard.server.receive(origin.client, payload)
        serial = shard.server.oracle.last_serial
        # Serial-encode the context once: it goes into the WAL record
        # (kept O(active window) instead of O(context)) and into every
        # v2 broadcast body.
        ctx = compact_context(payload.operation, shard.server.oracle)
        shard.ctx_floors[serial] = int(ctx[0])
        shard.wal.append(
            serial, origin.client, payload.operation, epoch=self.epoch,
            ctx=ctx,
        )
        # Disk before any broadcast or acknowledgement: a SIGKILLed
        # fleet worker can never have acked an operation its WAL file
        # does not hold.
        shard.append_disk()
        if shard.wal.should_compact():
            shard.wal.compact(
                shard.server, retain_after=self._retain_floor(shard)
            )
            shard.write_compaction()
            shard.prune_ctx_floors()
        frames = []
        for recipient, broadcast in outgoing:
            channel = shard.channels[recipient]
            seq = channel.sender.send()
            if seq != serial:
                raise ProtocolError(
                    f"s->c seq {seq} for {recipient} diverged from serial "
                    f"{serial}; the channel numbering invariant is broken"
                )
            frames.append(
                (recipient, self._broadcast_envelope(channel, broadcast, ctx))
            )
        if self.replicated:
            self._pending[serial] = (origin.client, frames)
            for event in self._repl_wakeup.values():
                event.set()
            await self._advance_commit()  # a quorum of one commits now
            return
        # Synchronous fan-out through the per-peer bounded queues: a
        # stalled recipient overflows *its* queue and is evicted; it can
        # never head-of-line-block this loop or any healthy peer.
        for recipient, envelope in frames:
            self._send_to(shard.channels[recipient], envelope)

    # ------------------------------------------------------------------
    # Replication: primary write path
    # ------------------------------------------------------------------
    async def _send_redirect(
        self, writer: asyncio.StreamWriter, client: str
    ) -> None:
        primary = primary_for(self.view, self.replica_ids)
        index = self.replica_ids.index(primary)
        host, port = self.roster[index]
        try:
            await write_frame(
                writer,
                encode_envelope(
                    "redirect",
                    view=self.view,
                    epoch=self.epoch,
                    primary=index,
                    host=host,
                    port=port,
                    roster=roster_to_obj(self.roster),
                ),
                timeout=self.write_timeout,
            )
        except (WireError, ConnectionError):
            pass
        writer.close()
        self._obs.trace(
            "net.redirect", client=client, view=self.view, primary=index
        )

    def _start_replication(self) -> None:
        """Spawn one shipping task per backup (primary only)."""
        for index in range(len(self.roster)):
            if index == self.replica_index:
                continue
            task = self._backup_tasks.get(index)
            if task is not None and not task.done():
                continue
            self._repl_wakeup[index] = asyncio.Event()
            self._backup_tasks[index] = asyncio.ensure_future(
                self._replicate_to(index)
            )

    def _stop_replication(self) -> None:
        for task in self._backup_tasks.values():
            task.cancel()
        self._backup_tasks.clear()

    async def _replicate_to(self, index: int) -> None:
        """Ship the log to one backup, forever: install, then appends.

        Every (re)connect starts with a full-log ``repl_install`` — this
        doubles as the VSR start-view after an election and as state
        transfer for a backup that lagged behind the compaction floor —
        and then streams ``repl_append`` frames one ack at a time.
        """
        rid = self.replica_ids[index]
        host, port = self.roster[index]
        wakeup = self._repl_wakeup[index]
        attempt = 0
        while not self._closed.is_set():
            view_at_start = self.view
            writer = None
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer,
                    encode_envelope(
                        "repl_install",
                        view=self.view,
                        epoch=self.epoch,
                        committed=self.committed,
                        sender=self.replica_id,
                        log=self.wal.to_obj(),
                    ),
                    timeout=self.write_timeout,
                )
                shipped = await self._await_repl_ack(reader, rid)
                attempt = 0
                while self.view == view_at_start:
                    while shipped < self.wal.last_serial:
                        record = self.wal.record_at(shipped + 1)
                        if record is None:
                            raise _Reinstall()  # compacted past the backup
                        await write_frame(
                            writer,
                            encode_envelope(
                                "repl_append",
                                epoch=self.epoch,
                                committed=self.committed,
                                record=record,
                            ),
                            timeout=self.write_timeout,
                        )
                        shipped = await self._await_repl_ack(reader, rid)
                    wakeup.clear()
                    if shipped >= self.wal.last_serial:
                        await wakeup.wait()
            except _Reinstall:
                continue
            except _Deposed as exc:
                self._depose(int(exc.args[0]))
                return
            except asyncio.CancelledError:
                return
            except (OSError, ConnectionError, WireError, EOFError) as exc:
                attempt += 1
                if attempt == 1:
                    self._log(f"replica {rid} unreachable: {exc}")
                await asyncio.sleep(min(0.25 * attempt, 2.0))
            finally:
                if writer is not None:
                    writer.close()

    async def _await_repl_ack(
        self, reader: asyncio.StreamReader, rid: ReplicaId
    ) -> int:
        frame = await read_frame(reader)
        if frame is None:
            raise ConnectionError(f"replica {rid} closed the repl stream")
        if frame["type"] == "repl_deny":
            raise _Deposed(int(frame.get("view", self.view + 1)))
        if frame["type"] != "repl_ack":
            raise WireError(
                f"replica {rid}: expected repl_ack, got {frame['type']!r}"
            )
        serial = int(frame.get("serial", 0))
        if int(frame.get("epoch", self.epoch)) == self.epoch:
            if serial > self._repl_acked.get(rid, 0):
                self._repl_acked[rid] = serial
            await self._advance_commit()
        return serial

    def _depose(self, new_view: int) -> None:
        """A quorum moved on without us: stand down to backup."""
        if new_view <= self.view:
            new_view = self.view + 1
        self._log(
            f"deposed: view {new_view} exists, stepping down from view "
            f"{self.view}"
        )
        self.view = new_view
        self.epoch = max(self.epoch, new_view)
        self.promised = max(self.promised, new_view)
        self._stop_replication()
        self._pending.clear()
        # Hanging up makes every client walk the roster to the new
        # primary; nothing un-acknowledged is lost — their frames are
        # still buffered for retransmission.
        for channel in self.channels.values():
            if channel.outbound is not None:
                channel.outbound.abort()
                channel.outbound = None
            if channel.writer is not None:
                channel.writer.close()
                channel.writer = None
                channel.disconnected_at = time.monotonic()

    async def _advance_commit(self) -> None:
        """Recompute the quorum floor and flush newly committed serials."""
        if not self.replicated or not self.is_primary:
            return
        async with self._commit_lock:
            acked = {rid: 0 for rid in self.replica_ids}
            acked.update(self._repl_acked)
            acked[self.replica_id] = self.wal.last_serial
            floor = sorted(acked.values(), reverse=True)[self.quorum - 1]
            while self.committed < floor:
                serial = self.committed + 1
                self.committed = serial
                await self._flush_committed(serial)
            self._obs.repl_commit_floor.set(self.committed)
            if (
                self._failover_started is not None
                and self.committed >= self._failover_target
            ):
                latency = time.monotonic() - self._failover_started
                self._failover_started = None
                self._obs.failover_latency.observe(latency)
                self._obs.trace(
                    "repl.failover_complete",
                    view=self.view,
                    serial=self.committed,
                    latency=round(latency, 6),
                )
                self._log(
                    f"failover complete: view {self.view} committed through "
                    f"serial {self.committed} in {latency:.3f}s"
                )

    async def _flush_committed(self, serial: int) -> None:
        """Release the parked broadcasts and origin ack for one serial."""
        origin, frames = self._pending.pop(serial, (None, None))
        if frames is None:
            # No parked frames: a record adopted through a view change.
            # Rebuild its broadcast from the log and ship it to every
            # connected client; duplicate suppression absorbs overlap
            # with the welcome resync.
            record = self.wal.record_at(serial)
            if record is None:
                raise ProtocolError(
                    f"commit floor reached serial {serial} but the record "
                    "was compacted; the commit-floor clamp is broken"
                )
            broadcast = ServerOperation(
                operation=record_operation(record, self.server.oracle),
                origin=record["origin"],
                serial=serial,
                prefix=self.server.oracle.serialized_before(serial),
            )
            origin = record["origin"]
            frames = [
                (
                    name,
                    self._broadcast_envelope(
                        channel, broadcast, record.get("ctx")
                    ),
                )
                for name, channel in self.channels.items()
            ]
        for recipient, envelope in frames:
            channel = self.channels.get(recipient)
            if channel is None:
                continue
            self._send_to(channel, envelope)
        channel = self.channels.get(origin)
        if channel is not None:
            self._send_to(
                channel,
                encode_envelope(
                    "ack",
                    ack=self._gated_ack(channel),
                    epoch=self.epoch,
                    floor=self.server.base,
                ),
            )

    # ------------------------------------------------------------------
    # Replication: backup feed and view changes
    # ------------------------------------------------------------------
    async def _handle_repl_feed(
        self,
        first: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one primary's install/append stream (the backup role)."""
        if not self.replicated:
            self._log("rejecting repl frame: this server is standalone")
            writer.close()
            return
        frame: Optional[Dict[str, Any]] = first
        try:
            while frame is not None:
                kind = frame.get("type")
                if kind == "repl_install":
                    accepted = self._install_log(frame)
                elif kind == "repl_append":
                    accepted = self._append_record(frame)
                else:
                    break
                if not accepted:
                    await write_frame(
                        writer,
                        encode_envelope(
                            "repl_deny", view=max(self.view, self.promised)
                        ),
                        timeout=self.write_timeout,
                    )
                    break
                self._primary_feed = writer
                await write_frame(
                    writer,
                    encode_envelope(
                        "repl_ack",
                        serial=self.wal.last_serial,
                        epoch=self.epoch,
                    ),
                    timeout=self.write_timeout,
                )
                frame = await read_frame(reader)
        except (WireError, ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            if self._primary_feed is writer:
                self._primary_feed = None
                if not self._closed.is_set() and not self.is_primary:
                    self._log(
                        f"replication feed from the view-{self.view} primary "
                        "lost; arming failover"
                    )
                    self._schedule_failover()

    def _install_log(self, frame: Dict[str, Any]) -> bool:
        view = int(frame.get("view", 0))
        if view < max(self.view, self.promised):
            self._obs.repl_stale_rejected.inc()
            return False
        new_view = view != self.view
        self.view = view
        self.epoch = int(frame.get("epoch", view))
        self.promised = max(self.promised, view)
        log = ServerWriteAheadLog.from_obj(frame["log"])
        self.wal = log
        self.committed = max(self.committed, int(frame.get("committed", 0)))
        self._obs.repl_appends.inc(len(log.records))
        if new_view:
            self._log(
                f"installed view {view}: log through serial "
                f"{log.last_serial}, committed {self.committed}"
            )
        return True

    def _append_record(self, frame: Dict[str, Any]) -> bool:
        epoch = int(frame.get("epoch", -1))
        if epoch != self.epoch or self.promised > self.epoch:
            self._obs.repl_stale_rejected.inc()
            return False
        record = frame["record"]
        serial = int(record["serial"])
        if serial > self.wal.last_serial:
            origin = str(record["origin"])
            if origin not in self.wal.clients:
                # Client registrations are not shipped separately; a
                # backup learns each origin from its first replicated
                # record so that after a promotion `_become_primary`
                # rebuilds a channel (receiver fast-forwarded past the
                # origin's logged operations) for every such client.
                self.wal.clients.append(origin)
            # Stored verbatim: a compact-context record can only be
            # decoded against an oracle that witnessed the serials below
            # it, which a backup does not run — it stores the certified
            # bytes and decodes on promotion, when recovery rebuilds one.
            self.wal.append_record(dict(record))
            self._obs.repl_appends.inc()
        self.committed = max(self.committed, int(frame.get("committed", 0)))
        return True

    async def _handle_seek(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Answer a view-change candidate: promise + offer, or deny."""
        view = int(frame.get("view", 0))
        try:
            if not self.replicated or view <= max(self.view, self.promised):
                self._obs.repl_stale_rejected.inc()
                await write_frame(
                    writer,
                    encode_envelope(
                        "repl_deny", view=max(self.view, self.promised)
                    ),
                    timeout=self.write_timeout,
                )
            else:
                self.promised = view
                await write_frame(
                    writer,
                    encode_envelope(
                        "repl_offer",
                        view=view,
                        replica=self.replica_id,
                        last_epoch=self.wal.last_epoch,
                        last_serial=self.wal.last_serial,
                        committed=self.committed,
                        log=self.wal.to_obj(),
                    ),
                    timeout=self.write_timeout,
                )
        except (WireError, ConnectionError):
            pass
        writer.close()

    def _schedule_failover(self) -> None:
        if self._failover_task is None or self._failover_task.done():
            self._failover_task = asyncio.ensure_future(self._failover_watch())

    async def _failover_watch(self) -> None:
        """Deterministically staggered election: the round-robin successor
        tries first; each further-away successor waits one more
        ``failover_delay`` so concurrent candidacies cannot collide
        unless an earlier candidate is dead too."""
        detected = time.monotonic()
        while not self._closed.is_set() and not self.is_primary:
            view_seen = self.view
            target = self.view + 1
            while primary_for(target, self.replica_ids) != self.replica_id:
                target += 1
            await asyncio.sleep(self.failover_delay * (target - view_seen))
            if self.view != view_seen or self._primary_feed is not None:
                return  # a new primary announced itself in time
            if await self._run_election(target, detected):
                return
            await asyncio.sleep(self.failover_delay)

    async def _run_election(self, target: int, detected: float) -> bool:
        """Gather a quorum of offers for view ``target`` and take over."""
        offers: Dict[ReplicaId, Tuple[int, int]] = {
            self.replica_id: (self.wal.last_epoch, self.wal.last_serial)
        }
        logs: Dict[ReplicaId, ServerWriteAheadLog] = {}
        committed = self.committed
        for index, (host, port) in enumerate(self.roster):
            if index == self.replica_index:
                continue
            reply = await self._seek_offer(host, port, target)
            if reply is None:
                continue
            if reply["type"] == "repl_deny":
                self._log(
                    f"election for view {target} denied: view "
                    f"{reply.get('view')} already exists"
                )
                return False
            rid = str(reply["replica"])
            offers[rid] = (
                int(reply["last_epoch"]),
                int(reply["last_serial"]),
            )
            logs[rid] = ServerWriteAheadLog.from_obj(reply["log"])
            committed = max(committed, int(reply.get("committed", 0)))
        if len(offers) < self.quorum:
            self._log(
                f"election for view {target} failed: {len(offers)} of "
                f"{self.quorum} required offers"
            )
            return False
        winner = elect(offers)
        adopted = self.wal if winner == self.replica_id else logs[winner]
        adopted_last = adopted.last_serial
        if adopted_last < committed:
            raise ProtocolError(
                "quorum intersection violated: the adopted log ends at "
                f"serial {adopted_last} but {committed} is committed"
            )
        self.view = target
        self.epoch = target
        self.promised = target
        self.committed = committed
        # Re-stamp the uncommitted suffix under the new epoch: these are
        # the re-proposed records a deposed primary can no longer touch.
        reproposed = 0
        for record in adopted.records:
            if int(record["serial"]) > committed:
                record["epoch"] = target
                reproposed += 1
        if reproposed:
            adopted.last_epoch = target
        self._become_primary(adopted)
        self.view_changes += 1
        self._obs.view_changes.inc()
        self._obs.trace(
            "repl.view_change",
            view=target,
            primary=self.replica_id,
            adopted_from=winner,
            adopted_last=adopted_last,
            reproposed=reproposed,
        )
        self._log(
            f"view {target}: this replica is now the primary (adopted "
            f"{winner}'s log through serial {adopted_last}, "
            f"re-proposed {reproposed}, committed {committed})"
        )
        self._failover_started = detected
        self._failover_target = adopted_last
        self._repl_acked = {}
        self._start_replication()
        await self._advance_commit()  # a quorum of one commits immediately
        return True

    async def _seek_offer(
        self, host: str, port: int, target: int
    ) -> Optional[Dict[str, Any]]:
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=2.0
            )
            await write_frame(
                writer,
                encode_envelope(
                    "repl_seek", view=target, sender=self.replica_id
                ),
            )
            reply = await asyncio.wait_for(read_frame(reader), timeout=2.0)
        except (OSError, ConnectionError, WireError, asyncio.TimeoutError):
            return None
        finally:
            if writer is not None:
                writer.close()
        if reply is None or reply.get("type") not in ("repl_offer", "repl_deny"):
            return None
        return reply

    def _become_primary(self, adopted: ServerWriteAheadLog) -> None:
        """Install the adopted log and rebuild the serving state.

        The CSS server replays from the log (snapshot + suffix, the same
        recovery path a standalone restart uses); each client channel is
        rebuilt exactly as the simulator's failover does — the c->s
        receiver fast-forwarded to how many operations that origin has in
        the log, the s->c sender positioned at ``last_serial + 1`` so the
        seq==serial invariant survives the view change.
        """
        for channel in self.channels.values():
            if channel.outbound is not None:
                channel.outbound.abort()
                channel.outbound = None
        self.wal = adopted
        counts = self.wal.origin_counts()
        for origin in counts:
            # Belt and braces: any origin present in the log must get a
            # rebuilt channel even if its registration never made it
            # into the adopted log's client list.
            if origin != SERVER_ID and origin not in self.wal.clients:
                self.wal.clients.append(origin)
        self.server = self.wal.recover()
        shard = self.shards[self.doc_id]
        shard.ctx_floors = {
            int(record["serial"]): (
                int(record["ctx"][0]) if "ctx" in record else 0
            )
            for record in self.wal.records
        }
        self.channels = {}
        for name in list(self.wal.clients):
            channel = _ClientChannel(name, self.shards[self.doc_id])
            channel.sender.restore(
                {"next_seq": self.wal.last_serial + 1, "acked": 0}
            )
            channel.receiver.fast_forward(counts.get(name, 0))
            self.channels[name] = channel
        self._pending = {}
        self._primary_feed = None
        self._update_connection_gauges()

    # ------------------------------------------------------------------
    # Admin plane (used by the load generator and operators)
    # ------------------------------------------------------------------
    async def _handle_admin(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        command = frame.get("cmd")
        # An admin frame may name a document; without one it addresses
        # the default — which keeps every pre-fleet consumer working.
        doc = str(frame.get("doc") or self.doc_id)
        replication = {
            "replicated": self.replicated,
            "replica": self.replica_id,
            "role": "primary" if self.is_primary else "backup",
            "view": self.view,
            "epoch": self.epoch,
            "committed": self.committed,
            "view_changes": self.view_changes,
        }
        identity = {
            "doc_id": self.doc_id,
            "role": "primary" if self.is_primary else "backup",
            "uptime_seconds": round(time.monotonic() - self.started_at, 6),
            "docs_hosted": len(self.shards),
        }
        shard = self.shards.get(doc)
        if command in ("signature", "stats") and shard is None:
            reply = encode_envelope(
                "admin_reply",
                error=f"document {doc!r} is not hosted here",
                docs=sorted(self.shards),
                **identity,
            )
        elif command == "signature":
            # A backup's CssServer is stale by design (only its WAL is
            # fed); rebuild one from the log so signatures are comparable
            # across roles.
            server = (
                shard.server
                if not self.replicated or self.is_primary
                else shard.wal.recover()
            )
            reply = encode_envelope(
                "admin_reply",
                doc=doc,
                signature=document_signature(server.document),
                serial=shard.wal.last_serial,
                document=server.document.as_string(),
                **replication,
            )
        elif command == "stats":
            reply = encode_envelope(
                "admin_reply",
                doc=doc,
                serial=shard.wal.last_serial,
                replication=replication,
                clients={
                    name: {
                        "delivered": c.delivered,
                        "connects": c.connects,
                        "connected": c.writer is not None,
                        "v2": c.v2,
                        "pin": c.pin,
                    }
                    for name, c in sorted(shard.channels.items())
                },
                gc={
                    "base": shard.server.base,
                    "runs": shard.gc_runs,
                    "states_pruned": shard.states_pruned,
                    "record_floor": shard.record_floor,
                    "space_nodes": shard.server.space.node_count(),
                },
                frames_received=self.frames_received,
                resync_frames_sent=self.resync_frames_sent,
                duplicates_suppressed=self.duplicates_suppressed,
                overload={
                    "connections": self._live_connections(),
                    "max_connections": self.max_connections,
                    "queued_frames": self._queued_frames(),
                    "max_queued_frames": self.max_queued_frames,
                    "evictions": self.evictions,
                    "shed": self.shed_connections,
                    "oversize_rejected": self.oversize_rejected,
                },
                wal={
                    "appends": shard.wal.appends,
                    "compactions": shard.wal.compactions,
                    "records_truncated": shard.wal.records_truncated,
                },
                docs={
                    name: {
                        "serial": s.wal.last_serial,
                        "clients": len(s.channels),
                        "connected": sum(
                            1
                            for c in s.channels.values()
                            if c.writer is not None
                        ),
                        "frames_received": s.frames_received,
                        "resync_frames_sent": s.resync_frames_sent,
                        "duplicates_suppressed": s.duplicates_suppressed,
                        "uptime_seconds": round(
                            time.monotonic() - s.opened_at, 6
                        ),
                    }
                    for name, s in sorted(self.shards.items())
                },
                **identity,
            )
        elif command == "metrics":
            obs = self._obs
            reply = encode_envelope(
                "admin_reply",
                enabled=obs.enabled,
                exposition=obs.render(),
                snapshot=obs.snapshot(),
            )
        elif command == "shutdown":
            reply = encode_envelope("admin_reply", stopping=True)
            await write_frame(writer, reply, timeout=self.write_timeout)
            writer.close()
            await self.stop()
            return
        else:
            reply = encode_envelope(
                "admin_reply", error=f"unknown admin command {command!r}"
            )
        await write_frame(writer, reply, timeout=self.write_timeout)
        writer.close()


# ----------------------------------------------------------------------
# Process entry point (the ``repro serve`` verb)
# ----------------------------------------------------------------------
async def _serve(
    host: str,
    port: int,
    initial_text: str,
    snapshot_every: int,
    announce: bool,
    quiet: bool,
    roster: Optional[Sequence[Tuple[str, int]]],
    replica_index: int,
    failover_delay: float,
    max_connections: int,
    max_queued_frames: int,
    outbound_queue: int,
    write_timeout: Optional[float],
    idle_timeout: Optional[float],
    retry_after: float,
    doc_id: str,
    wal_dir: Optional[str],
    batch: bool,
    gc: bool,
    gc_grace: float,
) -> int:
    server = NetServer(
        host=host,
        port=port,
        initial_text=initial_text,
        snapshot_every=snapshot_every,
        quiet=quiet,
        roster=roster,
        replica_index=replica_index,
        failover_delay=failover_delay,
        max_connections=max_connections,
        max_queued_frames=max_queued_frames,
        outbound_queue=outbound_queue,
        write_timeout=write_timeout,
        idle_timeout=idle_timeout,
        retry_after=retry_after,
        doc_id=doc_id,
        wal_dir=wal_dir,
        batch=batch,
        gc=gc,
        gc_grace=gc_grace,
    )
    await server.start()
    if announce:
        # One machine-parseable line; the load generator reads this to
        # discover the ephemeral port.
        print(
            "REPRO-SERVE "
            + json.dumps(
                {
                    "host": server.host,
                    "port": server.port,
                    "replica": server.replica_id,
                    "docs": sorted(server.shards),
                }
            ),
            flush=True,
        )
    await server.wait_closed()
    return 0


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    initial_text: str = "",
    snapshot_every: int = 64,
    announce: bool = False,
    quiet: bool = False,
    roster: Optional[Sequence[Tuple[str, int]]] = None,
    replica_index: int = 0,
    failover_delay: float = 0.5,
    max_connections: int = 64,
    max_queued_frames: int = 8192,
    outbound_queue: int = OUTBOUND_QUEUE,
    write_timeout: Optional[float] = WRITE_TIMEOUT,
    idle_timeout: Optional[float] = 60.0,
    retry_after: float = 1.0,
    doc_id: str = DEFAULT_DOC,
    wal_dir: Optional[str] = None,
    batch: bool = True,
    gc: bool = True,
    gc_grace: float = 15.0,
) -> int:
    """Blocking entry point for ``repro serve``."""
    try:
        return asyncio.run(
            _serve(
                host,
                port,
                initial_text,
                snapshot_every,
                announce,
                quiet,
                roster,
                replica_index,
                failover_delay,
                max_connections,
                max_queued_frames,
                outbound_queue,
                write_timeout,
                idle_timeout,
                retry_after,
                doc_id,
                wal_dir,
                batch,
                gc,
                gc_grace,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
