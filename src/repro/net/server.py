"""The deployed CSS server: a real TCP listener around ``CssServer``.

One :class:`NetServer` hosts exactly the objects the simulator hosts —
a :class:`~repro.jupiter.css.CssServer`, a
:class:`~repro.jupiter.persistence.ServerWriteAheadLog`, and one
:class:`~repro.jupiter.session.SessionSender` /
:class:`~repro.jupiter.session.SessionReceiver` pair per client channel —
but drives them from asyncio connections instead of simulated events.

Connection lifecycle (the server side of the reconnect state machine in
``docs/ARCHITECTURE.md``):

1. A client's first frame is ``hello {client, delivered}``, where
   ``delivered`` is its consumption cursor (how many broadcasts it has
   consumed, i.e. its receiver's cumulative ack).
2. The server registers the client (late joiners are welcome: they
   simply resync from serial 0), answers ``welcome {ack, serial,
   resync}`` — ``ack`` being the server's cumulative ack of the
   client-to-server channel, which lets the client drop acknowledged
   pending frames and retransmit only the rest —
3. and then **resyncs from durable state**: every broadcast with a
   serial in ``delivered+1 .. last_serial`` is rebuilt from the
   write-ahead log (:meth:`ServerWriteAheadLog.broadcasts_for`) and
   re-shipped as an ordinary ``data`` frame whose channel sequence
   number *is* the serial.
4. Thereafter ``data`` frames flow both ways; the WAL is appended
   *before* any broadcast frame hits a socket, so a crash can never
   lose an operation the world has seen.

Because every broadcast goes to every client exactly once in serial
order, the server→client channel sequence number always equals the
broadcast serial — which is what makes the WAL a perfect retransmission
buffer: nothing needs to be kept in memory per disconnected client.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional

from repro.common.ids import SERVER_ID, ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssServer
from repro.jupiter.messages import ClientOperation
from repro.jupiter.persistence import ServerWriteAheadLog
from repro.jupiter.session import SessionReceiver, SessionSender
from repro.net.codec import (
    WireError,
    document_signature,
    encode_envelope,
    message_from_obj,
    message_to_obj,
)
from repro.net.transport import read_frame, write_frame
from repro.obs import get_obs

#: The server's named logger; silent unless the embedding process (the
#: ``repro serve`` CLI, a test harness) configures handlers and a level.
LOGGER = logging.getLogger("repro.net.server")


class _ClientChannel:
    """Per-client transport state: sessions, parked payloads, live writer."""

    def __init__(self, client: ReplicaId) -> None:
        self.client = client
        self.sender = SessionSender((SERVER_ID, client))
        self.receiver = SessionReceiver((client, SERVER_ID))
        #: out-of-order payloads parked until the session releases them
        self.parked: Dict[int, Any] = {}
        self.writer: Optional[asyncio.StreamWriter] = None
        #: the client's consumption cursor (its last reported cumulative ack)
        self.delivered = 0
        self.connects = 0


class NetServer:
    """Serve one CSS document over TCP.

    The client roster is dynamic: the first ``hello`` from an unknown
    name registers it (appending to both the protocol server's broadcast
    list and the WAL's roster).  WAL compaction uses the minimum
    consumption cursor over the roster as its retain floor, so a
    disconnected or lagging client can always resync from records.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        initial_text: str = "",
        snapshot_every: int = 256,
        quiet: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self.initial_text = initial_text
        initial = ListDocument.from_string(initial_text) if initial_text else None
        self.server = CssServer(SERVER_ID, [], initial)
        self.wal = ServerWriteAheadLog(
            SERVER_ID, [], snapshot_every=snapshot_every, initial_text=initial_text
        )
        self.channels: Dict[ReplicaId, _ClientChannel] = {}
        self.resync_frames_sent = 0
        self.frames_received = 0
        self.duplicates_suppressed = 0
        self._obs = get_obs()
        self._logger = LOGGER
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        self._log(f"listening on {self.host}:{self.port}")

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        for channel in self.channels.values():
            if channel.writer is not None:
                channel.writer.close()
                channel.writer = None
        self._closed.set()

    def _log(self, text: str) -> None:
        self._logger.info("%s", text)

    # ------------------------------------------------------------------
    # Roster
    # ------------------------------------------------------------------
    def ensure_client(self, name: ReplicaId) -> _ClientChannel:
        channel = self.channels.get(name)
        if channel is None:
            channel = _ClientChannel(name)
            # A late joiner never receives live frames for serials that
            # predate its registration — those arrive via the WAL resync,
            # which stamps seq = serial.  Position the channel sender
            # where the log ends so the next live broadcast continues
            # the same numbering (seq == serial on every s->c channel).
            channel.sender.restore(
                {"next_seq": self.wal.last_serial + 1, "acked": 0}
            )
            self.channels[name] = channel
            self.server.clients.append(name)
            self.wal.clients.append(name)
        return channel

    def _retain_floor(self) -> int:
        """Lowest consumption cursor across the roster (WAL retain floor)."""
        if not self.channels:
            return 0
        return min(c.delivered for c in self.channels.values())

    def _update_connection_gauges(self) -> None:
        obs = self._obs
        if obs.enabled:
            obs.net_connected_clients.set(
                sum(1 for c in self.channels.values() if c.writer is not None)
            )
            obs.net_parked_frames.set(
                sum(len(c.parked) for c in self.channels.values())
            )
            obs.net_unacked_frames.set(
                sum(c.sender.outstanding for c in self.channels.values())
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame(reader)
        except WireError as exc:
            self._log(f"rejecting connection: {exc}")
            writer.close()
            return
        if frame is None:
            writer.close()
            return
        if frame["type"] == "admin":
            await self._handle_admin(frame, writer)
            return
        if frame["type"] != "hello":
            self._log(f"first frame must be hello/admin, got {frame['type']!r}")
            writer.close()
            return
        await self._handle_session(frame, reader, writer)

    async def _handle_session(
        self,
        hello: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        name = str(hello.get("client", ""))
        if not name or name == SERVER_ID:
            self._log(f"invalid client name {name!r}")
            writer.close()
            return
        channel = self.ensure_client(name)
        delivered = int(hello.get("delivered", 0))
        delivered = max(0, min(delivered, self.wal.last_serial))
        channel.delivered = max(channel.delivered, delivered)
        channel.connects += 1
        if channel.writer is not None:
            channel.writer.close()  # a reconnect supersedes the stale socket
        channel.writer = writer
        missed = self.wal.broadcasts_for(self.server, delivered)
        await write_frame(
            writer,
            encode_envelope(
                "welcome",
                server=SERVER_ID,
                ack=channel.receiver.cumulative_ack,
                serial=self.wal.last_serial,
                resync=len(missed),
                initial=self.initial_text,
            ),
        )
        self._obs.trace(
            "net.connect",
            client=name,
            connect=channel.connects,
            cursor=delivered,
            resync=len(missed),
        )
        self._update_connection_gauges()
        # Resync from durable state: re-ship everything after the cursor.
        if missed:
            self._obs.net_resync_frames.inc(len(missed))
        for broadcast in missed:
            self.resync_frames_sent += 1
            await write_frame(
                writer,
                encode_envelope(
                    "data",
                    seq=broadcast.serial,
                    ack=channel.receiver.cumulative_ack,
                    body=message_to_obj(broadcast),
                ),
            )
        self._log(
            f"{name} connected (connect #{channel.connects}, "
            f"cursor {delivered}, resynced {len(missed)})"
        )
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None or frame["type"] == "bye":
                    break
                await self._handle_frame(channel, frame)
        except (WireError, ConnectionError, asyncio.IncompleteReadError) as exc:
            self._log(f"{name} dropped: {exc}")
        except ProtocolError as exc:
            # A malformed or out-of-contract peer loses its connection;
            # the server and every other client keep running.
            self._log(f"{name} violated the protocol: {exc}")
        except asyncio.CancelledError:
            pass  # event-loop teardown while the connection was idle
        finally:
            if channel.writer is writer:
                channel.writer = None
            writer.close()
            self._obs.trace("net.disconnect", client=name)
            self._update_connection_gauges()

    async def _handle_frame(
        self, channel: _ClientChannel, frame: Dict[str, Any]
    ) -> None:
        kind = frame["type"]
        if kind == "ping":
            if channel.writer is not None:
                await write_frame(
                    channel.writer, encode_envelope("pong", t=frame.get("t"))
                )
            return
        if kind != "data":
            self._log(f"{channel.client}: ignoring frame type {kind!r}")
            return
        self.frames_received += 1
        ack = min(int(frame.get("ack", 0)), channel.sender.next_seq - 1)
        channel.sender.ack(ack)
        channel.delivered = max(channel.delivered, ack)
        seq = int(frame["seq"])
        payload = message_from_obj(frame["body"])
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(
                f"{channel.client}: client data frames must carry "
                f"ClientOperation, got {type(payload).__name__}"
            )
        released = channel.receiver.receive(seq)
        if released == 0:
            if seq >= channel.receiver.expected:
                channel.parked[seq] = payload  # gap: park until it fills
            else:
                self.duplicates_suppressed += 1
        else:
            channel.parked[seq] = payload
            first = channel.receiver.expected - released
            for released_seq in range(first, channel.receiver.expected):
                await self._serialise(channel, channel.parked.pop(released_seq))
        self._update_connection_gauges()
        # Always re-acknowledge: a duplicate means an earlier ack was lost.
        if channel.writer is not None:
            await write_frame(
                channel.writer,
                encode_envelope("ack", ack=channel.receiver.cumulative_ack),
            )

    async def _serialise(
        self, origin: _ClientChannel, payload: ClientOperation
    ) -> None:
        """The write path: serialise, log (write-ahead), then broadcast."""
        # Everything up to (and including) the per-channel sequence
        # allocation is synchronous: two connection tasks can never
        # interleave here, which is what keeps the s->c sequence number
        # equal to the serial on every channel.
        outgoing = self.server.receive(origin.client, payload)
        serial = self.server.oracle.last_serial
        self.wal.append(serial, origin.client, payload.operation)
        if self.wal.should_compact():
            self.wal.compact(self.server, retain_after=self._retain_floor())
        frames = []
        for recipient, broadcast in outgoing:
            channel = self.channels[recipient]
            seq = channel.sender.send()
            if seq != serial:
                raise ProtocolError(
                    f"s->c seq {seq} for {recipient} diverged from serial "
                    f"{serial}; the channel numbering invariant is broken"
                )
            frames.append(
                (
                    channel,
                    encode_envelope(
                        "data",
                        seq=seq,
                        ack=channel.receiver.cumulative_ack,
                        body=message_to_obj(broadcast),
                    ),
                )
            )
        for channel, envelope in frames:
            if channel.writer is None:
                continue  # offline: the WAL re-ships on reconnect
            try:
                await write_frame(channel.writer, envelope)
            except ConnectionError:
                channel.writer = None

    # ------------------------------------------------------------------
    # Admin plane (used by the load generator and operators)
    # ------------------------------------------------------------------
    async def _handle_admin(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        command = frame.get("cmd")
        if command == "signature":
            reply = encode_envelope(
                "admin_reply",
                signature=document_signature(self.server.document),
                serial=self.wal.last_serial,
                document=self.server.document.as_string(),
            )
        elif command == "stats":
            reply = encode_envelope(
                "admin_reply",
                serial=self.wal.last_serial,
                clients={
                    name: {
                        "delivered": c.delivered,
                        "connects": c.connects,
                        "connected": c.writer is not None,
                    }
                    for name, c in sorted(self.channels.items())
                },
                frames_received=self.frames_received,
                resync_frames_sent=self.resync_frames_sent,
                duplicates_suppressed=self.duplicates_suppressed,
                wal={
                    "appends": self.wal.appends,
                    "compactions": self.wal.compactions,
                    "records_truncated": self.wal.records_truncated,
                },
            )
        elif command == "metrics":
            obs = self._obs
            reply = encode_envelope(
                "admin_reply",
                enabled=obs.enabled,
                exposition=obs.render(),
                snapshot=obs.snapshot(),
            )
        elif command == "shutdown":
            reply = encode_envelope("admin_reply", stopping=True)
            await write_frame(writer, reply)
            writer.close()
            await self.stop()
            return
        else:
            reply = encode_envelope(
                "admin_reply", error=f"unknown admin command {command!r}"
            )
        await write_frame(writer, reply)
        writer.close()


# ----------------------------------------------------------------------
# Process entry point (the ``repro serve`` verb)
# ----------------------------------------------------------------------
async def _serve(
    host: str,
    port: int,
    initial_text: str,
    snapshot_every: int,
    announce: bool,
    quiet: bool,
) -> int:
    server = NetServer(
        host=host,
        port=port,
        initial_text=initial_text,
        snapshot_every=snapshot_every,
        quiet=quiet,
    )
    await server.start()
    if announce:
        # One machine-parseable line; the load generator reads this to
        # discover the ephemeral port.
        print(
            "REPRO-SERVE "
            + json.dumps({"host": server.host, "port": server.port}),
            flush=True,
        )
    await server.wait_closed()
    return 0


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    initial_text: str = "",
    snapshot_every: int = 256,
    announce: bool = False,
    quiet: bool = False,
) -> int:
    """Blocking entry point for ``repro serve``."""
    try:
        return asyncio.run(
            _serve(host, port, initial_text, snapshot_every, announce, quiet)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
