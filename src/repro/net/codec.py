"""Wire codec: versioned JSON envelopes for the protocol messages.

The persistence module already serialises operations for snapshots; this
module lifts that into an explicit *wire* codec for all four
:mod:`repro.jupiter.messages` payload types:

* :class:`~repro.jupiter.messages.ClientOperation`
* :class:`~repro.jupiter.messages.ServerOperation`
* :class:`~repro.jupiter.messages.ResyncRequest`
* :class:`~repro.jupiter.messages.ResyncResponse`

Every serialised message is wrapped in an **envelope**::

    {"v": 1, "kind": "server_op", "body": {...}}

with two compatibility rules:

* the envelope ``v`` must match :data:`WIRE_VERSION` exactly — a peer
  speaking a different wire version is rejected loudly rather than
  misinterpreted;
* *unknown fields* anywhere (envelope or body) are tolerated and
  ignored, so a newer peer may add fields without breaking an older one.
  Decoders read only the keys they know.

The module also provides :func:`document_signature` — the canonical
digest the load generator compares across process boundaries to check
convergence (byte-identical documents, element identities included).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.messages import (
    ClientOperation,
    ResyncRequest,
    ResyncResponse,
    ServerOperation,
)
from repro.jupiter.persistence import (
    operation_from_obj,
    operation_to_obj,
    opid_from_obj,
    opid_to_obj,
)

#: Version of the frame envelope; bumped on any incompatible change.
WIRE_VERSION = 1

#: Document served when a ``hello`` carries no ``doc`` field.  The field
#: is an *addition* under the unknown-fields rule: an old client's hello
#: lands on this document, and an old server ignores the field entirely
#: (a fleet client must therefore only be pointed at fleet-aware
#: workers, which the router guarantees).
DEFAULT_DOC = "default"


class WireError(ProtocolError):
    """A frame or message cannot be decoded (bad version, junk, oversize)."""


# ----------------------------------------------------------------------
# Message codecs (satellite: explicit to/from JSON for all four types)
# ----------------------------------------------------------------------
def _client_op_to_obj(message: ClientOperation) -> Dict[str, Any]:
    return {"operation": operation_to_obj(message.operation)}


def _client_op_from_obj(body: Dict[str, Any]) -> ClientOperation:
    return ClientOperation(operation=operation_from_obj(body["operation"]))


def _server_op_to_obj(message: ServerOperation) -> Dict[str, Any]:
    return {
        "operation": operation_to_obj(message.operation),
        "origin": message.origin,
        "serial": message.serial,
        "prefix": sorted(opid_to_obj(o) for o in message.prefix),
    }


def _server_op_from_obj(body: Dict[str, Any]) -> ServerOperation:
    return ServerOperation(
        operation=operation_from_obj(body["operation"]),
        origin=str(body["origin"]),
        serial=int(body["serial"]),
        prefix=frozenset(opid_from_obj(o) for o in body["prefix"]),
    )


def _resync_request_to_obj(message: ResyncRequest) -> Dict[str, Any]:
    return {"client": message.client, "delivered": message.delivered}


def _resync_request_from_obj(body: Dict[str, Any]) -> ResyncRequest:
    return ResyncRequest(
        client=str(body["client"]), delivered=int(body["delivered"])
    )


def _resync_response_to_obj(message: ResyncResponse) -> Dict[str, Any]:
    return {
        "client": message.client,
        "payloads": [message_to_obj(p) for p in message.payloads],
    }


def _resync_response_from_obj(body: Dict[str, Any]) -> ResyncResponse:
    return ResyncResponse(
        client=str(body["client"]),
        payloads=tuple(message_from_obj(p) for p in body["payloads"]),
    )


_ENCODERS = {
    ClientOperation: ("client_op", _client_op_to_obj),
    ServerOperation: ("server_op", _server_op_to_obj),
    ResyncRequest: ("resync_request", _resync_request_to_obj),
    ResyncResponse: ("resync_response", _resync_response_to_obj),
}

_DECODERS = {
    "client_op": _client_op_from_obj,
    "server_op": _server_op_from_obj,
    "resync_request": _resync_request_from_obj,
    "resync_response": _resync_response_from_obj,
}


def message_to_obj(message: Any) -> Dict[str, Any]:
    """Wrap one protocol message in a versioned envelope dictionary."""
    entry = _ENCODERS.get(type(message))
    if entry is None:
        raise WireError(f"cannot encode payload of type {type(message).__name__}")
    kind, encoder = entry
    return {"v": WIRE_VERSION, "kind": kind, "body": encoder(message)}


def message_from_obj(obj: Dict[str, Any]) -> Any:
    """Decode an envelope dictionary back into a protocol message.

    Unknown fields in the envelope and the body are ignored; a missing
    or mismatched version, an unknown kind, or a malformed body raise
    :class:`WireError`.
    """
    if not isinstance(obj, dict):
        raise WireError(f"message envelope must be an object, got {type(obj).__name__}")
    if obj.get("v") != WIRE_VERSION:
        raise WireError(f"unsupported wire version {obj.get('v')!r}")
    kind = obj.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise WireError(f"unknown message kind {kind!r}")
    body = obj.get("body")
    if not isinstance(body, dict):
        raise WireError(f"message body must be an object, got {type(body).__name__}")
    try:
        return decoder(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed {kind} body: {exc!r}") from exc


def message_to_json(message: Any) -> str:
    """Canonical JSON text of one protocol message (sorted keys)."""
    return json.dumps(message_to_obj(message), sort_keys=True, separators=(",", ":"))


def message_from_json(text: str) -> Any:
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"message is not valid JSON: {exc}") from exc
    return message_from_obj(obj)


# ----------------------------------------------------------------------
# Replica rosters (the replicated-deployment control plane)
# ----------------------------------------------------------------------
def roster_to_obj(roster: Sequence[Tuple[str, int]]) -> List[List[Any]]:
    """Serialise a replica roster (ordered ``(host, port)`` pairs).

    The roster order is load-bearing: the index of each entry is the
    replica's identity (``s0``, ``s1``, ...) and the view-change rule
    ``primary(view) = roster[view mod len(roster)]`` is evaluated against
    it, so every replica and client must hold the *same ordered* roster.
    """
    return [[str(host), int(port)] for host, port in roster]


def roster_from_obj(obj: Any) -> List[Tuple[str, int]]:
    """Decode a roster; raises :class:`WireError` on malformed entries."""
    if not isinstance(obj, list) or not obj:
        raise WireError(f"roster must be a non-empty list, got {obj!r}")
    roster: List[Tuple[str, int]] = []
    for entry in obj:
        try:
            host, port = entry
            roster.append((str(host), int(port)))
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed roster entry {entry!r}: {exc}") from exc
    return roster


def parse_roster(text: str) -> List[Tuple[str, int]]:
    """Parse a ``host:port,host:port,...`` roster string (CLI format)."""
    roster: List[Tuple[str, int]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise WireError(
                f"malformed roster entry {item!r}: expected host:port"
            )
        roster.append((host, int(port)))
    if not roster:
        raise WireError(f"roster {text!r} contains no host:port entries")
    return roster


# ----------------------------------------------------------------------
# Frame envelopes (control plane + data plane of the transport)
# ----------------------------------------------------------------------
# In a replicated deployment four frame types join the original eight
# (hello/welcome/data/ack/ping/pong/bye/admin), all plain envelopes:
#
# * ``redirect {view, epoch, primary, host, port, roster}`` — a backup's
#   answer to a client ``hello``: go talk to the primary of my view.
# * ``repl_install {view, epoch, committed, log}`` — primary -> backup:
#   adopt this full log (sent on (re)connect and as the VSR start-view).
# * ``repl_append {epoch, committed, record}`` — primary -> backup: one
#   shipped WAL record; the piggybacked ``committed`` floor lets backups
#   track what is quorum-certified without extra round trips.
# * ``repl_ack {serial, epoch}`` / ``repl_deny {view}`` — backup ->
#   primary: durable-append acknowledgement, or a refusal quoting a
#   higher view (the sender is a deposed primary and must stand down).
# * ``repl_seek {view}`` / ``repl_offer {view, replica, last_epoch,
#   last_serial, committed, log}`` — a view-change candidate gathering
#   quorum: each offer is a promise to reject epochs below ``view``.
#
# Every replicated data/ack/welcome frame also carries ``epoch`` so
# stale-primary frames are rejected instead of misapplied.
#
# The overload-armor layer adds three server -> client envelopes:
#
# * ``evicted {reason, epoch}`` — the server dropped this connection as
#   a slow consumer (queue overflow, write stall, idle deadline); the
#   WAL resync on reconnect makes the eviction lossless.
# * ``retry_after {seconds, reason}`` — admission control refused the
#   connection; the client backs off at least ``seconds`` and redials.
# * ``error {reason, length, limit, epoch}`` — one frame was rejected
#   (e.g. oversized) but the session stays alive.
#
# The fleet tier (:mod:`repro.net.fleet`) adds a control plane between
# workers and the router, plus one field on the session handshake:
#
# * ``hello`` gains an optional ``doc`` field naming the document the
#   session is for (default :data:`DEFAULT_DOC`); ``welcome`` echoes it.
# * ``fleet_register {worker, host, port}`` — worker -> router: join the
#   fleet; answered with ``fleet_ack {lease, interval}`` quoting the
#   lease the worker must keep renewed and the heartbeat interval.
# * ``fleet_heartbeat {worker, docs}`` — worker -> router: renew the
#   lease, reporting the documents currently hosted; answered with
#   ``fleet_ack``.
# * A client ``hello`` sent *to the router* is answered with the same
#   ``redirect`` envelope the replication layer uses — ``{host, port,
#   roster}`` pointing at the worker that owns ``doc`` — so the
#   client's existing redirect/roster-walk machinery needs nothing new.
def encode_envelope(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """Build one wire frame: ``{"v": 1, "type": ..., **fields}``."""
    if "v" in fields or "type" in fields:
        raise WireError("'v' and 'type' are reserved envelope keys")
    envelope: Dict[str, Any] = {"v": WIRE_VERSION, "type": frame_type}
    envelope.update(fields)
    return envelope


def decode_envelope(raw: bytes) -> Dict[str, Any]:
    """Parse and version-check one frame body.

    Returns the decoded dictionary; callers dispatch on ``frame["type"]``
    and read only the fields they know (unknown fields are tolerated).
    """
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame is not valid UTF-8 JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError(f"frame must be a JSON object, got {type(obj).__name__}")
    if obj.get("v") != WIRE_VERSION:
        raise WireError(f"unsupported wire version {obj.get('v')!r}")
    if not isinstance(obj.get("type"), str):
        raise WireError("frame has no 'type' field")
    return obj


# ----------------------------------------------------------------------
# Convergence signatures
# ----------------------------------------------------------------------
def document_signature(document: ListDocument) -> str:
    """Canonical digest of a document, element identities included.

    Two replicas converged (Theorem 6.7) iff their documents agree as
    *identified* element sequences — same values in the same order with
    the same originating :class:`~repro.common.ids.OpId`\\ s.  Hashing the
    canonical JSON of exactly that sequence lets processes compare state
    by exchanging one short hex string.
    """
    canon = [
        [element.value, element.opid.replica, element.opid.seq]
        for element in document.read()
    ]
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
