"""Wire codec: versioned JSON envelopes for the protocol messages.

The persistence module already serialises operations for snapshots; this
module lifts that into an explicit *wire* codec for all four
:mod:`repro.jupiter.messages` payload types:

* :class:`~repro.jupiter.messages.ClientOperation`
* :class:`~repro.jupiter.messages.ServerOperation`
* :class:`~repro.jupiter.messages.ResyncRequest`
* :class:`~repro.jupiter.messages.ResyncResponse`

Every serialised message is wrapped in an **envelope**::

    {"v": 1, "kind": "server_op", "body": {...}}

with two compatibility rules:

* the envelope ``v`` must match :data:`WIRE_VERSION` exactly — a peer
  speaking a different wire version is rejected loudly rather than
  misinterpreted;
* *unknown fields* anywhere (envelope or body) are tolerated and
  ignored, so a newer peer may add fields without breaking an older one.
  Decoders read only the keys they know.

The module also provides :func:`document_signature` — the canonical
digest the load generator compares across process boundaries to check
convergence (byte-identical documents, element identities included).
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, List, Sequence, Tuple

from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.messages import (
    ClientOperation,
    ResyncRequest,
    ResyncResponse,
    ServerOperation,
)
from repro.jupiter.persistence import (
    context_from_compact,
    operation_from_obj,
    operation_to_obj,
    opid_from_obj,
    opid_to_obj,
)

#: Version of the frame envelope; bumped on any incompatible change.
#: The binary codec is *not* a version bump: the envelope model (a dict
#: with ``v``/``type`` and tolerated unknown fields) is unchanged — only
#: the byte serialisation differs, and it is negotiated per session.
WIRE_VERSION = 1

#: Frame byte serialisations a peer may offer in its ``hello``
#: (``codecs`` field, preference order) and a server may pick in its
#: ``welcome`` (``codec`` field).  JSON is the mandatory fallback: a v1
#: peer that has never heard of negotiation simply keeps speaking it.
CODEC_JSON = "json"
CODEC_BINARY = "bin"
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)

#: First byte of every binary-codec frame.  JSON frames start with
#: ``{`` (0x7B) or whitespace, never 0xB2, so the decoder sniffs the
#: serialisation per frame — which is what makes the handshake safe:
#: hello/welcome are always JSON, and the first binary frame after a
#: ``welcome`` needs no synchronisation point.
BINARY_MAGIC = 0xB2

#: Document served when a ``hello`` carries no ``doc`` field.  The field
#: is an *addition* under the unknown-fields rule: an old client's hello
#: lands on this document, and an old server ignores the field entirely
#: (a fleet client must therefore only be pointed at fleet-aware
#: workers, which the router guarantees).
DEFAULT_DOC = "default"


class WireError(ProtocolError):
    """A frame or message cannot be decoded (bad version, junk, oversize)."""


# ----------------------------------------------------------------------
# Message codecs (satellite: explicit to/from JSON for all four types)
# ----------------------------------------------------------------------
def _client_op_to_obj(message: ClientOperation) -> Dict[str, Any]:
    return {"operation": operation_to_obj(message.operation)}


def _client_op_from_obj(body: Dict[str, Any]) -> ClientOperation:
    return ClientOperation(operation=operation_from_obj(body["operation"]))


def _server_op_to_obj(message: ServerOperation) -> Dict[str, Any]:
    return {
        "operation": operation_to_obj(message.operation),
        "origin": message.origin,
        "serial": message.serial,
        "prefix": sorted(opid_to_obj(o) for o in message.prefix),
    }


def _server_op_from_obj(body: Dict[str, Any]) -> ServerOperation:
    return ServerOperation(
        operation=operation_from_obj(body["operation"]),
        origin=str(body["origin"]),
        serial=int(body["serial"]),
        prefix=frozenset(opid_from_obj(o) for o in body["prefix"]),
    )


def _resync_request_to_obj(message: ResyncRequest) -> Dict[str, Any]:
    return {"client": message.client, "delivered": message.delivered}


def _resync_request_from_obj(body: Dict[str, Any]) -> ResyncRequest:
    return ResyncRequest(
        client=str(body["client"]), delivered=int(body["delivered"])
    )


def _resync_response_to_obj(message: ResyncResponse) -> Dict[str, Any]:
    return {
        "client": message.client,
        "payloads": [message_to_obj(p) for p in message.payloads],
    }


def _resync_response_from_obj(body: Dict[str, Any]) -> ResyncResponse:
    return ResyncResponse(
        client=str(body["client"]),
        payloads=tuple(message_from_obj(p) for p in body["payloads"]),
    )


_ENCODERS = {
    ClientOperation: ("client_op", _client_op_to_obj),
    ServerOperation: ("server_op", _server_op_to_obj),
    ResyncRequest: ("resync_request", _resync_request_to_obj),
    ResyncResponse: ("resync_response", _resync_response_to_obj),
}

_DECODERS = {
    "client_op": _client_op_from_obj,
    "server_op": _server_op_from_obj,
    "resync_request": _resync_request_from_obj,
    "resync_response": _resync_response_from_obj,
}


def message_to_obj(message: Any) -> Dict[str, Any]:
    """Wrap one protocol message in a versioned envelope dictionary."""
    entry = _ENCODERS.get(type(message))
    if entry is None:
        raise WireError(f"cannot encode payload of type {type(message).__name__}")
    kind, encoder = entry
    return {"v": WIRE_VERSION, "kind": kind, "body": encoder(message)}


def message_from_obj(obj: Dict[str, Any]) -> Any:
    """Decode an envelope dictionary back into a protocol message.

    Unknown fields in the envelope and the body are ignored; a missing
    or mismatched version, an unknown kind, or a malformed body raise
    :class:`WireError`.
    """
    if not isinstance(obj, dict):
        raise WireError(f"message envelope must be an object, got {type(obj).__name__}")
    if obj.get("v") != WIRE_VERSION:
        raise WireError(f"unsupported wire version {obj.get('v')!r}")
    kind = obj.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise WireError(f"unknown message kind {kind!r}")
    body = obj.get("body")
    if not isinstance(body, dict):
        raise WireError(f"message body must be an object, got {type(body).__name__}")
    try:
        return decoder(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed {kind} body: {exc!r}") from exc


def message_to_json(message: Any) -> str:
    """Canonical JSON text of one protocol message (sorted keys)."""
    return json.dumps(message_to_obj(message), sort_keys=True, separators=(",", ":"))


def message_from_json(text: str) -> Any:
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"message is not valid JSON: {exc}") from exc
    return message_from_obj(obj)


# ----------------------------------------------------------------------
# Serial-encoded message bodies (the v2 active-window wire form)
# ----------------------------------------------------------------------
# An operation's context is the set of everything its generator had
# processed: a dense serial prefix of the total order plus a handful of
# "extras" (the generator's own operations still awaiting their echo).
# Negotiated sessions ship it as ``ctx: [d, [extra opids]]`` — O(extras)
# instead of O(history) — and omit the redundant ``prefix`` set (the
# serial number determines it).  The encoding is rebase-invariant: the
# decoder resolves the dense prefix ``(its own GC base, d]`` against its
# serial log, so the same bytes decode correctly on replicas whose
# active windows start at different floors.
def compact_client_op_obj(message: ClientOperation, oracle) -> Dict[str, Any]:
    """Encode a client operation with a serial-encoded context.

    ``oracle`` is the generator's
    :class:`~repro.jupiter.ordering.ClientOrderOracle`; context members
    it cannot name a serial for are the client's own still-pending
    operations and ride as extras.  Members at or below the client's GC
    base are omitted — ``d`` is at least the base, so any decoder's
    dense prefix covers them.
    """
    operation = message.operation
    serials: List[int] = []
    extras = []
    for member in operation.context:
        serial = oracle.serial_of(member)
        if serial is None:
            extras.append(member)
        elif serial > oracle.base:
            serials.append(serial)
    d = oracle.base
    gapped: List[int] = []
    for serial in sorted(serials):
        if serial == d + 1 and not gapped:
            d = serial
        else:
            gapped.append(serial)
    extras.extend(oracle.opid_of(serial) for serial in gapped)
    return {
        "v": WIRE_VERSION,
        "kind": "client_op",
        "body": {
            "operation": operation_to_obj(operation, with_context=False),
            "ctx": [d, sorted(opid_to_obj(o) for o in extras)],
        },
    }


def compact_server_op_obj(
    message: ServerOperation, ctx: Sequence[Any]
) -> Dict[str, Any]:
    """Encode a broadcast with the serial-encoded context the WAL holds.

    ``ctx`` is the ``[d, [extra opid objs]]`` pair the server computed
    when it appended the record (:func:`~repro.jupiter.persistence.compact_context`).
    The ``prefix`` set is omitted entirely: on a negotiated session the
    recipient knows every serial below ``serial``, so the number *is*
    the prefix.
    """
    return {
        "v": WIRE_VERSION,
        "kind": "server_op",
        "body": {
            "operation": operation_to_obj(
                message.operation, with_context=False
            ),
            "ctx": [int(ctx[0]), list(ctx[1])],
            "origin": message.origin,
            "serial": int(message.serial),
        },
    }


def message_from_wire(obj: Dict[str, Any], oracle) -> Any:
    """Decode a message envelope, resolving serial-encoded contexts.

    Absolute-context bodies (the v1 form) fall through to
    :func:`message_from_obj`.  Compact bodies resolve their dense prefix
    against ``oracle`` — the *decoder's* order oracle — so this must be
    called at integration time, after every serial below the context
    floor has been witnessed (frame release order guarantees exactly
    that on both ends).
    """
    if not isinstance(obj, dict):
        raise WireError(
            f"message envelope must be an object, got {type(obj).__name__}"
        )
    body = obj.get("body")
    if not (isinstance(body, dict) and "ctx" in body):
        return message_from_obj(obj)
    kind = obj.get("kind")
    try:
        bare = dict(body["operation"])
        bare["context"] = []
        operation = operation_from_obj(bare).with_context(
            context_from_compact(body["ctx"], oracle)
        )
        if kind == "client_op":
            return ClientOperation(operation=operation)
        if kind == "server_op":
            return ServerOperation(
                operation=operation,
                origin=str(body["origin"]),
                serial=int(body["serial"]),
                # The prefix set is implied by the serial on a compact
                # session; the FIFO cross-check it feeds is vacuous here.
                prefix=frozenset(),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed compact {kind} body: {exc!r}") from exc
    raise WireError(f"unknown compact message kind {kind!r}")


# ----------------------------------------------------------------------
# Replica rosters (the replicated-deployment control plane)
# ----------------------------------------------------------------------
def roster_to_obj(roster: Sequence[Tuple[str, int]]) -> List[List[Any]]:
    """Serialise a replica roster (ordered ``(host, port)`` pairs).

    The roster order is load-bearing: the index of each entry is the
    replica's identity (``s0``, ``s1``, ...) and the view-change rule
    ``primary(view) = roster[view mod len(roster)]`` is evaluated against
    it, so every replica and client must hold the *same ordered* roster.
    """
    return [[str(host), int(port)] for host, port in roster]


def roster_from_obj(obj: Any) -> List[Tuple[str, int]]:
    """Decode a roster; raises :class:`WireError` on malformed entries."""
    if not isinstance(obj, list) or not obj:
        raise WireError(f"roster must be a non-empty list, got {obj!r}")
    roster: List[Tuple[str, int]] = []
    for entry in obj:
        try:
            host, port = entry
            roster.append((str(host), int(port)))
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed roster entry {entry!r}: {exc}") from exc
    return roster


def parse_roster(text: str) -> List[Tuple[str, int]]:
    """Parse a ``host:port,host:port,...`` roster string (CLI format)."""
    roster: List[Tuple[str, int]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise WireError(
                f"malformed roster entry {item!r}: expected host:port"
            )
        roster.append((host, int(port)))
    if not roster:
        raise WireError(f"roster {text!r} contains no host:port entries")
    return roster


# ----------------------------------------------------------------------
# Frame envelopes (control plane + data plane of the transport)
# ----------------------------------------------------------------------
# In a replicated deployment four frame types join the original eight
# (hello/welcome/data/ack/ping/pong/bye/admin), all plain envelopes:
#
# * ``redirect {view, epoch, primary, host, port, roster}`` — a backup's
#   answer to a client ``hello``: go talk to the primary of my view.
# * ``repl_install {view, epoch, committed, log}`` — primary -> backup:
#   adopt this full log (sent on (re)connect and as the VSR start-view).
# * ``repl_append {epoch, committed, record}`` — primary -> backup: one
#   shipped WAL record; the piggybacked ``committed`` floor lets backups
#   track what is quorum-certified without extra round trips.
# * ``repl_ack {serial, epoch}`` / ``repl_deny {view}`` — backup ->
#   primary: durable-append acknowledgement, or a refusal quoting a
#   higher view (the sender is a deposed primary and must stand down).
# * ``repl_seek {view}`` / ``repl_offer {view, replica, last_epoch,
#   last_serial, committed, log}`` — a view-change candidate gathering
#   quorum: each offer is a promise to reject epochs below ``view``.
#
# Every replicated data/ack/welcome frame also carries ``epoch`` so
# stale-primary frames are rejected instead of misapplied.
#
# The overload-armor layer adds three server -> client envelopes:
#
# * ``evicted {reason, epoch}`` — the server dropped this connection as
#   a slow consumer (queue overflow, write stall, idle deadline); the
#   WAL resync on reconnect makes the eviction lossless.
# * ``retry_after {seconds, reason}`` — admission control refused the
#   connection; the client backs off at least ``seconds`` and redials.
# * ``error {reason, length, limit, epoch}`` — one frame was rejected
#   (e.g. oversized) but the session stays alive.
#
# The fleet tier (:mod:`repro.net.fleet`) adds a control plane between
# workers and the router, plus one field on the session handshake:
#
# * ``hello`` gains an optional ``doc`` field naming the document the
#   session is for (default :data:`DEFAULT_DOC`); ``welcome`` echoes it.
# * ``fleet_register {worker, host, port}`` — worker -> router: join the
#   fleet; answered with ``fleet_ack {lease, interval}`` quoting the
#   lease the worker must keep renewed and the heartbeat interval.
# * ``fleet_heartbeat {worker, docs}`` — worker -> router: renew the
#   lease, reporting the documents currently hosted; answered with
#   ``fleet_ack``.
# * A client ``hello`` sent *to the router* is answered with the same
#   ``redirect`` envelope the replication layer uses — ``{host, port,
#   roster}`` pointing at the worker that owns ``doc`` — so the
#   client's existing redirect/roster-walk machinery needs nothing new.
def encode_envelope(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """Build one wire frame: ``{"v": 1, "type": ..., **fields}``."""
    if "v" in fields or "type" in fields:
        raise WireError("'v' and 'type' are reserved envelope keys")
    envelope: Dict[str, Any] = {"v": WIRE_VERSION, "type": frame_type}
    envelope.update(fields)
    return envelope


def decode_envelope(raw: bytes) -> Dict[str, Any]:
    """Parse and version-check one frame body, sniffing the codec.

    A body starting with :data:`BINARY_MAGIC` is a binary-codec frame;
    anything else is UTF-8 JSON.  Returns the decoded dictionary;
    callers dispatch on ``frame["type"]`` and read only the fields they
    know (unknown fields are tolerated by both codecs — the binary
    serialisation is self-describing, so a decoder carries unfamiliar
    keys through just like ``json.loads`` does).
    """
    if raw[:1] == _BINARY_MAGIC_BYTE:
        obj = _decode_binary_value(raw, 1)
    else:
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"frame is not valid UTF-8 JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError(f"frame must be a JSON object, got {type(obj).__name__}")
    if obj.get("v") != WIRE_VERSION:
        raise WireError(f"unsupported wire version {obj.get('v')!r}")
    if not isinstance(obj.get("type"), str):
        raise WireError("frame has no 'type' field")
    return obj


def encode_frame_bytes(
    envelope: Dict[str, Any], codec: str = CODEC_JSON
) -> bytes:
    """Serialise one envelope dictionary under ``codec``."""
    if codec == CODEC_BINARY:
        out = bytearray(_BINARY_MAGIC_BYTE)
        _encode_binary_value(out, envelope)
        return bytes(out)
    if codec == CODEC_JSON:
        return json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    raise WireError(f"unknown wire codec {codec!r}")


def negotiate_codec(offered: Any) -> str:
    """Server-side codec pick: first supported entry of a hello's
    ``codecs`` list, JSON when the field is missing/garbled (a v1 peer).
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if name in SUPPORTED_CODECS:
                return str(name)
    return CODEC_JSON


# ----------------------------------------------------------------------
# Binary frame serialisation (negotiated codec "bin")
# ----------------------------------------------------------------------
# A self-describing tagged encoding of the same envelope dictionaries the
# JSON codec carries — nothing schema-specific, so the unknown-fields
# compatibility rule holds byte-for-byte.  The win over JSON comes from
# three things: varint integers (serials, seqs, positions), length-
# prefixed strings (no quoting), and a static intern table that turns
# every well-known key and type name into a 2-byte reference.  The table
# is part of the codec definition: entries are APPEND-ONLY (an index,
# once shipped, means that string forever).
_BINARY_MAGIC_BYTE = bytes([BINARY_MAGIC])

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_LIST = 0x06
_TAG_DICT = 0x07
_TAG_REF = 0x08

_INTERNED = (
    # envelope / session
    "v", "type", "hello", "welcome", "data", "ack", "ping", "pong", "bye",
    "admin", "error", "multi", "redirect", "evicted", "retry_after",
    "client", "doc", "seq", "serial", "origin", "epoch", "message",
    "frames", "codec", "codecs", "features", "batch", "floor", "pin",
    "reason", "resync", "delivered", "payloads", "command",
    # message envelopes
    "kind", "body", "client_op", "server_op", "resync_request",
    "resync_response", "operation", "prefix", "position", "context",
    "element", "value", "opid", "replica", "ins", "del", "ctx", "base",
    # replication / fleet control plane
    "view", "primary", "host", "port", "roster", "committed", "record",
    "log", "lease", "interval", "worker", "docs", "repl_install",
    "repl_append", "repl_ack", "repl_deny", "repl_seek", "repl_offer",
    "fleet_register", "fleet_heartbeat", "fleet_ack",
    # state transfer
    "space", "serials", "snapshot", "next_seq", "clients", "state",
)
_INTERN_INDEX = {text: index for index, text in enumerate(_INTERNED)}


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_binary_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        _write_varint(out, zigzag)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        index = _INTERN_INDEX.get(value)
        if index is not None:
            out.append(_TAG_REF)
            _write_varint(out, index)
        else:
            encoded = value.encode("utf-8")
            out.append(_TAG_STR)
            _write_varint(out, len(encoded))
            out.extend(encoded)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_binary_value(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(
                    f"binary codec requires string keys, got {key!r}"
                )
            _encode_binary_value(out, key)
            _encode_binary_value(out, item)
    else:
        raise WireError(
            f"binary codec cannot encode {type(value).__name__}"
        )


def _decode_binary_value(raw: bytes, offset: int) -> Any:
    value, end = _read_binary_value(raw, offset)
    if end != len(raw):
        raise WireError(
            f"binary frame has {len(raw) - end} trailing bytes"
        )
    return value


def _read_varint(raw: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(raw):
            raise WireError("binary frame truncated inside a varint")
        byte = raw[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise WireError("binary varint exceeds 64 bits")


def _read_binary_value(raw: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(raw):
        raise WireError("binary frame truncated at a value tag")
    tag = raw[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        zigzag, offset = _read_varint(raw, offset)
        return (zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(raw):
            raise WireError("binary frame truncated inside a float")
        return struct.unpack_from(">d", raw, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = _read_varint(raw, offset)
        if offset + length > len(raw):
            raise WireError("binary frame truncated inside a string")
        try:
            text = raw[offset : offset + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"binary string is not UTF-8: {exc}") from exc
        return text, offset + length
    if tag == _TAG_REF:
        index, offset = _read_varint(raw, offset)
        if index >= len(_INTERNED):
            raise WireError(f"binary intern reference {index} out of range")
        return _INTERNED[index], offset
    if tag == _TAG_LIST:
        count, offset = _read_varint(raw, offset)
        items = []
        for _ in range(count):
            item, offset = _read_binary_value(raw, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        count, offset = _read_varint(raw, offset)
        result: Dict[str, Any] = {}
        for _ in range(count):
            key, offset = _read_binary_value(raw, offset)
            if not isinstance(key, str):
                raise WireError(
                    f"binary dictionary key is not a string: {key!r}"
                )
            item, offset = _read_binary_value(raw, offset)
            result[key] = item
        return result, offset
    raise WireError(f"unknown binary value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# Convergence signatures
# ----------------------------------------------------------------------
def document_signature(document: ListDocument) -> str:
    """Canonical digest of a document, element identities included.

    Two replicas converged (Theorem 6.7) iff their documents agree as
    *identified* element sequences — same values in the same order with
    the same originating :class:`~repro.common.ids.OpId`\\ s.  Hashing the
    canonical JSON of exactly that sequence lets processes compare state
    by exchanging one short hex string.
    """
    canon = [
        [element.value, element.opid.replica, element.opid.seq]
        for element in document.read()
    ]
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
