"""repro — a reproduction of "The Jupiter Protocol Revisited" (PODC 2018).

The package implements, from scratch:

* the formal framework for specifying replicated data types (abstract
  executions, visibility, happens-before / totally-before relations);
* the three replicated-list specifications (convergence, strong list,
  weak list) as executable checkers;
* the CSCW Jupiter protocol (2D state-spaces), the paper's new CSS Jupiter
  protocol (a single n-ary ordered state-space), a classic buffer-based
  Jupiter, and a deliberately broken OT protocol used as a counterexample;
* CRDT baselines (RGA, Logoot, WOOT);
* a deterministic discrete-event simulator with FIFO channels, workload
  generators, and trace collection, used to drive every experiment.

Typical entry points::

    from repro.sim import SimulationRunner
    from repro.specs import check_convergence, check_weak_list

See ``examples/quickstart.py`` for an end-to-end tour.
"""

from repro._version import __version__

__all__ = ["__version__"]
