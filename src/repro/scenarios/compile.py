"""Deterministic lowering of a scenario + seed to a timed op program.

The compiler walks a :class:`~repro.scenarios.dsl.Scenario` phase by
phase and client by client (both in declaration order), drawing every
random quantity — inter-keystroke gaps, characters, cursor jumps —
from one RNG seeded with ``f"{scenario.name}:{seed}"``.  The result is
a :class:`ScenarioProgram`: per client, a time-sorted tuple of
:class:`ClientEvent`\\ s (``join`` / ``op`` / ``offline`` / ``online``).
Same scenario + same seed ⇒ byte-identical program (the property
``tests/scenarios/test_compile.py`` pins with a JSON comparison).

Op events carry an :class:`EditIntent`, not a finished
:class:`~repro.model.schedule.OpSpec`: positions must be valid against
the client's *live* document, whose length at fire time depends on the
execution binding (simulated or wire) and on concurrent remote edits.
An intent extends the cursor-locality machinery of
:mod:`repro.sim.workload` — it records *how* to pick the position
(relative to the sticky cursor, a seeded document fraction, start or
end) and :func:`resolve_intent` materialises it against the live length
at generation time, exactly as ``WorkloadGenerator`` draws positions at
generation time.  Both bindings share :func:`resolve_intent`, so a
scenario means the same editing behaviour under either runtime.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.model.schedule import OpSpec
from repro.scenarios.dsl import (
    FlashCrowd,
    LateJoiner,
    MassDelete,
    MassPaste,
    OfflineChurn,
    Scenario,
    TypingBurst,
)

ALPHABET = string.ascii_lowercase

#: quiet gap between a churning client's last offline keystroke (or the
#: end of its pre-offline burst) and the link-state change itself.
_LINK_GAP = 0.05


@dataclass(frozen=True)
class EditIntent:
    """One keystroke's worth of editing intent, position still symbolic.

    ``mode`` picks the position rule at resolve time: ``cursor`` (the
    sticky cursor plus ``step``), ``fraction`` (``draw`` scaled to the
    live document), ``start``, or ``end``.  ``value`` is the inserted
    character — kept for deletes too, as the deterministic fallback when
    a delete lands on an empty document.
    """

    kind: str  # "ins" | "del"
    value: str
    mode: str  # "cursor" | "fraction" | "start" | "end"
    draw: float = 0.0
    step: int = 0

    def to_obj(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "value": self.value,
            "mode": self.mode,
            "draw": self.draw,
            "step": self.step,
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "EditIntent":
        return cls(
            kind=obj["kind"],
            value=obj["value"],
            mode=obj["mode"],
            draw=obj.get("draw", 0.0),
            step=obj.get("step", 0),
        )


@dataclass(frozen=True)
class ClientEvent:
    """One timed event in a client's compiled program."""

    at: float
    kind: str  # "join" | "op" | "offline" | "online"
    phase: str
    intent: Optional[EditIntent] = None

    def to_obj(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "phase": self.phase,
            "intent": self.intent.to_obj() if self.intent else None,
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "ClientEvent":
        intent = obj.get("intent")
        return cls(
            at=obj["at"],
            kind=obj["kind"],
            phase=obj["phase"],
            intent=EditIntent.from_obj(intent) if intent else None,
        )


@dataclass(frozen=True)
class PhaseSpan:
    """Where one phase sits on the compiled timeline."""

    name: str
    start: float
    end: float


@dataclass(frozen=True)
class ScenarioProgram:
    """The compiled artifact: timed per-client events plus phase spans."""

    scenario: str
    seed: int
    clients: Tuple[str, ...]
    initial_text: str
    events: Tuple[Tuple[str, Tuple[ClientEvent, ...]], ...]
    spans: Tuple[PhaseSpan, ...]

    def events_for(self, client: str) -> Tuple[ClientEvent, ...]:
        for name, events in self.events:
            if name == client:
                return events
        raise KeyError(client)

    @property
    def total_ops(self) -> int:
        return sum(
            1
            for _, events in self.events
            for event in events
            if event.kind == "op"
        )

    @property
    def duration(self) -> float:
        return self.spans[-1].end if self.spans else 0.0

    def to_obj(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "clients": list(self.clients),
            "initial_text": self.initial_text,
            "events": {
                client: [event.to_obj() for event in events]
                for client, events in self.events
            },
            "spans": [
                {"name": span.name, "start": span.start, "end": span.end}
                for span in self.spans
            ],
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "ScenarioProgram":
        clients = tuple(obj["clients"])
        return cls(
            scenario=obj["scenario"],
            seed=obj["seed"],
            clients=clients,
            initial_text=obj.get("initial_text", ""),
            events=tuple(
                (
                    client,
                    tuple(
                        ClientEvent.from_obj(e) for e in obj["events"][client]
                    ),
                )
                for client in clients
            ),
            spans=tuple(
                PhaseSpan(s["name"], s["start"], s["end"])
                for s in obj["spans"]
            ),
        )


# ----------------------------------------------------------------------
# Intent drawing
# ----------------------------------------------------------------------
def _typing_intent(
    rng: random.Random, backspace_ratio: float, jump_ratio: float
) -> EditIntent:
    """One keystroke of the editing-session model, as an intent.

    Mirrors :meth:`repro.sim.workload.WorkloadGenerator._typing_spec`:
    mostly typing at the cursor, sometimes a backspace over the previous
    character, sometimes a cursor jump (a seeded document fraction)
    followed by typing there.
    """
    roll = rng.random()
    value = rng.choice(ALPHABET)
    if roll < backspace_ratio:
        return EditIntent("del", value, "cursor", step=-1)
    if roll < backspace_ratio + jump_ratio:
        return EditIntent("ins", value, "fraction", draw=rng.random())
    return EditIntent("ins", value, "cursor")


_POSITION_MODES = {
    "cursor": "cursor",
    "start": "start",
    "end": "end",
    "random": "fraction",
}


def resolve_intent(
    intent: EditIntent, cursor: int, length: int
) -> Tuple[OpSpec, int]:
    """Materialise an intent against the live document length.

    Returns the concrete :class:`OpSpec` and the client's new cursor.
    Positions are clamped into validity (concurrent remote edits may
    have shrunk the document since the intent was compiled); a delete
    aimed at an empty document degrades to inserting the intent's
    fallback character, so every op event yields exactly one operation
    and a program's op count is invariant across bindings.
    """
    inserting = intent.kind == "ins"
    limit = length if inserting else length - 1
    if not inserting and limit < 0:
        return OpSpec("ins", 0, intent.value), 1
    if intent.mode == "cursor":
        position = cursor + intent.step
    elif intent.mode == "fraction":
        position = int(round(intent.draw * limit)) if limit > 0 else 0
    elif intent.mode == "start":
        position = 0
    elif intent.mode == "end":
        position = limit
    else:  # pragma: no cover - validated at construction
        raise ValueError(f"unknown intent mode {intent.mode!r}")
    position = max(0, min(limit, position))
    if inserting:
        return OpSpec("ins", position, intent.value), position + 1
    return OpSpec("del", position), position


# ----------------------------------------------------------------------
# Behaviour lowering
# ----------------------------------------------------------------------
def _typed_ops(
    out: List[ClientEvent],
    rng: random.Random,
    begin: float,
    count: int,
    rate: float,
    phase: str,
    backspace_ratio: float = 0.08,
    jump_ratio: float = 0.12,
) -> float:
    tick = begin
    for _ in range(count):
        tick += rng.expovariate(rate)
        out.append(
            ClientEvent(
                tick,
                "op",
                phase,
                _typing_intent(rng, backspace_ratio, jump_ratio),
            )
        )
    return tick


def _lower(
    behaviour: Any,
    rng: random.Random,
    begin: float,
    out: List[ClientEvent],
    phase: str,
) -> float:
    """Append ``behaviour``'s events from ``begin``; return the end time."""
    if isinstance(behaviour, TypingBurst):
        return _typed_ops(
            out,
            rng,
            begin,
            behaviour.ops,
            behaviour.rate,
            phase,
            behaviour.backspace_ratio,
            behaviour.jump_ratio,
        )
    if isinstance(behaviour, (MassPaste, MassDelete)):
        kind = "ins" if isinstance(behaviour, MassPaste) else "del"
        mode = _POSITION_MODES[behaviour.position]
        tick = begin
        step = 1.0 / behaviour.rate
        for index in range(behaviour.length):
            tick += step
            if index == 0:
                # The burst anchors once; the rest walks from the cursor.
                intent = EditIntent(
                    kind, rng.choice(ALPHABET), mode, draw=rng.random()
                )
            else:
                intent = EditIntent(kind, rng.choice(ALPHABET), "cursor")
            out.append(ClientEvent(tick, "op", phase, intent))
        return tick
    if isinstance(behaviour, OfflineChurn):
        tick = _typed_ops(
            out, rng, begin, behaviour.ops_before, behaviour.rate, phase
        )
        off_at = tick + _LINK_GAP
        out.append(ClientEvent(off_at, "offline", phase))
        tick = _typed_ops(
            out, rng, off_at, behaviour.ops_offline, behaviour.rate, phase
        )
        on_at = max(off_at + behaviour.offline_for, tick + _LINK_GAP)
        out.append(ClientEvent(on_at, "online", phase))
        return _typed_ops(
            out, rng, on_at, behaviour.ops_after, behaviour.rate, phase
        )
    if isinstance(behaviour, (LateJoiner, FlashCrowd)):
        return _typed_ops(
            out, rng, begin, behaviour.ops, behaviour.rate, phase
        )
    raise ValueError(f"cannot lower behaviour {behaviour!r}")


def compile_scenario(scenario: Scenario, seed: int) -> ScenarioProgram:
    """Lower ``scenario`` under ``seed`` into a :class:`ScenarioProgram`.

    Pure function of its arguments: phases and clients are walked in
    declaration order and every draw comes from one RNG seeded with
    ``f"{scenario.name}:{seed}"``, so recompilation reproduces the
    program byte-for-byte.
    """
    rng = random.Random(f"{scenario.name}:{seed}")
    events: Dict[str, List[ClientEvent]] = {c: [] for c in scenario.clients}
    joined: set = set()
    spans: List[PhaseSpan] = []
    t = 0.0
    for phase in scenario.phases:
        start = t
        end = start
        behaviours = phase.behaviours
        crowd_index = 0
        for client in scenario.clients:
            behaviour = behaviours.get(client)
            if behaviour is None:
                continue
            begin = start + getattr(behaviour, "start_after", 0.0)
            if isinstance(behaviour, FlashCrowd):
                begin = start + crowd_index * behaviour.stagger
                crowd_index += 1
            elif isinstance(behaviour, LateJoiner):
                begin = start + behaviour.join_at
            if client not in joined:
                events[client].append(ClientEvent(begin, "join", phase.name))
                joined.add(client)
            end = max(end, _lower(behaviour, rng, begin, events[client], phase.name))
        t = end + phase.settle
        spans.append(PhaseSpan(phase.name, start, t))
    return ScenarioProgram(
        scenario=scenario.name,
        seed=seed,
        clients=scenario.clients,
        initial_text=scenario.initial_text,
        events=tuple(
            (client, tuple(events[client])) for client in scenario.clients
        ),
        spans=tuple(spans),
    )
