"""Scenario execution on the real TCP wire runtime.

The same compiled :class:`~repro.scenarios.compile.ScenarioProgram` the
sim binding consumes is driven here against a real
:class:`~repro.net.server.NetServer` and one
:class:`~repro.net.client.NetClient` per roster entry, all inside one
asyncio loop over real localhost sockets (the in-process idiom of
``tests/net/test_net_runtime.py``).  Per-client drivers come from
:func:`repro.net.loadgen.run_scenario_worker`: ``offline`` events sever
the TCP connection abruptly while the user keeps typing into the
disconnected editor, ``online``/``join`` events (re)connect and resync
from the server's write-ahead log.

``time_scale`` compresses or stretches the compiled timeline (0.25 runs
a 4-second scenario in one wall second); event *order* and the
program's op contents are unchanged, so a wire run answers the same
question as the sim run — does the protocol converge under this editing
shape — with real sockets, session frames, and WAL resyncs in the path.

A scenario's ``chaos`` plan (a :class:`~repro.sim.faults.NetChaosPlan`)
interposes an in-process :class:`~repro.net.chaosproxy.ChaosProxy`
between the clients and the server, so byte-level faults ride under the
scenario's editing shape.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List

from repro.common.ids import SERVER_ID
from repro.net.chaosproxy import ChaosProxy
from repro.net.codec import document_signature
from repro.net.loadgen import run_scenario_worker
from repro.net.server import NetServer
from repro.obs import get_obs
from repro.scenarios.compile import compile_scenario
from repro.scenarios.dsl import Scenario
from repro.scenarios.report import LaneEvent, ScenarioRun, latency_summary

#: wall-clock head start every worker gets before scenario time zero,
#: absorbing task spawn jitter so early events are not already late.
_START_SLACK = 0.05


def run_wire_scenario(
    scenario: Scenario,
    seed: int,
    time_scale: float = 1.0,
    timeout: float = 60.0,
    host: str = "127.0.0.1",
) -> ScenarioRun:
    """Compile ``scenario`` under ``seed`` and run it over real TCP."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    program = compile_scenario(scenario, seed)
    total = program.total_ops

    async def _main() -> Dict[str, Any]:
        server = NetServer(
            host, 0, initial_text=scenario.initial_text, quiet=True
        )
        await server.start()
        proxy = None
        port = server.port
        try:
            if scenario.chaos is not None:
                proxy = ChaosProxy(host, server.port, plan=scenario.chaos, host=host)
                await proxy.start()
                port = proxy.port
            started_at = time.monotonic() + _START_SLACK
            started_wall = time.perf_counter()
            reports = await asyncio.gather(
                *(
                    run_scenario_worker(
                        host,
                        port,
                        client,
                        program.events_for(client),
                        expect_total=total,
                        initial_length=len(scenario.initial_text),
                        started_at=started_at,
                        time_scale=time_scale,
                        timeout=timeout,
                        reconnect_seed=seed * 1000 + index,
                    )
                    for index, client in enumerate(program.clients)
                )
            )
            wall = time.perf_counter() - started_wall
            server_signature = document_signature(server.server.document)
            serial = server.server.oracle.last_serial
        finally:
            if proxy is not None:
                # Let the pump tasks notice the clients' closes before the
                # abort, so teardown doesn't spray CancelledError callbacks.
                await asyncio.sleep(0.05)
                await proxy.stop()
            await server.stop()
        return {
            "reports": reports,
            "server_signature": server_signature,
            "serial": serial,
            "wall": wall,
        }

    result = asyncio.run(_main())
    reports: List[Dict[str, Any]] = result["reports"]
    signatures = {r["client"]: r["signature"] for r in reports}
    signatures[SERVER_ID] = result["server_signature"]
    converged = (
        all(r["converged"] for r in reports)
        and len(set(signatures.values())) == 1
    )
    rtt_ms = [sample for r in reports for sample in r["rtt_ms"]]
    lanes = {
        r["client"]: [
            LaneEvent(e["at"], e["kind"], e["phase"]) for e in r["lane"]
        ]
        for r in reports
    }
    # The server's serialisation times are not directly observable from
    # outside; approximate each op's serialisation with its generation
    # time (scenario clock) — enough for the timeline's density lane.
    server_ops = sorted(
        e["at"]
        for r in reports
        for e in r["lane"]
        if e["kind"] == "op"
    )
    run = ScenarioRun(
        scenario=scenario.name,
        seed=seed,
        mode="wire",
        converged=converged,
        signatures=signatures,
        total_ops=sum(r["ops"] for r in reports),
        duration=program.duration,
        wall_seconds=result["wall"],
        latency_ms=latency_summary(rtt_ms),
        latency_kind="rtt",
        lanes=lanes,
        server_ops=server_ops,
        spans=[(s.name, s.start, s.end) for s in program.spans],
        extra={
            "time_scale": time_scale,
            "serial": result["serial"],
            "reconnects": sum(r["reconnects"] for r in reports),
            "resync_on_reconnect": sum(
                r["resync_on_reconnect"] for r in reports
            ),
            "chaos": (
                scenario.chaos.to_obj() if scenario.chaos is not None else None
            ),
            "metrics": get_obs().snapshot(),
        },
    )
    return run
