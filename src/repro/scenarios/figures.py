"""Executable encodings of the paper's figures.

Each scenario bundles the schedule, the participating clients, the initial
document, and the artifacts the paper's figure shows (expected documents,
state-space states, per-replica paths), so both the test-suite and the
benchmark harness regenerate the figure from one source of truth.

Figure-to-schedule notes:

* **Figure 1** — two replicas on ``"efecte"``; ``Ins(f,1)`` and
  ``Del(e,5)`` concurrently; converges to ``"effect"`` with OT.
* **Figure 2 / Figure 4** — three pairwise-concurrent operations, server
  order ``o1 ⇒ o2 ⇒ o3``; every replica ends with the same n-ary ordered
  state-space, walked along different paths (Example 6.2 narrates client
  ``c3``).
* **Figure 6** — the richer schedule of [11, Fig. 2] is not reproduced in
  the paper's text, so we reconstruct a four-operation schedule with the
  same qualitative features: one operation generated from a non-initial
  context and interleaved concurrency across three clients.
* **Figure 7** — the strong-list counterexample: ``o1 = Ins(x,0)`` seen
  by all; then concurrently ``o2 = Del(x,0)``, ``o3 = Ins(a,0)``,
  ``o4 = Ins(b,1)``; intermediate states ``w13 = "ax"`` and
  ``w14 = "xb"``, final state ``"ba"`` — forcing the cyclic list order
  ``{(a,x), (x,b), (b,a)}``.
* **Figure 8** — the running counterexample of an *incorrect* protocol.
  The paper's trace relies on tie-breaking choices of its hypothetical
  protocol; with our transformation functions the same divergence
  (final states ``"ayxc"`` vs ``"axyc"`` from initial ``"abc"``) is
  triggered by the CP2 triple ``Del(b,1) ∥ Ins(x,1) ∥ Ins(y,2)`` under
  the naive receipt-order protocol of :mod:`repro.jupiter.broken`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.jupiter.cluster import Cluster, make_cluster
from repro.model.execution import Execution
from repro.model.schedule import Schedule, ScheduleBuilder


@dataclass(frozen=True)
class FigureScenario:
    """One paper figure as an executable artifact."""

    name: str
    paper_figure: str
    protocol: str
    clients: Tuple[str, ...]
    initial_text: str
    schedule: Schedule
    #: documents every replica must end with ({} = divergence expected).
    expected_final: Dict[str, str] = field(default_factory=dict)
    notes: str = ""


def run_scenario(scenario: FigureScenario) -> Tuple[Cluster, Execution]:
    """Execute a scenario and return the cluster and recorded execution."""
    cluster = make_cluster(
        scenario.protocol,
        list(scenario.clients),
        initial_text=scenario.initial_text,
    )
    execution = cluster.run(scenario.schedule)
    return cluster, execution


# ----------------------------------------------------------------------
# Figure 1: the OT motivation on "efecte"
# ----------------------------------------------------------------------
def figure1(protocol: str = "css") -> FigureScenario:
    schedule = (
        ScheduleBuilder()
        .ins("c1", 1, "f")  # o1 = Ins(f, 1) at R1
        .delete("c2", 5)  # o2 = Del(e, 5) at R2
        .drain()
        .build()
    )
    return FigureScenario(
        name="figure1",
        paper_figure="Figure 1 (a-c)",
        protocol=protocol,
        clients=("c1", "c2"),
        initial_text="efecte",
        schedule=schedule,
        expected_final={"s": "effect", "c1": "effect", "c2": "effect"},
        notes="Del(e,5) transforms to Del(e,6) against the concurrent "
        "Ins(f,1); both replicas reach 'effect'.",
    )


# ----------------------------------------------------------------------
# Figure 2 + Figure 4: three pairwise concurrent operations
# ----------------------------------------------------------------------
def figure2(protocol: str = "css") -> FigureScenario:
    """Server order o1 ⇒ o2 ⇒ o3; c3's deliveries follow Example 6.2."""
    schedule = (
        ScheduleBuilder()
        .ins("c1", 0, "a")  # o1
        .ins("c2", 0, "b")  # o2
        .ins("c3", 0, "c")  # o3
        .server_recv("c1")
        .server_recv("c2")
        .server_recv("c3")
        # FIFO broadcasts now deliver o1, o2, o3 to every client in serial
        # order (each client skips its own echo).
        .drain()
        .build()
    )
    return FigureScenario(
        name="figure2",
        paper_figure="Figure 2 (schedule) + Figure 4 (state-spaces)",
        protocol=protocol,
        clients=("c1", "c2", "c3"),
        initial_text="",
        schedule=schedule,
        expected_final={},  # asserted via state-space structure instead
        notes="All replicas build the same n-ary ordered state-space via "
        "different construction paths (Proposition 6.6 / Example 6.3).",
    )


# ----------------------------------------------------------------------
# Figure 6: the richer reconstructed schedule
# ----------------------------------------------------------------------
def figure6(protocol: str = "css") -> FigureScenario:
    """Four operations; o3 is generated from the non-initial context {o1}.

    Serial order: o1 ⇒ o2 ⇒ o4 ⇒ o3, with o4 a second (pending) operation
    of client c1 and o3 generated by c3 only after it received o1.
    """
    schedule = (
        ScheduleBuilder()
        .ins("c1", 0, "a")  # o1, context {}
        .ins("c1", 1, "d")  # o4, context {o1} — still pending at c1
        .ins("c2", 0, "b")  # o2, context {}
        .server_recv("c1")  # serialises o1  (serial 1)
        .server_recv("c2")  # serialises o2  (serial 2)
        .server_recv("c1")  # serialises o4  (serial 3)
        .client_recv("c3")  # c3 receives o1 ...
        .ins("c3", 1, "c")  # ... and generates o3 with context {o1}
        .server_recv("c3")  # serialises o3  (serial 4)
        .drain()
        .build()
    )
    return FigureScenario(
        name="figure6",
        paper_figure="Figure 6 (reconstructed from [11] Fig. 2)",
        protocol=protocol,
        clients=("c1", "c2", "c3"),
        initial_text="",
        schedule=schedule,
        expected_final={},
        notes="Reconstruction: the original schedule of Xu et al. [11] is "
        "not included in the paper text; this schedule preserves the "
        "qualitative features (non-initial context, pending local "
        "operations, richer concurrency).",
    )


# ----------------------------------------------------------------------
# Figure 7: Jupiter violates the strong list specification
# ----------------------------------------------------------------------
def figure7(protocol: str = "css") -> FigureScenario:
    schedule = (
        ScheduleBuilder()
        .ins("c1", 0, "x")  # o1 = Ins(x, 0)
        .drain()  # everyone sees x
        .delete("c1", 0)  # o2 = Del(x, 0)
        .ins("c2", 0, "a")  # o3 = Ins(a, 0) -> w13 = "ax" at c2
        .ins("c3", 1, "b")  # o4 = Ins(b, 1) -> w14 = "xb" at c3
        .server_recv("c1")
        .server_recv("c2")
        .server_recv("c3")
        .drain()
        .build()
    )
    return FigureScenario(
        name="figure7",
        paper_figure="Figure 7 (Theorem 8.1)",
        protocol=protocol,
        clients=("c1", "c2", "c3"),
        initial_text="",
        schedule=schedule,
        expected_final={"s": "ba", "c1": "ba", "c2": "ba", "c3": "ba"},
        notes="w13='ax', w14='xb' and w1234='ba' force the cyclic list "
        "order {(a,x), (x,b), (b,a)}: the strong list specification "
        "fails while the weak one holds.",
    )


# ----------------------------------------------------------------------
# Figure 8: the incorrect protocol's divergence
# ----------------------------------------------------------------------
def figure8() -> FigureScenario:
    schedule = (
        ScheduleBuilder()
        .delete("c1", 1)  # o1 = Del(b, 1)
        .ins("c2", 1, "x")  # o2 = Ins(x, 1)
        .ins("c3", 2, "y")  # o3 = Ins(y, 2)
        .server_recv("c1")
        .server_recv("c2")
        .server_recv("c3")
        .drain()
        .build()
    )
    return FigureScenario(
        name="figure8",
        paper_figure="Figure 8 (Example 8.1, adapted)",
        protocol="broken",
        clients=("c1", "c2", "c3"),
        initial_text="abc",
        schedule=schedule,
        expected_final={},  # divergence: c1 ends 'ayxc', c2 ends 'axyc'
        notes="The naive receipt-order protocol transforms along "
        "different state-space paths at different clients; CP2 failure "
        "makes the documents diverge into the figure's incompatible "
        "states 'ayxc' / 'axyc'.",
    )
