"""The built-in scenario library: named shapes of interactive editing.

Each entry is one pathological shape from the Jupiter paper's setting,
small enough that a wire run finishes in seconds yet busy enough to
exercise the machinery it names.  ``repro scenario list`` prints this
registry; tests and benchmarks parametrise over it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.faults import NetChaosPlan
from repro.scenarios.dsl import (
    FlashCrowd,
    LateJoiner,
    MassDelete,
    MassPaste,
    OfflineChurn,
    Phase,
    Scenario,
    TypingBurst,
)


def _typing_storm() -> Scenario:
    return Scenario(
        name="typing-storm",
        description=(
            "four users typing concurrently with cursor locality — the "
            "paper's baseline interactive load"
        ),
        clients=("c1", "c2", "c3", "c4"),
        initial_text="the quick brown fox",
        phases=(
            Phase(
                "warmup",
                {
                    "c1": TypingBurst(ops=10, rate=10.0),
                    "c2": TypingBurst(ops=10, rate=10.0),
                },
            ),
            Phase(
                "storm",
                {
                    "c1": TypingBurst(ops=14, rate=14.0),
                    "c2": TypingBurst(ops=14, rate=14.0),
                    "c3": TypingBurst(ops=14, rate=14.0),
                    "c4": TypingBurst(ops=14, rate=14.0),
                },
            ),
        ),
    )


def _paste_bomb() -> Scenario:
    return Scenario(
        name="paste-bomb",
        description=(
            "a mass paste then a mass delete landing while two users keep "
            "typing — the burst shape that grows OT state spaces"
        ),
        clients=("c1", "c2", "c3"),
        initial_text="shared scratchpad",
        phases=(
            Phase(
                "paste",
                {
                    "c1": MassPaste(length=60, rate=150.0, position="end"),
                    "c2": TypingBurst(ops=12, rate=12.0),
                    "c3": TypingBurst(ops=12, rate=12.0),
                },
            ),
            Phase(
                "chop",
                {
                    "c1": MassDelete(length=40, rate=150.0, position="random"),
                    "c2": TypingBurst(ops=10, rate=12.0),
                },
            ),
        ),
    )


def _offline_churn() -> Scenario:
    return Scenario(
        name="offline-churn",
        description=(
            "one user edits through a mid-run disconnect while two stay "
            "online — reconnect resync plus retransmission under load"
        ),
        clients=("c1", "c2", "c3"),
        phases=(
            Phase(
                "churn",
                {
                    "c1": OfflineChurn(
                        ops_before=6,
                        ops_offline=8,
                        ops_after=6,
                        offline_for=1.2,
                        rate=10.0,
                    ),
                    "c2": TypingBurst(ops=16, rate=8.0),
                    "c3": TypingBurst(ops=16, rate=8.0),
                },
                settle=0.6,
            ),
        ),
    )


def _late_joiner() -> Scenario:
    return Scenario(
        name="late-joiner",
        description=(
            "a client joins mid-run against an already-large document and "
            "catches up from the server's history"
        ),
        clients=("c1", "c2", "c3"),
        initial_text="a" * 160,
        phases=(
            Phase(
                "busy",
                {
                    "c1": TypingBurst(ops=16, rate=12.0),
                    "c2": TypingBurst(ops=16, rate=12.0),
                },
            ),
            Phase(
                "join",
                {
                    "c1": TypingBurst(ops=8, rate=10.0),
                    "c3": LateJoiner(join_at=0.8, ops=10, rate=10.0),
                },
                settle=0.6,
            ),
        ),
    )


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash-crowd",
        description=(
            "six clients arrive nearly at once on one hot document and all "
            "start typing — the admission/overload shape"
        ),
        clients=("c1", "c2", "c3", "c4", "c5", "c6"),
        phases=(
            Phase(
                "crowd",
                {
                    name: FlashCrowd(ops=10, rate=12.0, stagger=0.12)
                    for name in ("c1", "c2", "c3", "c4", "c5", "c6")
                },
                settle=0.6,
            ),
        ),
    )


def _churn_under_chaos() -> Scenario:
    return Scenario(
        name="churn-under-chaos",
        description=(
            "offline churn plus typing while a seeded chaos proxy delays "
            "and jitters every byte (wire mode; sim mode runs the same "
            "program over its lossless channels)"
        ),
        clients=("c1", "c2", "c3"),
        initial_text="chaos notes",
        chaos=NetChaosPlan(seed=5, latency=0.01, jitter=0.015),
        phases=(
            Phase(
                "churn",
                {
                    "c1": OfflineChurn(
                        ops_before=5,
                        ops_offline=6,
                        ops_after=5,
                        offline_for=1.0,
                        rate=10.0,
                    ),
                    "c2": TypingBurst(ops=14, rate=10.0),
                    "c3": MassPaste(length=30, rate=100.0, position="start",
                                    start_after=0.4),
                },
                settle=0.8,
            ),
        ),
    )


_FACTORIES = (
    _typing_storm,
    _paste_bomb,
    _offline_churn,
    _late_joiner,
    _flash_crowd,
    _churn_under_chaos,
)

#: name -> scenario, in library order.
LIBRARY: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (factory() for factory in _FACTORIES)
}


def scenario_names() -> List[str]:
    return list(LIBRARY)


def get_scenario(name: str) -> Scenario:
    try:
        return LIBRARY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown scenario {name!r}; library has: {known}"
        ) from None
