"""Worked scenarios from the paper, one per figure."""

from repro.scenarios.figures import (
    FigureScenario,
    figure1,
    figure2,
    figure6,
    figure7,
    figure8,
    run_scenario,
)

__all__ = [
    "FigureScenario",
    "figure1",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "run_scenario",
]
