"""Scenarios: the paper's worked figures plus the workload engine.

Two kinds of scenario live here.  :mod:`repro.scenarios.figures` holds
the paper's worked examples, one per figure.  The rest of the package
is the scenario *engine*: a declarative DSL of interactive-editing
shapes (:mod:`~repro.scenarios.dsl`), a deterministic compiler to timed
per-client op programs (:mod:`~repro.scenarios.compile`), dual
execution bindings against the simulated event loop
(:mod:`~repro.scenarios.simbind`) and the real TCP runtime
(:mod:`~repro.scenarios.wirebind`), and a timeline renderer
(:mod:`~repro.scenarios.timeline`) — surfaced as the
``repro scenario list|run|render`` CLI verbs.
"""

from repro.scenarios.compile import (
    ClientEvent,
    EditIntent,
    ScenarioProgram,
    compile_scenario,
    resolve_intent,
)
from repro.scenarios.dsl import (
    FlashCrowd,
    LateJoiner,
    MassDelete,
    MassPaste,
    OfflineChurn,
    Phase,
    Scenario,
    TypingBurst,
)
from repro.scenarios.figures import (
    FigureScenario,
    figure1,
    figure2,
    figure6,
    figure7,
    figure8,
    run_scenario,
)
from repro.scenarios.library import LIBRARY, get_scenario, scenario_names
from repro.scenarios.report import LaneEvent, ScenarioRun
from repro.scenarios.simbind import SimScenarioOutcome, run_sim_scenario
from repro.scenarios.timeline import render_html, render_timeline
from repro.scenarios.wirebind import run_wire_scenario

__all__ = [
    "FigureScenario",
    "figure1",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "run_scenario",
    "Scenario",
    "Phase",
    "TypingBurst",
    "MassPaste",
    "MassDelete",
    "OfflineChurn",
    "LateJoiner",
    "FlashCrowd",
    "EditIntent",
    "ClientEvent",
    "ScenarioProgram",
    "compile_scenario",
    "resolve_intent",
    "LIBRARY",
    "get_scenario",
    "scenario_names",
    "LaneEvent",
    "ScenarioRun",
    "SimScenarioOutcome",
    "run_sim_scenario",
    "run_wire_scenario",
    "render_timeline",
    "render_html",
]
