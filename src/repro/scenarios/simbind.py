"""Scenario execution on the simulated event loop.

This mirrors the reliable path of
:class:`~repro.sim.runner.SimulationRunner` — heap of timed events,
FIFO channels via :class:`~repro.sim.network.FifoChannelTimer`, every
protocol step recorded into a replayable
:class:`~repro.model.schedule.Schedule` — but drives a compiled
:class:`~repro.scenarios.compile.ScenarioProgram` instead of a uniform
random workload, and adds *link state*: a client that is offline keeps
generating (the user types into a disconnected editor) while its
outbound messages and the server's broadcasts to it are held, then
flushed in FIFO order when it reconnects.  A client is offline until
its ``join`` event, which is how late joiners and flash-crowd arrivals
are modelled without the wire runtime's session machinery.

The recorded schedule contains each protocol step exactly once, in
delivered order, so it replays on a fresh cluster — the scenario twin
of the chaos harness's Theorem 7.1 check.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import time as _time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import SERVER_ID
from repro.errors import SimulationError
from repro.jupiter.cluster import Cluster, make_cluster
from repro.model.execution import Execution
from repro.model.schedule import (
    ClientReceive,
    Generate,
    Read,
    Schedule,
    ServerReceive,
)
from repro.scenarios.compile import (
    ScenarioProgram,
    compile_scenario,
    resolve_intent,
)
from repro.scenarios.dsl import Scenario
from repro.scenarios.report import LaneEvent, ScenarioRun, latency_summary
from repro.sim.network import FifoChannelTimer, LatencyModel, UniformLatency


def _signature(machine: Any) -> str:
    """Identity-carrying digest of a replica's document.

    CSS replicas hold a :class:`~repro.document.ListDocument`, hashed by
    :func:`repro.net.codec.document_signature` (value *and* element
    identity).  Protocols with other document types fall back to a
    digest of the text — still enough for the convergence check.
    """
    try:
        from repro.net.codec import document_signature

        return document_signature(machine.document)
    except (AttributeError, TypeError):
        text = machine.document.as_string()
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class SimScenarioOutcome:
    """A sim-bound run plus the replay-grade artifacts it recorded."""

    run: ScenarioRun
    program: ScenarioProgram
    cluster: Cluster
    execution: Execution
    schedule: Schedule


def run_sim_scenario(
    scenario: Scenario,
    seed: int,
    protocol: str = "css",
    latency: Optional[LatencyModel] = None,
) -> SimScenarioOutcome:
    """Compile ``scenario`` under ``seed`` and run it in simulated time."""
    program = compile_scenario(scenario, seed)
    model = latency or UniformLatency(*scenario.latency, seed=seed)
    clients = list(program.clients)
    cluster = make_cluster(
        protocol, clients, initial_text=scenario.initial_text
    )
    timer = FifoChannelTimer()
    steps: List[Any] = []
    counter = itertools.count()
    heap: List[Tuple[float, int, Tuple]] = []

    for client, events in program.events:
        for event in events:
            heapq.heappush(heap, (event.at, next(counter), ("ev", client, event)))

    online: Dict[str, bool] = {c: False for c in clients}
    held_to_server: Dict[str, int] = {c: 0 for c in clients}
    held_to_client: Dict[str, int] = {c: 0 for c in clients}
    cursors: Dict[str, int] = {
        c: len(scenario.initial_text) for c in clients
    }
    lanes: Dict[str, List[LaneEvent]] = {c: [] for c in clients}
    server_ops: List[float] = []
    generated_at: Dict[Any, float] = {}
    applied_at: Dict[Tuple[Any, str], float] = {}
    delivered = 0
    started_wall = _time.perf_counter()

    def push(at: float, item: Tuple) -> None:
        heapq.heappush(heap, (at, next(counter), item))

    now = 0.0
    while heap:
        now, _, action = heapq.heappop(heap)
        kind = action[0]
        if kind == "ev":
            client, event = action[1], action[2]
            if event.kind == "op":
                length = len(cluster.clients[client].document)
                spec, cursors[client] = resolve_intent(
                    event.intent, cursors[client], length
                )
                cluster.generate(client, spec)
                generated_at[cluster.behaviors[client][-1].opid] = now
                steps.append(Generate(client, spec))
                lanes[client].append(LaneEvent(now, "op", event.phase))
                if online[client]:
                    arrival = timer.delivery_time(model, client, SERVER_ID, now)
                    push(arrival, ("srv", client))
                else:
                    held_to_server[client] += 1
            elif event.kind in ("join", "online"):
                online[client] = True
                lanes[client].append(LaneEvent(now, event.kind, event.phase))
                # Flush both directions in FIFO order: the timer's
                # per-channel last-delivery state keeps arrivals ordered.
                for _ in range(held_to_server[client]):
                    arrival = timer.delivery_time(model, client, SERVER_ID, now)
                    push(arrival, ("srv", client))
                held_to_server[client] = 0
                for _ in range(held_to_client[client]):
                    arrival = timer.delivery_time(model, SERVER_ID, client, now)
                    push(arrival, ("cli", client))
                held_to_client[client] = 0
            elif event.kind == "offline":
                online[client] = False
                lanes[client].append(LaneEvent(now, "offline", event.phase))
            else:  # pragma: no cover - compiler emits no other kinds
                raise SimulationError(f"unknown scenario event {event!r}")
        elif kind == "srv":
            client = action[1]
            before = {
                name: cluster.pending_to_client(name) for name in clients
            }
            cluster.server_receive(client)
            steps.append(ServerReceive(client))
            server_ops.append(now)
            for name in clients:
                newly_queued = cluster.pending_to_client(name) - before[name]
                for _ in range(newly_queued):
                    if online[name]:
                        arrival = timer.delivery_time(
                            model, SERVER_ID, name, now
                        )
                        push(arrival, ("cli", name))
                    else:
                        held_to_client[name] += 1
        elif kind == "cli":
            client = action[1]
            cluster.client_receive(client)
            steps.append(ClientReceive(client))
            delivered += 1
            last = cluster.behaviors[client][-1]
            if last.action == "apply" and last.opid is not None:
                applied_at[(last.opid, client)] = now
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown simulation action {action!r}")

    if any(held_to_server.values()) or any(held_to_client.values()):
        raise SimulationError(
            "scenario ended with messages held for an offline client; "
            "every offline window must close with an online event"
        )
    if cluster.in_flight():
        raise SimulationError(
            f"{cluster.in_flight()} messages still in flight after the "
            "scenario event loop drained; FIFO timing is broken"
        )

    for replica in [*sorted(cluster.clients), SERVER_ID]:
        cluster.read(replica)
        steps.append(Read(replica))

    wall = _time.perf_counter() - started_wall
    documents = cluster.documents()
    signatures = {name: _signature(cluster.clients[name]) for name in clients}
    signatures[SERVER_ID] = _signature(cluster.server)
    converged = (
        len(set(documents.values())) == 1
        and len(set(signatures.values())) == 1
    )
    propagation_ms = [
        (when - generated_at[opid]) * 1000.0
        for (opid, _replica), when in applied_at.items()
        if opid in generated_at
    ]
    run = ScenarioRun(
        scenario=scenario.name,
        seed=seed,
        mode="sim",
        converged=converged,
        signatures=signatures,
        total_ops=program.total_ops,
        duration=now,
        wall_seconds=wall,
        latency_ms=latency_summary(propagation_ms),
        latency_kind="propagation",
        lanes=lanes,
        server_ops=server_ops,
        spans=[(s.name, s.start, s.end) for s in program.spans],
        extra={
            "protocol": protocol,
            "messages_delivered": delivered,
            "document_length": len(documents[SERVER_ID]),
        },
    )
    return SimScenarioOutcome(
        run=run,
        program=program,
        cluster=cluster,
        execution=cluster.recorder.finish(),
        schedule=Schedule(steps),
    )
