"""The common run record both execution bindings produce.

A :class:`ScenarioRun` is everything the timeline renderer (and the
CLI's JSON output) needs: the convergence verdict, per-replica document
signatures, latency percentiles, and per-client lanes of timestamped
events.  Both :mod:`repro.scenarios.simbind` and
:mod:`repro.scenarios.wirebind` emit the same shape, which is the
dual-execution contract — a saved run renders identically regardless of
which runtime produced it.

Lane event times are in *scenario seconds* (compiled-program time), so
sim and wire runs of the same program line up column for column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank (loadgen's convention)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def latency_summary(samples_ms: List[float]) -> Dict[str, float]:
    """p50/p90/p99 of a millisecond sample list, rounded for JSON."""
    return {
        "p50": round(percentile(samples_ms, 0.50), 3),
        "p90": round(percentile(samples_ms, 0.90), 3),
        "p99": round(percentile(samples_ms, 0.99), 3),
        "samples": len(samples_ms),
    }


@dataclass(frozen=True)
class LaneEvent:
    """One timestamped mark on a client's (or the server's) lane."""

    at: float
    kind: str  # "op" | "join" | "offline" | "online"
    phase: str = ""

    def to_obj(self) -> Dict[str, Any]:
        return {"at": round(self.at, 6), "kind": self.kind, "phase": self.phase}

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "LaneEvent":
        return cls(at=obj["at"], kind=obj["kind"], phase=obj.get("phase", ""))


@dataclass
class ScenarioRun:
    """One executed scenario, in renderer-ready form."""

    scenario: str
    seed: int
    mode: str  # "sim" | "wire"
    converged: bool
    signatures: Dict[str, str]
    total_ops: int
    duration: float  # scenario seconds (sim time / scaled wire time)
    wall_seconds: float
    latency_ms: Dict[str, float]
    latency_kind: str  # "propagation" (sim) | "rtt" (wire)
    lanes: Dict[str, List[LaneEvent]]
    server_ops: List[float]
    spans: List[Tuple[str, float, float]]
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def signatures_identical(self) -> bool:
        return len(set(self.signatures.values())) == 1

    def to_obj(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "mode": self.mode,
            "converged": self.converged,
            "signatures": dict(self.signatures),
            "signatures_identical": self.signatures_identical,
            "total_ops": self.total_ops,
            "duration": round(self.duration, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "latency_ms": dict(self.latency_ms),
            "latency_kind": self.latency_kind,
            "lanes": {
                client: [event.to_obj() for event in events]
                for client, events in self.lanes.items()
            },
            "server_ops": [round(t, 6) for t in self.server_ops],
            "spans": [
                {"name": name, "start": start, "end": end}
                for name, start, end in self.spans
            ],
            "extra": self.extra,
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "ScenarioRun":
        return cls(
            scenario=obj["scenario"],
            seed=obj["seed"],
            mode=obj["mode"],
            converged=obj["converged"],
            signatures=dict(obj["signatures"]),
            total_ops=obj["total_ops"],
            duration=obj["duration"],
            wall_seconds=obj.get("wall_seconds", 0.0),
            latency_ms=dict(obj["latency_ms"]),
            latency_kind=obj.get("latency_kind", "propagation"),
            lanes={
                client: [LaneEvent.from_obj(e) for e in events]
                for client, events in obj["lanes"].items()
            },
            server_ops=list(obj.get("server_ops", [])),
            spans=[
                (s["name"], s["start"], s["end"]) for s in obj.get("spans", [])
            ],
            extra=dict(obj.get("extra", {})),
        )
