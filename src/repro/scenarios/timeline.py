"""Timeline rendering: one lane per client, aligned on scenario time.

The ASCII renderer (in the style of cellpainter's timing matrix) maps
the run's scenario clock onto a fixed-width column grid.  Each client
lane shows op density (``.`` one edit in the column, ``:`` two, ``#``
three or more — ``*`` when the edits happened offline), link events
(``>`` join, ``x`` drop, ``+`` reconnect) and offline windows
(``-``).  A server lane shows serialisation density, a phase ruler
shows where each phase sits, and the header carries the verdict and
latency percentiles.

:func:`render_html` emits the same lanes as one self-contained HTML
page (inline CSS, no external assets) for when a run is easier to read
zoomed and scrolled than monospaced.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List

from repro.scenarios.report import LaneEvent, ScenarioRun

_DENSITY = {1: ".", 2: ":"}
_DENSITY_OFFLINE = {1: "*", 2: "*"}


def _column(at: float, span: float, width: int) -> int:
    if span <= 0:
        return 0
    return max(0, min(width - 1, int(at / span * width)))


def _density_row(
    times: List[float], span: float, width: int, offline_cols=None
) -> List[str]:
    row = [" "] * width
    counts: Dict[int, int] = {}
    for at in times:
        col = _column(at, span, width)
        counts[col] = counts.get(col, 0) + 1
    for col, count in counts.items():
        table = (
            _DENSITY_OFFLINE
            if offline_cols is not None and col in offline_cols
            else _DENSITY
        )
        row[col] = table.get(count, "*" if offline_cols and col in offline_cols else "#")
    return row


def _lane_row(
    events: List[LaneEvent], span: float, width: int
) -> tuple:
    """Render one client lane; returns (chars, op count, offline seconds)."""
    row = [" "] * width
    offline_cols: set = set()
    offline_seconds = 0.0
    # Pass 1: offline windows (so op density can overwrite the dashes).
    offline_from = None
    for event in events:
        if event.kind == "offline":
            offline_from = event.at
        elif event.kind == "online" and offline_from is not None:
            offline_seconds += event.at - offline_from
            lo = _column(offline_from, span, width)
            hi = _column(event.at, span, width)
            for col in range(lo, hi + 1):
                row[col] = "-"
                offline_cols.add(col)
            offline_from = None
    # Pass 2: op density.
    ops = [e.at for e in events if e.kind == "op"]
    for col, char in enumerate(_density_row(ops, span, width, offline_cols)):
        if char != " ":
            row[col] = char
    # Pass 3: link markers win over everything.
    for event in events:
        if event.kind == "join":
            row[_column(event.at, span, width)] = ">"
        elif event.kind == "offline":
            row[_column(event.at, span, width)] = "x"
        elif event.kind == "online":
            row[_column(event.at, span, width)] = "+"
    return row, len(ops), offline_seconds


def _phase_ruler(run: ScenarioRun, span: float, width: int) -> str:
    row = [" "] * width
    for name, start, end in run.spans:
        lo = _column(start, span, width)
        hi = _column(end, span, width)
        row[lo] = "|"
        label = name[: max(0, hi - lo - 1)]
        for offset, char in enumerate(label):
            if lo + 1 + offset < width:
                row[lo + 1 + offset] = char
    return "".join(row)


def render_timeline(run: ScenarioRun, width: int = 72) -> str:
    """The aligned-ASCII timeline of one :class:`ScenarioRun`."""
    if width < 20:
        raise ValueError("timeline width must be at least 20 columns")
    span = max(run.duration, 1e-9)
    verdict = "converged" if run.converged else "DIVERGED"
    latency = run.latency_ms
    lines = [
        f"scenario {run.scenario}  mode {run.mode}  seed {run.seed}  "
        f"{verdict}",
        f"{run.total_ops} ops over {run.duration:.2f}s (scenario time), "
        f"wall {run.wall_seconds:.2f}s; {run.latency_kind} latency "
        f"p50={latency.get('p50', 0):.1f}ms "
        f"p90={latency.get('p90', 0):.1f}ms "
        f"p99={latency.get('p99', 0):.1f}ms",
    ]
    name_width = max(
        [len(str(c)) for c in run.lanes] + [len("server"), len("phase")]
    )
    lines.append(f"{'phase':>{name_width}} {_phase_ruler(run, span, width)}")
    for client in run.lanes:
        row, ops, offline_seconds = _lane_row(run.lanes[client], span, width)
        annotation = f" {ops} ops"
        if offline_seconds > 0:
            annotation += f", offline {offline_seconds:.2f}s"
        lines.append(f"{client:>{name_width}} {''.join(row)}{annotation}")
    server_row = _density_row(run.server_ops, span, width)
    lines.append(
        f"{'server':>{name_width}} {''.join(server_row)} "
        f"{len(run.server_ops)} serialized"
    )
    lines.append(
        f"{'':>{name_width}} legend: > join  x drop  + reconnect  "
        f"- offline  .:# edit density  * offline edits"
    )
    return "\n".join(lines)


def render_html(run: ScenarioRun) -> str:
    """The same lanes as one self-contained HTML page."""
    span = max(run.duration, 1e-9)

    def pct(at: float) -> float:
        return max(0.0, min(100.0, at / span * 100.0))

    lane_markup: List[str] = []
    for name, start, end in run.spans:
        left, right = pct(start), pct(end)
        lane_markup.append(
            f'<div class="phase" style="left:{left:.2f}%;'
            f'width:{max(right - left, 0.5):.2f}%">'
            f"{_html.escape(name)}</div>"
        )
    phase_row = f'<div class="lane phases">{"".join(lane_markup)}</div>'

    rows = [phase_row]
    lanes = dict(run.lanes)
    lanes["server"] = [LaneEvent(at, "op") for at in run.server_ops]
    for client, events in lanes.items():
        marks: List[str] = []
        offline_from = None
        for event in events:
            if event.kind == "offline":
                offline_from = event.at
            elif event.kind == "online" and offline_from is not None:
                left, right = pct(offline_from), pct(event.at)
                marks.append(
                    f'<div class="offline" style="left:{left:.2f}%;'
                    f'width:{max(right - left, 0.3):.2f}%"></div>'
                )
                offline_from = None
        for event in events:
            css = {"op": "op", "join": "join", "offline": "drop",
                   "online": "rejoin"}.get(event.kind, "op")
            marks.append(
                f'<div class="{css}" style="left:{pct(event.at):.2f}%" '
                f'title="{event.kind} @ {event.at:.3f}s"></div>'
            )
        rows.append(
            f'<div class="row"><span class="name">{_html.escape(str(client))}'
            f'</span><div class="lane">{"".join(marks)}</div></div>'
        )

    verdict = "converged" if run.converged else "DIVERGED"
    latency = run.latency_ms
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>scenario {_html.escape(run.scenario)} ({run.mode})</title>
<style>
body {{ font-family: ui-monospace, monospace; margin: 2em; background: #fafafa; }}
h1 {{ font-size: 1.1em; }}
.meta {{ color: #555; margin-bottom: 1em; }}
.row {{ display: flex; align-items: center; margin: 4px 0; }}
.name {{ width: 6em; text-align: right; padding-right: 0.8em; color: #333; }}
.lane {{ position: relative; flex: 1; height: 18px; background: #eef;
         border: 1px solid #ccd; }}
.lane.phases {{ margin-left: 6.8em; background: none; border: none; height: 16px; }}
.phase {{ position: absolute; top: 0; height: 14px; font-size: 11px;
          border-left: 1px solid #999; padding-left: 3px; color: #666;
          overflow: hidden; white-space: nowrap; }}
.op {{ position: absolute; top: 4px; width: 2px; height: 10px; background: #36c; }}
.join {{ position: absolute; top: 0; width: 3px; height: 18px; background: #2a2; }}
.drop {{ position: absolute; top: 0; width: 3px; height: 18px; background: #c33; }}
.rejoin {{ position: absolute; top: 0; width: 3px; height: 18px; background: #f90; }}
.offline {{ position: absolute; top: 0; height: 18px; background: #fdd; }}
</style></head><body>
<h1>scenario {_html.escape(run.scenario)} &middot; mode {run.mode} &middot;
seed {run.seed} &middot; {verdict}</h1>
<div class="meta">{run.total_ops} ops over {run.duration:.2f}s scenario time
(wall {run.wall_seconds:.2f}s) &middot; {_html.escape(run.latency_kind)}
latency p50={latency.get("p50", 0):.1f}ms p90={latency.get("p90", 0):.1f}ms
p99={latency.get("p99", 0):.1f}ms</div>
{"".join(rows)}
</body></html>
"""
