"""The scenario DSL: declarative interactive-editing workloads.

Every load driven so far — :mod:`repro.sim.workload`, ``repro loadgen``,
``repro fleet loadgen`` — is a uniform seeded edit stream.  The paper's
setting is *interactive editing*, whose pathological shapes are not
uniform at all: typing bursts with cursor locality, a mass paste or
mass delete landing in one instant, a user editing offline and
reconnecting with a backlog, a late joiner resyncing a large document,
a flash crowd arriving on one hot document.  This module gives those
shapes names.

A :class:`Scenario` is pure data: a roster of clients, a sequence of
:class:`Phase`\\ s, and per-phase *behaviours* assigned to clients.
Behaviours are small frozen dataclasses (:class:`TypingBurst`,
:class:`MassPaste`, :class:`MassDelete`, :class:`OfflineChurn`,
:class:`LateJoiner`, :class:`FlashCrowd`); none of them contains an
operation — the deterministic lowering to a timed per-client op program
happens in :mod:`repro.scenarios.compile`, parameterised by a seed.

Fault hooks reuse the plans of :mod:`repro.sim.faults`: ``latency``
bounds feed the simulated network's :class:`~repro.sim.network.UniformLatency`,
and ``chaos`` carries a :class:`~repro.sim.faults.NetChaosPlan` that the
wire binding interposes as a real TCP chaos proxy.

Like :class:`~repro.sim.faults.NetChaosPlan`, every type here round-trips
through plain JSON objects (``to_obj``/``from_obj``) so scenarios can be
stored in files and shipped across processes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.sim.faults import NetChaosPlan

#: behaviour kind -> dataclass, filled by :func:`_behaviour`.
BEHAVIOUR_TYPES: Dict[str, type] = {}


def _behaviour(cls: type) -> type:
    """Register a behaviour dataclass under its ``kind`` for JSON dispatch."""
    BEHAVIOUR_TYPES[cls.kind] = cls
    return cls


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


# ----------------------------------------------------------------------
# Behaviours
# ----------------------------------------------------------------------
@_behaviour
@dataclass(frozen=True)
class TypingBurst:
    """Interactive typing at a sticky cursor (the paper's baseline user).

    ``ops`` keystrokes with exponential inter-arrival times at ``rate``
    per second; each keystroke follows the editing-session model of
    :meth:`repro.sim.workload.WorkloadGenerator._typing_spec` — mostly
    typing at the cursor, occasionally a backspace or a cursor jump.
    """

    kind = "typing_burst"
    ops: int = 20
    rate: float = 8.0
    backspace_ratio: float = 0.08
    jump_ratio: float = 0.12
    start_after: float = 0.0  # seconds into the phase the burst begins

    def __post_init__(self) -> None:
        _positive("ops", self.ops)
        _positive("rate", self.rate)
        _non_negative("start_after", self.start_after)
        if not 0 <= self.backspace_ratio <= 1 or not 0 <= self.jump_ratio <= 1:
            raise ValueError("backspace/jump ratios must be in [0, 1]")
        if self.backspace_ratio + self.jump_ratio > 1:
            raise ValueError("backspace_ratio + jump_ratio must be <= 1")


@_behaviour
@dataclass(frozen=True)
class MassPaste:
    """One paste burst: ``length`` characters landing almost at once.

    ``position`` anchors the paste — ``cursor`` (wherever the client's
    cursor is), ``start``, ``end``, or ``random`` (a seeded draw) — and
    subsequent characters insert left-to-right from the anchor.
    """

    kind = "mass_paste"
    length: int = 48
    rate: float = 120.0  # characters per second inside the burst
    position: str = "cursor"  # cursor | start | end | random
    start_after: float = 0.0

    def __post_init__(self) -> None:
        _positive("length", self.length)
        _positive("rate", self.rate)
        _non_negative("start_after", self.start_after)
        if self.position not in ("cursor", "start", "end", "random"):
            raise ValueError(f"unknown paste position {self.position!r}")


@_behaviour
@dataclass(frozen=True)
class MassDelete:
    """One delete burst: ``length`` characters removed almost at once."""

    kind = "mass_delete"
    length: int = 32
    rate: float = 120.0
    position: str = "cursor"  # cursor | start | end | random
    start_after: float = 0.0

    def __post_init__(self) -> None:
        _positive("length", self.length)
        _positive("rate", self.rate)
        _non_negative("start_after", self.start_after)
        if self.position not in ("cursor", "start", "end", "random"):
            raise ValueError(f"unknown delete position {self.position!r}")


@_behaviour
@dataclass(frozen=True)
class OfflineChurn:
    """Edit, go offline, keep editing, reconnect with a backlog.

    The client types ``ops_before`` keystrokes, drops its link, types
    ``ops_offline`` more while disconnected (buffered locally), comes
    back after ``offline_for`` seconds, and types ``ops_after`` to
    confirm the resynced session still works.  Under the wire runtime
    this exercises the hello/welcome WAL resync and the retransmission
    of the client's own unacknowledged frames.
    """

    kind = "offline_churn"
    ops_before: int = 6
    ops_offline: int = 8
    ops_after: int = 6
    offline_for: float = 1.5
    rate: float = 8.0

    def __post_init__(self) -> None:
        _positive("ops_before", self.ops_before)
        _positive("ops_offline", self.ops_offline)
        _non_negative("ops_after", self.ops_after)
        _positive("offline_for", self.offline_for)
        _positive("rate", self.rate)


@_behaviour
@dataclass(frozen=True)
class LateJoiner:
    """Join ``join_at`` seconds into the phase, then type ``ops`` keystrokes.

    Against a large ``initial_text`` (or after busy earlier phases) this
    is the catch-up case: the wire client's first hello resyncs the whole
    missed history from the server's write-ahead log.
    """

    kind = "late_joiner"
    join_at: float = 1.5
    ops: int = 12
    rate: float = 8.0

    def __post_init__(self) -> None:
        _positive("join_at", self.join_at)
        _positive("ops", self.ops)
        _positive("rate", self.rate)


@_behaviour
@dataclass(frozen=True)
class FlashCrowd:
    """A crowd arrives nearly at once on one hot document and types.

    Clients assigned this behaviour in the same phase join ``stagger``
    seconds apart (in roster order) and each types ``ops`` keystrokes.
    """

    kind = "flash_crowd"
    ops: int = 12
    rate: float = 12.0
    stagger: float = 0.08

    def __post_init__(self) -> None:
        _positive("ops", self.ops)
        _positive("rate", self.rate)
        _non_negative("stagger", self.stagger)


Behaviour = Union[
    TypingBurst, MassPaste, MassDelete, OfflineChurn, LateJoiner, FlashCrowd
]


def behaviour_to_obj(behaviour: Behaviour) -> Dict[str, Any]:
    return {"kind": behaviour.kind, **asdict(behaviour)}


def behaviour_from_obj(obj: Mapping[str, Any]) -> Behaviour:
    data = dict(obj)
    kind = data.pop("kind", None)
    cls = BEHAVIOUR_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown behaviour kind {kind!r}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {kind} fields {sorted(unknown)}")
    return cls(**data)


# ----------------------------------------------------------------------
# Phases and scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase:
    """One named stretch of a scenario: behaviours assigned to clients.

    ``assignments`` maps client name to behaviour (a mapping is
    normalised to a sorted tuple of pairs so phases stay hashable).  A
    phase ends when its slowest behaviour finishes, plus ``settle``
    quiet seconds for in-flight broadcasts to land before the next
    phase begins.
    """

    name: str
    assignments: Any
    settle: float = 0.4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase needs a name")
        _non_negative("settle", self.settle)
        raw = self.assignments
        if isinstance(raw, Mapping):
            raw = tuple(sorted(raw.items()))
        else:
            raw = tuple((client, behaviour) for client, behaviour in raw)
        if not raw:
            raise ValueError(f"phase {self.name!r} assigns no behaviours")
        seen = set()
        for client, behaviour in raw:
            if client in seen:
                raise ValueError(
                    f"phase {self.name!r} assigns {client!r} twice"
                )
            seen.add(client)
            if type(behaviour) not in BEHAVIOUR_TYPES.values():
                raise ValueError(
                    f"phase {self.name!r}: {behaviour!r} is not a behaviour"
                )
        object.__setattr__(self, "assignments", raw)

    @property
    def behaviours(self) -> Dict[str, Behaviour]:
        return dict(self.assignments)

    def to_obj(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "settle": self.settle,
            "behaviours": {
                client: behaviour_to_obj(behaviour)
                for client, behaviour in self.assignments
            },
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "Phase":
        return cls(
            name=obj["name"],
            settle=obj.get("settle", 0.4),
            assignments={
                client: behaviour_from_obj(b)
                for client, b in obj["behaviours"].items()
            },
        )


@dataclass(frozen=True)
class Scenario:
    """A complete declarative workload: clients, phases, environment.

    ``latency`` bounds the simulated network's propagation delay (the
    sim binding draws uniformly from the range, seeded); ``chaos``
    optionally interposes a seeded TCP chaos proxy under the wire
    binding — the same :class:`~repro.sim.faults.NetChaosPlan` the
    chaos-net suite uses.
    """

    name: str
    clients: Tuple[str, ...]
    phases: Tuple[Phase, ...]
    initial_text: str = ""
    description: str = ""
    latency: Tuple[float, float] = (0.02, 0.08)
    chaos: Optional[NetChaosPlan] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(self, "clients", tuple(self.clients))
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(
            self, "latency", (float(self.latency[0]), float(self.latency[1]))
        )
        if not self.clients:
            raise ValueError(f"scenario {self.name!r} has no clients")
        if len(set(self.clients)) != len(self.clients):
            raise ValueError(f"scenario {self.name!r} repeats a client name")
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        low, high = self.latency
        if low <= 0 or high < low:
            raise ValueError(f"invalid latency range {self.latency!r}")
        roster = set(self.clients)
        seen_active: set = set()
        for phase in self.phases:
            for client, behaviour in phase.assignments:
                if client not in roster:
                    raise ValueError(
                        f"phase {phase.name!r} assigns unknown client "
                        f"{client!r}"
                    )
                if isinstance(behaviour, LateJoiner) and client in seen_active:
                    raise ValueError(
                        f"phase {phase.name!r}: {client!r} cannot late-join "
                        "after already being active"
                    )
                seen_active.add(client)
        idle = roster - seen_active
        if idle:
            raise ValueError(
                f"scenario {self.name!r}: clients {sorted(idle)} are never "
                "assigned a behaviour"
            )

    def to_obj(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "clients": list(self.clients),
            "initial_text": self.initial_text,
            "latency": list(self.latency),
            "chaos": self.chaos.to_obj() if self.chaos is not None else None,
            "phases": [phase.to_obj() for phase in self.phases],
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "Scenario":
        chaos = obj.get("chaos")
        return cls(
            name=obj["name"],
            description=obj.get("description", ""),
            clients=tuple(obj["clients"]),
            initial_text=obj.get("initial_text", ""),
            latency=tuple(obj.get("latency", (0.02, 0.08))),
            chaos=NetChaosPlan.from_obj(chaos) if chaos else None,
            phases=tuple(Phase.from_obj(p) for p in obj["phases"]),
        )
