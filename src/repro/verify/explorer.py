"""Exhaustive schedule exploration for client/server protocols.

Fix a *script*: for each client, the ordered list of operations it will
generate (as :class:`~repro.model.schedule.OpSpec`, interpreted against
its live document).  The explorer enumerates every schedule consistent
with the protocol's rules — a client generates its next scripted
operation at any time; the server receives from any non-empty channel;
a client receives any queued broadcast — which, with FIFO channels,
covers **all** reachable executions of that script.

Every complete (quiescent) run is checked: all replicas converged, the
convergence property, and the weak list specification; optionally the
strong list specification is *surveyed* (counted, not asserted — for
Jupiter it legitimately fails on some schedules, and the survey measures
how often).

Complexity is factorial in the event count, so this is for small
instances (e.g. 3 clients × 1 op ≈ 10⁴ runs); the point is completeness,
not scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jupiter.cluster import make_cluster
from repro.model.schedule import (
    ClientReceive,
    Generate,
    OpSpec,
    Schedule,
    ServerReceive,
    Step,
)
from repro.sim.trace import check_all_specs

Script = Dict[str, Sequence[OpSpec]]


@dataclass
class ExplorationReport:
    """Aggregate outcome of one exhaustive exploration."""

    protocol: str
    runs: int = 0
    truncated: bool = False
    divergent: int = 0
    convergence_violations: int = 0
    weak_violations: int = 0
    strong_violations: int = 0
    distinct_finals: Dict[str, int] = field(default_factory=dict)
    first_failure: Optional[Schedule] = None

    @property
    def ok(self) -> bool:
        """No violations of what the protocol guarantees."""
        return (
            self.divergent == 0
            and self.convergence_violations == 0
            and self.weak_violations == 0
        )

    def summary(self) -> str:
        finals = ", ".join(
            f"{final!r}×{count}"
            for final, count in sorted(self.distinct_finals.items())
        )
        status = "OK" if self.ok else "VIOLATIONS FOUND"
        extra = " (truncated)" if self.truncated else ""
        return (
            f"{self.protocol}: {self.runs} schedules explored{extra} — "
            f"{status}; strong-list violations on "
            f"{self.strong_violations} schedule(s); finals: {finals}"
        )


def _enabled_actions(
    remaining: Dict[str, int],
    to_server: Dict[str, int],
    to_client: Dict[str, int],
) -> List[Tuple[str, str]]:
    actions: List[Tuple[str, str]] = []
    for client in sorted(remaining):
        if remaining[client]:
            actions.append(("gen", client))
    for client in sorted(to_server):
        if to_server[client]:
            actions.append(("srv", client))
    for client in sorted(to_client):
        if to_client[client]:
            actions.append(("cli", client))
    return actions


#: Protocols whose server does not echo the generator's own operation
#: back to it (the state-vector wire format piggybacks acknowledgements).
_NO_ECHO_PROTOCOLS = frozenset({"vector"})


def _schedules(
    script: Script,
    clients: List[str],
    max_runs: Optional[int],
    echoes: bool = True,
) -> Tuple[List[List[Step]], bool]:
    """Enumerate all maximal schedules of ``script`` (DFS over actions)."""
    complete: List[List[Step]] = []
    truncated = False

    def recurse(
        steps: List[Step],
        remaining: Dict[str, int],
        to_server: Dict[str, int],
        to_client: Dict[str, int],
    ) -> None:
        nonlocal truncated
        if truncated:
            return
        actions = _enabled_actions(remaining, to_server, to_client)
        if not actions:
            if max_runs is not None and len(complete) >= max_runs:
                truncated = True
                return
            complete.append(list(steps))
            return
        for kind, client in actions:
            if kind == "gen":
                index = len(script[client]) - remaining[client]
                steps.append(Generate(client, script[client][index]))
                remaining[client] -= 1
                to_server[client] += 1
                recurse(steps, remaining, to_server, to_client)
                to_server[client] -= 1
                remaining[client] += 1
            elif kind == "srv":
                steps.append(ServerReceive(client))
                to_server[client] -= 1
                recipients = [
                    other
                    for other in to_client
                    if echoes or other != client
                ]
                for other in recipients:
                    to_client[other] += 1
                recurse(steps, remaining, to_server, to_client)
                for other in recipients:
                    to_client[other] -= 1
                to_server[client] += 1
            else:
                steps.append(ClientReceive(client))
                to_client[client] -= 1
                recurse(steps, remaining, to_server, to_client)
                to_client[client] += 1
            steps.pop()

    recurse(
        [],
        {c: len(script[c]) for c in clients},
        {c: 0 for c in clients},
        {c: 0 for c in clients},
    )
    return complete, truncated


def explore_all_schedules(
    script: Script,
    protocol: str = "css",
    initial_text: str = "",
    max_runs: Optional[int] = 200_000,
) -> ExplorationReport:
    """Run ``protocol`` under every schedule of ``script`` and check it.

    ``max_runs`` bounds the enumeration defensively; hitting it sets
    ``truncated`` on the report (completeness claims then no longer
    apply).
    """
    clients = sorted(script)
    report = ExplorationReport(protocol=protocol)
    schedules, report.truncated = _schedules(
        script,
        clients,
        max_runs,
        echoes=protocol not in _NO_ECHO_PROTOCOLS,
    )
    for steps in schedules:
        schedule = Schedule(steps)
        cluster = make_cluster(protocol, clients, initial_text=initial_text)
        execution = cluster.run(schedule)
        report.runs += 1
        documents = cluster.documents()
        final = documents[sorted(documents)[0]]
        if len(set(documents.values())) != 1:
            report.divergent += 1
            report.first_failure = report.first_failure or schedule
        else:
            report.distinct_finals[final] = (
                report.distinct_finals.get(final, 0) + 1
            )
        spec_report = check_all_specs(execution, initial_text=initial_text)
        if not spec_report.convergence.ok:
            report.convergence_violations += 1
            report.first_failure = report.first_failure or schedule
        if not spec_report.weak_list.ok:
            report.weak_violations += 1
            report.first_failure = report.first_failure or schedule
        if not spec_report.strong_list.ok:
            report.strong_violations += 1
    return report
