"""Exhaustive verification for small configurations.

Property tests sample the schedule space; for small configurations we
can do better and enumerate it *completely*:

* :mod:`repro.verify.explorer` — run a protocol under **every** possible
  interleaving of a fixed set of user operations (all delivery orders
  permitted by FIFO channels) and check every run against the
  specifications;
* :mod:`repro.verify.ot_exhaustive` — check CP1 for **every** pair of
  operations over every document up to a bounded length.

This turns the paper's theorems into finite, fully-checked statements on
bounded instances — the strongest evidence short of the proofs
themselves.
"""

from repro.verify.explorer import ExplorationReport, explore_all_schedules
from repro.verify.ot_exhaustive import exhaustive_cp1

__all__ = [
    "ExplorationReport",
    "explore_all_schedules",
    "exhaustive_cp1",
]
