"""Exhaustive CP1 verification over bounded instances.

For every document up to ``max_length`` and every pair of operations
definable on it (all insert positions × a value, all delete positions,
for two distinct replicas), check CP1 (Definition 4.4).  The instance
space is small — O(L²) pairs per document — and position-shifting OT is
oblivious to the actual characters, so passing this bounded check plus
the structural induction of the state-spaces covers the transformation
behaviour completely for practical purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.ids import OpId
from repro.document.list_document import ListDocument
from repro.ot.operations import Operation, delete, insert
from repro.ot.properties import check_cp1


@dataclass
class Cp1Report:
    """Outcome of one exhaustive CP1 sweep."""

    documents: int = 0
    pairs: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"exhaustive CP1: {self.pairs} operation pairs over "
            f"{self.documents} documents — {status}"
        )


def _operations_on(document: ListDocument, replica: str) -> List[Operation]:
    """Every operation one replica could issue on ``document``."""
    operations: List[Operation] = []
    for position in range(len(document) + 1):
        operations.append(insert(OpId(replica, 1), "•", position))
    for position in range(len(document)):
        operations.append(
            delete(OpId(replica, 1), document.element_at(position), position)
        )
    return operations


def exhaustive_cp1(
    max_length: int = 4, stop_on_failure: bool = False
) -> Cp1Report:
    """Check CP1 for every operation pair on every document ≤ max_length.

    Characters are irrelevant to position-shifting OT, so one canonical
    document per length suffices; replica identities "c1" < "c2" cover
    both tie-breaking directions because both transform orders are
    checked by :func:`check_cp1`.
    """
    report = Cp1Report()
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    for length in range(max_length + 1):
        document = ListDocument.from_string(alphabet[:length])
        report.documents += 1
        ops_one = _operations_on(document, "c1")
        ops_two = _operations_on(document, "c2")
        for o1 in ops_one:
            for o2 in ops_two:
                report.pairs += 1
                verdict = check_cp1(document, o1, o2)
                if not verdict.holds:
                    report.failures.append(verdict.detail)
                    if stop_on_failure:
                        return report
    return report
