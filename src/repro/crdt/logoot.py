"""Logoot (Weiss, Urso & Molli, ICDCS'09): dense position identifiers.

Every element carries an immutable identifier — a sequence of
``(digit, site, counter)`` triples compared lexicographically — drawn
strictly between its neighbours' identifiers at insertion time.  The list
is simply the identifier-sorted set of elements: inserts and deletes
commute trivially and, unlike RGA and WOOT, nothing survives deletion
(no tombstones), at the price of identifiers that can grow under
adversarial insertion patterns — the trade-off the metadata-overhead
benchmark measures.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.crdt.base import CrdtClient, CrdtRelayServer, ReplicatedListCrdt
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError

#: One identifier component: (digit, site, counter).
Triple = Tuple[int, str, int]
#: A full position identifier.
Identifier = Tuple[Triple, ...]

BASE = 1 << 15

#: Virtual bounds: BEGIN sorts below and END above every legal identifier.
BEGIN: Identifier = ((0, "", 0),)
END: Identifier = ((BASE, "", 0),)

_MIN_TRIPLE: Triple = (0, "", 0)
_MAX_TRIPLE: Triple = (BASE, "", 0)


def generate_between(
    lower: Identifier,
    upper: Identifier,
    site: str,
    counter: int,
    rng: random.Random,
) -> Identifier:
    """A fresh identifier strictly between ``lower`` and ``upper``.

    Walks down levels copying the lower bound until a digit gap opens;
    once the new prefix falls strictly below the upper bound's triple the
    upper constraint disappears (lexicographic comparison is decided at
    that level).  Terminates because the final disambiguating triple
    ``(digit, site, counter)`` is unique to this call.
    """
    if not lower < upper:
        raise ProtocolError(
            f"logoot: bounds out of order: {lower!r} !< {upper!r}"
        )
    prefix: List[Triple] = []
    level = 0
    upper_active = True
    while True:
        low = lower[level] if level < len(lower) else _MIN_TRIPLE
        high = (
            upper[level]
            if upper_active and level < len(upper)
            else _MAX_TRIPLE
        )
        gap = high[0] - low[0]
        if gap > 1:
            digit = rng.randint(low[0] + 1, high[0] - 1)
            return tuple(prefix) + ((digit, site, counter),)
        prefix.append(low)
        if upper_active and low != high:
            # The copied triple is strictly below the upper bound's triple
            # at this level, so any extension stays below ``upper``.
            upper_active = False
        level += 1


class LogootList(ReplicatedListCrdt):
    """One Logoot replica: an identifier-sorted list of elements."""

    def __init__(self, replica: ReplicaId, seed: int = 0) -> None:
        self._replica = replica
        self._counter = 0
        self._rng = random.Random(f"logoot:{replica}:{seed}")
        self._identifiers: List[Identifier] = []
        self._elements: List[Element] = []

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self) -> Tuple[Element, ...]:
        return tuple(self._elements)

    def identifier_of(self, position: int) -> Identifier:
        return self._identifiers[position]

    # ------------------------------------------------------------------
    # Local updates
    # ------------------------------------------------------------------
    def local_insert(self, opid: OpId, value: Any, position: int):
        if not 0 <= position <= len(self._elements):
            raise ProtocolError(
                f"logoot: insert position {position} out of range"
            )
        lower = self._identifiers[position - 1] if position > 0 else BEGIN
        upper = (
            self._identifiers[position]
            if position < len(self._identifiers)
            else END
        )
        self._counter += 1
        identifier = generate_between(
            lower, upper, self._replica, self._counter, self._rng
        )
        operation = LogootInsert(identifier, Element(value, opid))
        self._apply_insert(operation)
        return operation

    def local_delete(self, opid: OpId, position: int):
        del opid
        if not 0 <= position < len(self._elements):
            raise ProtocolError(
                f"logoot: delete position {position} out of range"
            )
        operation = LogootDelete(self._identifiers[position])
        self._apply_delete(operation)
        return operation

    # ------------------------------------------------------------------
    # Remote application
    # ------------------------------------------------------------------
    def apply_remote(self, remote_op: Any) -> None:
        if isinstance(remote_op, LogootInsert):
            self._apply_insert(remote_op)
        elif isinstance(remote_op, LogootDelete):
            self._apply_delete(remote_op)
        else:
            raise ProtocolError(f"logoot: unknown operation {remote_op!r}")

    def _apply_insert(self, operation: "LogootInsert") -> None:
        index = bisect.bisect_left(self._identifiers, operation.identifier)
        if (
            index < len(self._identifiers)
            and self._identifiers[index] == operation.identifier
        ):
            if self._elements[index].opid == operation.element.opid:
                return  # duplicate delivery safety net
            raise ProtocolError(
                f"logoot: identifier collision at {operation.identifier!r}"
            )
        self._identifiers.insert(index, operation.identifier)
        self._elements.insert(index, operation.element)

    def _apply_delete(self, operation: "LogootDelete") -> None:
        index = bisect.bisect_left(self._identifiers, operation.identifier)
        if (
            index < len(self._identifiers)
            and self._identifiers[index] == operation.identifier
        ):
            del self._identifiers[index]
            del self._elements[index]
        # else: concurrently deleted already — deletes are idempotent.

    # ------------------------------------------------------------------
    # Seeding and metadata
    # ------------------------------------------------------------------
    def seed(self, elements: Tuple[Element, ...]) -> None:
        seeder = random.Random("logoot-seed")
        lower = BEGIN
        for element in elements:
            identifier = generate_between(lower, END, "", 0, seeder)
            self._identifiers.append(identifier)
            self._elements.append(element)
            lower = identifier
        if self._identifiers != sorted(self._identifiers):
            raise ProtocolError("logoot: seeding produced unsorted ids")

    def metadata_size(self) -> int:
        """Total identifier components retained for live elements."""
        return sum(len(identifier) for identifier in self._identifiers)


@dataclass(frozen=True)
class LogootInsert:
    identifier: Identifier
    element: Element


@dataclass(frozen=True)
class LogootDelete:
    identifier: Identifier


class LogootClient(CrdtClient):
    """A Logoot replica behind the standard cluster client interface."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, LogootList(replica_id), initial_document)


class LogootServer(CrdtRelayServer):
    """Serialising relay holding its own Logoot replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(
            replica_id, clients, LogootList(replica_id), initial_document
        )
