"""Treedoc (Preguiça, Marquès, Shapiro & Letia, ICDCS'09).

Elements live at the nodes of a binary tree; the list order is the
in-order traversal.  A position identifier is the path from the root
(sequence of 0/1 bits), disambiguated by the inserting site when two
sites grow the same spot concurrently; deletions keep tombstones so that
paths referenced by concurrent operations stay resolvable.

This implementation uses the "major nodes" formulation: each tree node
holds a list of (site-tagged) mini-nodes ordered by site identifier, so
concurrent insertions at the same path commute deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.crdt.base import CrdtClient, CrdtRelayServer, ReplicatedListCrdt
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError

#: A path entry: (bit, site) — bit 0 = left subtree, 1 = right subtree.
#: The site disambiguates concurrent growth of the same logical position.
PathEntry = Tuple[int, str]
Path = Tuple[PathEntry, ...]


@dataclass(frozen=True)
class TreedocInsert:
    path: Path
    element: Element


@dataclass(frozen=True)
class TreedocDelete:
    path: Path


class _TreeNode:
    __slots__ = ("element", "visible", "left", "right")

    def __init__(self, element: Optional[Element]) -> None:
        self.element = element
        self.visible = element is not None
        # Children keyed by (bit, site), kept sorted for traversal.
        self.left: Dict[str, "_TreeNode"] = {}
        self.right: Dict[str, "_TreeNode"] = {}


class TreedocList(ReplicatedListCrdt):
    """One Treedoc replica."""

    def __init__(self, replica: ReplicaId) -> None:
        self._replica = replica
        self._root = _TreeNode(None)
        self._root.visible = False

    # ------------------------------------------------------------------
    # Traversal: in-order over (left children by site, node, right ...)
    # ------------------------------------------------------------------
    def _walk(self, node: _TreeNode, out: List[Tuple[Path, _TreeNode]],
              prefix: Path) -> None:
        for site in sorted(node.left):
            self._walk(node.left[site], out, prefix + ((0, site),))
        if node is not self._root:
            out.append((prefix, node))
        for site in sorted(node.right):
            self._walk(node.right[site], out, prefix + ((1, site),))

    def _ordered_nodes(self) -> List[Tuple[Path, _TreeNode]]:
        out: List[Tuple[Path, _TreeNode]] = []
        self._walk(self._root, out, ())
        return out

    def read(self) -> Tuple[Element, ...]:
        return tuple(
            node.element
            for _, node in self._ordered_nodes()
            if node.visible
        )

    # ------------------------------------------------------------------
    # Path arithmetic
    # ------------------------------------------------------------------
    def _node_at(self, path: Path, create: bool = False) -> _TreeNode:
        node = self._root
        for bit, site in path:
            bucket = node.left if bit == 0 else node.right
            child = bucket.get(site)
            if child is None:
                if not create:
                    raise ProtocolError(
                        f"treedoc: no node at path {path!r}"
                    )
                child = _TreeNode(None)
                child.visible = False
                bucket[site] = child
            node = child
        return node

    def _visible_paths(self) -> List[Path]:
        return [
            path for path, node in self._ordered_nodes() if node.visible
        ]

    def _leftmost_descendant(self, path: Path, node: _TreeNode) -> Path:
        """Follow smallest-site left children to the in-order first node."""
        while node.left:
            site = sorted(node.left)[0]
            path = path + ((0, site),)
            node = node.left[site]
        return path

    def _fresh_path(self, position: int) -> Path:
        """A path landing in the in-order gap before ``position``.

        Standard Treedoc placement: extend the right spine of the left
        neighbour when it is free; otherwise descend to the in-order
        successor inside its right subtree and extend that node's (free)
        left spine.  Either way the new node falls strictly between the
        neighbouring *visible* elements — anything in between is a
        tombstone and does not perturb visible positions.  Concurrent
        extensions of the same spot are disambiguated by the site
        component of the path entry.
        """
        visible = self._visible_paths()
        if not 0 <= position <= len(visible):
            raise ProtocolError(
                f"treedoc: insert position {position} out of range"
            )
        mine = self._replica
        if position > 0:
            anchor_path = visible[position - 1]
            anchor = self._node_at(anchor_path)
            if not anchor.right:
                return anchor_path + ((1, mine),)
            site = sorted(anchor.right)[0]
            successor = self._leftmost_descendant(
                anchor_path + ((1, site),), anchor.right[site]
            )
            return successor + ((0, mine),)
        # position == 0: before the in-order first node of the whole tree.
        if self._root.left:
            first = self._leftmost_descendant((), self._root)
        elif self._root.right:
            site = sorted(self._root.right)[0]
            first = self._leftmost_descendant(
                ((1, site),), self._root.right[site]
            )
        else:
            return ((1, mine),)  # empty tree
        return first + ((0, mine),)

    # ------------------------------------------------------------------
    # Local updates
    # ------------------------------------------------------------------
    def local_insert(self, opid: OpId, value: Any, position: int) -> TreedocInsert:
        path = self._fresh_path(position)
        node = self._node_at(path, create=True)
        while node.element is not None:
            # The spine slot is taken (e.g. repeated inserts at the same
            # position): keep extending in the same direction.
            path = path + (path[-1],)
            node = self._node_at(path, create=True)
        operation = TreedocInsert(path, Element(value, opid))
        self._apply_insert(operation)
        return operation

    def local_delete(self, opid: OpId, position: int) -> TreedocDelete:
        del opid
        visible = self._visible_paths()
        if not 0 <= position < len(visible):
            raise ProtocolError(
                f"treedoc: delete position {position} out of range"
            )
        operation = TreedocDelete(visible[position])
        self._apply_delete(operation)
        return operation

    # ------------------------------------------------------------------
    # Remote application
    # ------------------------------------------------------------------
    def apply_remote(self, remote_op: Any) -> None:
        if isinstance(remote_op, TreedocInsert):
            self._apply_insert(remote_op)
        elif isinstance(remote_op, TreedocDelete):
            self._apply_delete(remote_op)
        else:
            raise ProtocolError(f"treedoc: unknown operation {remote_op!r}")

    def _apply_insert(self, operation: TreedocInsert) -> None:
        node = self._node_at(operation.path, create=True)
        if node.element is not None:
            if node.element.opid == operation.element.opid:
                return  # duplicate delivery safety net
            raise ProtocolError(
                f"treedoc: path collision at {operation.path!r} between "
                f"{node.element.pretty()} and {operation.element.pretty()}"
            )
        node.element = operation.element
        node.visible = True

    def _apply_delete(self, operation: TreedocDelete) -> None:
        node = self._node_at(operation.path)
        node.visible = False  # tombstone; idempotent

    # ------------------------------------------------------------------
    # Seeding and metadata
    # ------------------------------------------------------------------
    def seed(self, elements: Tuple[Element, ...]) -> None:
        path: Path = ()
        for element in elements:
            path = path + ((1, ""),)
            node = self._node_at(path, create=True)
            node.element = element
            node.visible = True

    def metadata_size(self) -> int:
        """Tombstoned (invisible but materialised) element nodes."""
        return sum(
            1
            for _, node in self._ordered_nodes()
            if node.element is not None and not node.visible
        )


class TreedocClient(CrdtClient):
    """A Treedoc replica behind the standard cluster client interface."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, TreedocList(replica_id), initial_document)


class TreedocServer(CrdtRelayServer):
    """Serialising relay holding its own Treedoc replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(
            replica_id, clients, TreedocList(replica_id), initial_document
        )
