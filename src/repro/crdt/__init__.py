"""CRDT baselines for the replicated list (Section 9, related work).

The paper contrasts OT-based Jupiter with CRDT protocols; the key baseline
is the RGA variant of Attiya et al. (PODC'16), which satisfies the
*strong* list specification that Jupiter violates.  We implement three:

* :mod:`repro.crdt.rga` — Replicated Growable Array (timestamped
  insertion tree with tombstones);
* :mod:`repro.crdt.logoot` — dense position identifiers, tombstone-free;
* :mod:`repro.crdt.woot` — WithOut Operational Transformation (character
  graph with visibility flags).

All three run in the same client/server star as the Jupiter protocols:
the server is a pure serialising relay (CRDT operations commute, so the
relay exists only to provide the FIFO causal broadcast the CRDTs assume
and to keep the simulation harness uniform).
"""

from repro.crdt.base import (
    CrdtClient,
    CrdtClientMessage,
    CrdtRelayServer,
    CrdtServerMessage,
    ReplicatedListCrdt,
)
from repro.crdt.logoot import LogootClient, LogootList, LogootServer
from repro.crdt.rga import RgaClient, RgaList, RgaServer
from repro.crdt.treedoc import TreedocClient, TreedocList, TreedocServer
from repro.crdt.woot import WootClient, WootList, WootServer

__all__ = [
    "CrdtClient",
    "CrdtClientMessage",
    "CrdtRelayServer",
    "CrdtServerMessage",
    "ReplicatedListCrdt",
    "LogootClient",
    "LogootList",
    "LogootServer",
    "RgaClient",
    "RgaList",
    "RgaServer",
    "TreedocClient",
    "TreedocList",
    "TreedocServer",
    "WootClient",
    "WootList",
    "WootServer",
]
