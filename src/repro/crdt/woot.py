"""WOOT — WithOut Operational Transformation (Oster et al., CSCW'06).

Every character records the identifiers of its left and right neighbours
*at insertion time*; integration places a new character inside that
interval, ordering concurrent insertions by character identifier via the
recursive narrowing of the original ``IntegrateIns`` algorithm.  Deleted
characters stay in the sequence with their visibility flag cleared
(tombstones), preserving the anchors other sites may still reference.

Preconditions (neighbours present before a character integrates; targets
present before a delete) are guaranteed here by the serialising relay:
the server forwards operations in an order consistent with causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.crdt.base import CrdtClient, CrdtRelayServer, ReplicatedListCrdt
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError

#: Sentinel identifiers for the virtual beginning and end characters.
CB = OpId("", 0)
CE = OpId("￿", 0)


@dataclass(frozen=True)
class WootInsert:
    """Insert ``element`` between ``prev`` and ``next`` (ids at origin)."""

    element: Element
    prev: OpId
    next: OpId


@dataclass(frozen=True)
class WootDelete:
    """Hide the character identified by ``target``."""

    target: OpId


class _WChar:
    __slots__ = ("element", "visible")

    def __init__(self, element: Optional[Element], visible: bool) -> None:
        self.element = element
        self.visible = visible


class WootList(ReplicatedListCrdt):
    """One WOOT replica: the full character sequence with sentinels."""

    def __init__(self, replica: ReplicaId) -> None:
        self._replica = replica
        self._order: List[OpId] = [CB, CE]
        self._chars: Dict[OpId, _WChar] = {
            CB: _WChar(None, False),
            CE: _WChar(None, False),
        }
        #: each real character's (prev, next) anchors as sent on the wire.
        self._anchors: Dict[OpId, Tuple[OpId, OpId]] = {}

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self) -> Tuple[Element, ...]:
        return tuple(
            self._chars[opid].element
            for opid in self._order
            if self._chars[opid].visible
        )

    def sequence_length(self) -> int:
        """Total characters held, sentinels excluded (tombstones count)."""
        return len(self._order) - 2

    # ------------------------------------------------------------------
    # Local updates
    # ------------------------------------------------------------------
    def _visible_ids(self) -> List[OpId]:
        return [o for o in self._order if self._chars[o].visible]

    def local_insert(self, opid: OpId, value: Any, position: int) -> WootInsert:
        visible = self._visible_ids()
        if not 0 <= position <= len(visible):
            raise ProtocolError(f"woot: insert position {position} invalid")
        prev = visible[position - 1] if position > 0 else CB
        nxt = visible[position] if position < len(visible) else CE
        operation = WootInsert(Element(value, opid), prev, nxt)
        self._integrate_insert(operation)
        return operation

    def local_delete(self, opid: OpId, position: int) -> WootDelete:
        del opid
        visible = self._visible_ids()
        if not 0 <= position < len(visible):
            raise ProtocolError(f"woot: delete position {position} invalid")
        operation = WootDelete(visible[position])
        self._integrate_delete(operation)
        return operation

    # ------------------------------------------------------------------
    # Remote application
    # ------------------------------------------------------------------
    def apply_remote(self, remote_op: Any) -> None:
        if isinstance(remote_op, WootInsert):
            self._integrate_insert(remote_op)
        elif isinstance(remote_op, WootDelete):
            self._integrate_delete(remote_op)
        else:
            raise ProtocolError(f"woot: unknown operation {remote_op!r}")

    def _integrate_delete(self, operation: WootDelete) -> None:
        char = self._chars.get(operation.target)
        if char is None:
            raise ProtocolError(
                f"woot: delete of unknown character {operation.target}"
            )
        char.visible = False  # idempotent

    def _integrate_insert(self, operation: WootInsert) -> None:
        if operation.element.opid in self._chars:
            return  # duplicate delivery safety net
        for anchor in (operation.prev, operation.next):
            if anchor not in self._chars:
                raise ProtocolError(
                    f"woot: missing anchor {anchor}; causal delivery violated"
                )
        self._chars[operation.element.opid] = _WChar(operation.element, True)
        self._anchors[operation.element.opid] = (operation.prev, operation.next)
        self._integrate_between(
            operation.element.opid, operation.prev, operation.next, operation
        )

    def _integrate_between(
        self, new: OpId, prev: OpId, nxt: OpId, operation: WootInsert
    ) -> None:
        """The recursive ``IntegrateIns`` of the WOOT paper (iterative)."""
        while True:
            index = {opid: i for i, opid in enumerate(self._order)}
            start, end = index[prev], index[nxt]
            if start >= end:
                raise ProtocolError(
                    f"woot: inverted anchors for {operation.element.pretty()}"
                )
            between = self._order[start + 1 : end]
            if not between:
                self._order.insert(end, new)
                return
            # Keep only the characters whose own anchors lie outside the
            # (prev, next) interval — the "top level" of this subsequence.
            anchors_of = self._anchor_index
            level = [
                candidate
                for candidate in between
                if anchors_of[candidate][0] <= start
                and anchors_of[candidate][1] >= end
            ]
            rail = [prev, *level, nxt]
            slot = 1
            while slot < len(rail) - 1 and rail[slot] < new:
                slot += 1
            prev, nxt = rail[slot - 1], rail[slot]

    # ------------------------------------------------------------------
    # Anchor bookkeeping
    # ------------------------------------------------------------------
    @property
    def _anchor_index(self) -> Dict[OpId, Tuple[int, int]]:
        """Positions (in the full order) of each character's anchors."""
        index = {opid: i for i, opid in enumerate(self._order)}
        return {
            opid: (index[prev], index[nxt])
            for opid, (prev, nxt) in self._anchors.items()
        }

    # ------------------------------------------------------------------
    # Seeding and metadata
    # ------------------------------------------------------------------
    def seed(self, elements: Tuple[Element, ...]) -> None:
        previous = CB
        for element in elements:
            self._chars[element.opid] = _WChar(element, True)
            self._anchors[element.opid] = (previous, CE)
            self._order.insert(len(self._order) - 1, element.opid)
            previous = element.opid

    def metadata_size(self) -> int:
        """Invisible characters retained (tombstones)."""
        return sum(
            1
            for opid, char in self._chars.items()
            if opid not in (CB, CE) and not char.visible
        )


class WootClient(CrdtClient):
    """A WOOT replica behind the standard cluster client interface."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, WootList(replica_id), initial_document)


class WootServer(CrdtRelayServer):
    """Serialising relay holding its own WOOT replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(
            replica_id, clients, WootList(replica_id), initial_document
        )
