"""Plumbing that lets CRDT replicas run inside the Jupiter harness.

A :class:`ReplicatedListCrdt` provides the list semantics; the
:class:`CrdtClient` adapts it to the cluster's
:class:`~repro.jupiter.base.BaseClient` interface, producing both the
CRDT-internal operation (for peers) and the abstract ``Ins``/``Del``
:class:`~repro.ot.operations.Operation` that the execution model and the
specification checkers consume.  The :class:`CrdtRelayServer` plays the
Jupiter server's structural role — FIFO serialising broadcast — but never
transforms anything: CRDT operations commute by design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.common.ids import ReplicaId
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.ordering import ServerOrderOracle
from repro.model.schedule import OpSpec
from repro.ot.operations import Operation, delete as make_delete, insert as make_insert


class ReplicatedListCrdt(abc.ABC):
    """A list CRDT replica: local updates return ops, remote ops apply."""

    @abc.abstractmethod
    def local_insert(self, opid, value, position: int) -> Any:
        """Insert locally at visible ``position``; return the remote op."""

    @abc.abstractmethod
    def local_delete(self, opid, position: int) -> Any:
        """Delete the visible element at ``position``; return the op."""

    @abc.abstractmethod
    def apply_remote(self, remote_op: Any) -> None:
        """Apply an operation generated elsewhere (causally ready)."""

    @abc.abstractmethod
    def read(self) -> Tuple[Element, ...]:
        """The visible list contents."""

    @abc.abstractmethod
    def seed(self, elements: Tuple[Element, ...]) -> None:
        """Install a shared initial document (deterministic across
        replicas: every replica seeds identically before the run)."""

    @abc.abstractmethod
    def metadata_size(self) -> int:
        """Number of metadata units retained (tombstones, identifier
        components, ...) — used by the overhead benchmarks."""


@dataclass(frozen=True)
class CrdtClientMessage:
    """Client-to-server: the CRDT op plus its abstract description."""

    remote_op: Any
    abstract_op: Operation


@dataclass(frozen=True)
class CrdtServerMessage:
    """Server broadcast of one serialised CRDT operation."""

    remote_op: Any
    abstract_op: Operation
    origin: ReplicaId
    serial: int


class CrdtClient(BaseClient):
    """Adapter between the cluster harness and a list CRDT."""

    def __init__(
        self,
        replica_id: ReplicaId,
        crdt: ReplicatedListCrdt,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id)
        self.crdt = crdt
        self._document = ListDocument()
        self._context: frozenset = frozenset()
        if initial_document is not None:
            self.crdt.seed(tuple(initial_document.read()))
            self._document = initial_document.copy()

    @property
    def document(self) -> ListDocument:
        self._refresh()
        return self._document

    def _refresh(self) -> None:
        self._document = ListDocument(self.crdt.read())

    def generate(self, spec: OpSpec) -> GenerateResult:
        opid = self._fresh_opid()
        if spec.kind == "ins":
            if spec.position > len(self.document):
                raise ProtocolError(
                    f"{self.replica_id}: insert position {spec.position} "
                    "out of range"
                )
            remote_op = self.crdt.local_insert(opid, spec.value, spec.position)
            abstract = make_insert(
                opid, spec.value, spec.position, self._context
            )
        else:
            victim = self.document.element_at(spec.position)
            remote_op = self.crdt.local_delete(opid, spec.position)
            abstract = make_delete(opid, victim, spec.position, self._context)
        self._context = self._context | {opid}
        self._refresh()
        return GenerateResult(
            operation=abstract,
            returned=self.read(),
            outgoing=CrdtClientMessage(remote_op, abstract),
        )

    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, CrdtServerMessage):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        if payload.origin == self.replica_id:
            return ReceiveResult(executed=None, returned=self.read())
        self.crdt.apply_remote(payload.remote_op)
        self._context = self._context | {payload.abstract_op.opid}
        self._refresh()
        return ReceiveResult(
            executed=payload.abstract_op, returned=self.read()
        )


class CrdtRelayServer(BaseServer):
    """Serialising relay; holds its own CRDT replica for the record."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        crdt: ReplicatedListCrdt,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self.crdt = crdt
        if initial_document is not None:
            self.crdt.seed(tuple(initial_document.read()))

    @property
    def document(self) -> ListDocument:
        return ListDocument(self.crdt.read())

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, CrdtClientMessage):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        serial = self.oracle.assign(payload.abstract_op.opid)
        self.crdt.apply_remote(payload.remote_op)
        broadcast = CrdtServerMessage(
            remote_op=payload.remote_op,
            abstract_op=payload.abstract_op,
            origin=sender,
            serial=serial,
        )
        return [(client, broadcast) for client in self.clients]
