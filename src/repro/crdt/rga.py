"""RGA — Replicated Growable Array (Roh et al. 2011).

The variant of Attiya et al. (PODC'16, Section 9 of the paper), which they
prove satisfies the **strong** list specification: a replica state is a
tree of timestamped insertions; the list order is a deterministic
pre-order traversal with each node's children visited newest-first;
deletions leave tombstones so orderings relative to deleted elements are
preserved — exactly the guarantee the weak specification (and Jupiter)
gives up.

Timestamps are Lamport clocks ``(counter, replica)``: unique, totally
ordered, and dominating every timestamp causally before them, which is
what makes "newest-first among siblings" well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.crdt.base import CrdtClient, CrdtRelayServer, ReplicatedListCrdt
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError

Timestamp = Tuple[int, str]

#: Identity of the virtual root node ("insert at the head" anchor).
ROOT: Optional[OpId] = None


@dataclass(frozen=True)
class RgaInsert:
    """Insert ``element`` as a child of ``parent`` with ``timestamp``."""

    element: Element
    timestamp: Timestamp
    parent: Optional[OpId]  # None = ROOT


@dataclass(frozen=True)
class RgaDelete:
    """Tombstone the element identified by ``target``."""

    target: OpId


class _Node:
    __slots__ = ("element", "timestamp", "children", "tombstone")

    def __init__(self, element: Optional[Element], timestamp: Timestamp) -> None:
        self.element = element
        self.timestamp = timestamp
        self.children: List[OpId] = []  # sorted newest-first
        self.tombstone = False


class RgaList(ReplicatedListCrdt):
    """One RGA replica."""

    def __init__(self, replica: ReplicaId) -> None:
        self._replica = replica
        self._clock = 0
        self._nodes: Dict[Optional[OpId], _Node] = {
            ROOT: _Node(None, (0, ""))
        }

    # ------------------------------------------------------------------
    # Lamport clock
    # ------------------------------------------------------------------
    def _tick(self) -> Timestamp:
        self._clock += 1
        return (self._clock, self._replica)

    def _witness(self, timestamp: Timestamp) -> None:
        self._clock = max(self._clock, timestamp[0])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _walk(self, include_tombstones: bool = False) -> List[Element]:
        result: List[Element] = []
        # Depth-first, children newest-first: classic RGA linearisation.
        order: List[OpId] = []
        stack = [(ROOT, iter(self._nodes[ROOT].children))]
        while stack:
            _, children = stack[-1]
            advanced = False
            for child in children:
                order.append(child)
                stack.append((child, iter(self._nodes[child].children)))
                advanced = True
                break
            if not advanced:
                stack.pop()
        for opid in order:
            node = self._nodes[opid]
            if include_tombstones or not node.tombstone:
                assert node.element is not None
                result.append(node.element)
        return result

    def read(self) -> Tuple[Element, ...]:
        return tuple(self._walk())

    def elements_with_tombstones(self) -> List[Element]:
        return self._walk(include_tombstones=True)

    # ------------------------------------------------------------------
    # Local updates
    # ------------------------------------------------------------------
    def _visible_opid_at(self, position: int) -> OpId:
        visible = [e.opid for e in self._walk()]
        if not 0 <= position < len(visible):
            raise ProtocolError(
                f"RGA: no visible element at position {position}"
            )
        return visible[position]

    def local_insert(self, opid: OpId, value: Any, position: int) -> RgaInsert:
        parent = ROOT if position == 0 else self._visible_opid_at(position - 1)
        operation = RgaInsert(
            element=Element(value, opid),
            timestamp=self._tick(),
            parent=parent,
        )
        self._integrate_insert(operation)
        return operation

    def local_delete(self, opid: OpId, position: int) -> RgaDelete:
        del opid  # deletions carry no identity of their own in RGA
        operation = RgaDelete(self._visible_opid_at(position))
        self._integrate_delete(operation)
        return operation

    # ------------------------------------------------------------------
    # Remote application
    # ------------------------------------------------------------------
    def apply_remote(self, remote_op: Any) -> None:
        if isinstance(remote_op, RgaInsert):
            self._integrate_insert(remote_op)
        elif isinstance(remote_op, RgaDelete):
            self._integrate_delete(remote_op)
        else:
            raise ProtocolError(f"RGA: unknown operation {remote_op!r}")

    def _integrate_insert(self, operation: RgaInsert) -> None:
        if operation.element.opid in self._nodes:
            return  # exactly-once channels make this a pure safety net
        parent = self._nodes.get(operation.parent)
        if parent is None:
            raise ProtocolError(
                f"RGA: insert under unknown parent {operation.parent} — "
                "causal delivery violated"
            )
        self._witness(operation.timestamp)
        node = _Node(operation.element, operation.timestamp)
        self._nodes[operation.element.opid] = node
        siblings = parent.children
        index = 0
        while (
            index < len(siblings)
            and self._nodes[siblings[index]].timestamp > operation.timestamp
        ):
            index += 1
        siblings.insert(index, operation.element.opid)

    def _integrate_delete(self, operation: RgaDelete) -> None:
        node = self._nodes.get(operation.target)
        if node is None:
            raise ProtocolError(
                f"RGA: delete of unknown element {operation.target}"
            )
        node.tombstone = True  # idempotent

    # ------------------------------------------------------------------
    # Seeding and metadata
    # ------------------------------------------------------------------
    def seed(self, elements: Tuple[Element, ...]) -> None:
        previous = ROOT
        for element in elements:
            operation = RgaInsert(
                element=element, timestamp=(0, ""), parent=previous
            )
            # Seed timestamps are all (0, ""): they sort below every real
            # timestamp, and the chain shape fixes their relative order.
            if element.opid in self._nodes:
                raise ProtocolError("RGA: seeding twice")
            node = _Node(element, operation.timestamp)
            self._nodes[element.opid] = node
            self._nodes[previous].children.append(element.opid)
            previous = element.opid

    def metadata_size(self) -> int:
        """Tombstoned nodes retained beyond the visible list."""
        return sum(
            1
            for opid, node in self._nodes.items()
            if opid is not None and node.tombstone
        )


class RgaClient(CrdtClient):
    """An RGA replica behind the standard cluster client interface."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, RgaList(replica_id), initial_document)


class RgaServer(CrdtRelayServer):
    """Serialising relay holding its own RGA replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(
            replica_id, clients, RgaList(replica_id), initial_document
        )
