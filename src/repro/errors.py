"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DocumentError",
    "PositionError",
    "ElementNotFoundError",
    "DuplicateElementError",
    "TransformError",
    "ContextMismatchError",
    "StateSpaceError",
    "UnknownStateError",
    "OrderingError",
    "ProtocolError",
    "ScheduleError",
    "SimulationError",
    "SpecificationError",
    "MalformedExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DocumentError(ReproError):
    """Base class for errors raised by list-document manipulation."""


class PositionError(DocumentError, IndexError):
    """An operation referred to a position outside the document bounds."""


class ElementNotFoundError(DocumentError, KeyError):
    """A deletion referred to an element that is not in the document."""


class DuplicateElementError(DocumentError):
    """An insertion would introduce an element id already present."""


class TransformError(ReproError):
    """Base class for errors raised during operational transformation."""


class ContextMismatchError(TransformError):
    """Two operations handed to ``transform`` are not context-equivalent.

    CP1 (Definition 4.4 of the paper) is only meaningful for operations
    defined on the same state; transforming operations with different
    contexts is a protocol bug, so we fail loudly instead of guessing.
    """


class StateSpaceError(ReproError):
    """Base class for errors raised by state-space data structures."""


class UnknownStateError(StateSpaceError, KeyError):
    """No state in the state-space matches the requested operation set."""


class OrderingError(StateSpaceError):
    """The total order between two sibling transitions cannot be decided."""


class ProtocolError(ReproError):
    """A replica received a message it cannot process."""


class ScheduleError(ReproError):
    """A schedule is malformed (e.g. delivers a message never sent)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent configuration."""


class SpecificationError(ReproError):
    """Base class for errors raised while checking specifications."""


class MalformedExecutionError(SpecificationError):
    """An (abstract) execution violates the well-formedness conditions."""
