"""Operational transformation: operations and transformation functions."""

from repro.ot.operations import OpKind, Operation, delete, insert, nop
from repro.ot.properties import PropertyVerdict, check_cp1, check_cp2
from repro.ot.sequences import (
    transform_against_sequence,
    transform_sequence_against,
)
from repro.ot.transform import transform, transform_pair

__all__ = [
    "OpKind",
    "Operation",
    "insert",
    "delete",
    "nop",
    "transform",
    "transform_pair",
    "transform_against_sequence",
    "transform_sequence_against",
    "PropertyVerdict",
    "check_cp1",
    "check_cp2",
]
