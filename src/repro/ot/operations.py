"""List operations for OT-based protocols.

An :class:`Operation` models both *original* user operations and their
*transformed* forms (paper, Definition 4.5): transformation never changes
the identity ``opid`` (which names ``org(o)``), only the position, possibly
the kind (a deletion may collapse to ``NOP``), and the context.

The context (Definition 4.6) is the set of original-operation ids the
operation is defined on: for an original operation it is the generating
replica's state; each transformation step ``OT(o, ox)`` extends it with
``org(ox)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, FrozenSet, Optional

from repro.common.ids import OpId, StateKey, format_opid_set
from repro.common.priority import Priority, priority_of
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import TransformError


class OpKind(enum.Enum):
    """The three operation shapes handled by the transformation functions."""

    INS = "ins"
    DEL = "del"
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Operation:
    """An insert, delete, or no-op on a list document.

    Attributes:
        kind: whether this is an ``INS``, ``DEL`` or ``NOP``.
        opid: identity of the original user operation ``org(o)``.
        element: the element being inserted or deleted (``None`` for NOP).
        position: zero-based target position (``None`` for NOP).
        context: ids of the original operations this operation is defined
            on — the replica state from which it was generated, extended by
            every operation it has been transformed against.
    """

    kind: OpKind
    opid: OpId
    element: Optional[Element]
    position: Optional[int]
    context: StateKey = field(default=frozenset())

    def __post_init__(self) -> None:
        if self.kind is OpKind.NOP:
            if self.position is not None:
                raise TransformError("NOP operations carry no position")
        else:
            if self.element is None:
                raise TransformError(f"{self.kind} requires an element")
            if self.position is None or self.position < 0:
                raise TransformError(
                    f"{self.kind} requires a non-negative position, "
                    f"got {self.position}"
                )
        if self.opid in self.context:
            raise TransformError(
                f"operation {self.opid} cannot appear in its own context"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_insert(self) -> bool:
        return self.kind is OpKind.INS

    @property
    def is_delete(self) -> bool:
        return self.kind is OpKind.DEL

    @property
    def is_nop(self) -> bool:
        return self.kind is OpKind.NOP

    @property
    def priority(self) -> Priority:
        """Tie-breaking priority, derived from the generating replica."""
        return priority_of(self.opid.replica)

    @property
    def resulting_state(self) -> StateKey:
        """The state reached by applying this operation to its context."""
        return self.context | {self.opid}

    def __str__(self) -> str:
        if self.is_nop:
            body = "Nop"
        else:
            name = "Ins" if self.is_insert else "Del"
            assert self.element is not None
            body = f"{name}({self.element.value}, {self.position})"
        return f"{body}[{self.opid}]"

    def pretty(self) -> str:
        """Verbose rendering including the context, e.g. ``o{1,2}``."""
        return f"{self} ctx={format_opid_set(self.context)}"

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_context(self, context: FrozenSet[OpId]) -> "Operation":
        """A copy of this operation defined on ``context``."""
        return replace(self, context=frozenset(context))

    def extended_by(
        self, other_id: OpId, context: Optional[StateKey] = None
    ) -> "Operation":
        """A copy whose context additionally contains ``other_id``.

        ``context`` short-circuits the union when the caller already holds
        ``self.context | {other_id}`` (Algorithm 1 does: it is the state
        key of the square corner the derived operation attaches at).
        """
        return Operation(
            kind=self.kind,
            opid=self.opid,
            element=self.element,
            position=self.position,
            context=self.context | {other_id} if context is None else context,
        )

    def moved_to(
        self,
        position: int,
        other_id: OpId,
        context: Optional[StateKey] = None,
    ) -> "Operation":
        """A copy at ``position`` whose context gained ``other_id``."""
        return Operation(
            kind=self.kind,
            opid=self.opid,
            element=self.element,
            position=position,
            context=self.context | {other_id} if context is None else context,
        )

    def collapsed(
        self, other_id: OpId, context: Optional[StateKey] = None
    ) -> "Operation":
        """The NOP form of this operation (used when DEL targets vanish)."""
        return Operation(
            kind=OpKind.NOP,
            opid=self.opid,
            element=self.element,
            position=None,
            context=self.context | {other_id} if context is None else context,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def apply(self, document: ListDocument) -> None:
        """Execute this operation on ``document`` in place.

        Raises :class:`~repro.errors.DocumentError` when the position or
        target element is invalid — in a correct protocol a transformed
        operation is always applicable to the state matching its context,
        so failures here surface protocol bugs instead of hiding them.
        """
        if self.is_nop:
            return
        assert self.element is not None and self.position is not None
        if self.is_insert:
            document.insert(self.element, self.position)
        else:
            document.delete(self.position, expected=self.element)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def insert(
    opid: OpId,
    value: Any,
    position: int,
    context: FrozenSet[OpId] = frozenset(),
) -> Operation:
    """Build an original ``Ins(value, position)`` operation.

    The inserted element's identity is the operation id itself, realising
    the one-to-one correspondence between elements and insert operations.
    """
    return Operation(
        kind=OpKind.INS,
        opid=opid,
        element=Element(value, opid),
        position=position,
        context=frozenset(context),
    )


def delete(
    opid: OpId,
    element: Element,
    position: int,
    context: FrozenSet[OpId] = frozenset(),
) -> Operation:
    """Build an original ``Del(element, position)`` operation.

    ``Del`` carries both the element and the position because OT works on
    positions while the list specifications refer to the deleted element
    (paper, footnote 2).
    """
    return Operation(
        kind=OpKind.DEL,
        opid=opid,
        element=element,
        position=position,
        context=frozenset(context),
    )


def nop(opid: OpId, context: FrozenSet[OpId] = frozenset()) -> Operation:
    """Build an explicit no-op (the idle operation of Imine et al.)."""
    return Operation(
        kind=OpKind.NOP,
        opid=opid,
        element=None,
        position=None,
        context=frozenset(context),
    )
