"""Transforming an operation against a sequence of operations.

This is the inner loop of the paper's Algorithm 1 (without the state-space
bookkeeping): given an operation ``o`` and a sequence ``L = <o_1 .. o_m>``
where ``C(o) = C(o_1)`` and ``C(o_{k+1}) = C(o_k) ∪ {org(o_k)}``, iterate

    (o{L[..k]}, L[k]{o}) = OT(o{L[..k-1]}, L[k])

producing ``o{L}`` (the fully transformed ``o``) and ``L{o}`` (the sequence
``L`` shifted to account for ``o``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ot.operations import Operation
from repro.ot.transform import transform_pair


def transform_against_sequence(
    o: Operation, sequence: Sequence[Operation]
) -> Tuple[Operation, List[Operation]]:
    """Return ``(o{L}, L{o})`` for ``L = sequence``.

    Context compatibility of each step is enforced by
    :func:`~repro.ot.transform.transform`, so a mis-ordered ``sequence``
    raises :class:`~repro.errors.ContextMismatchError` rather than silently
    producing a wrong transformation.
    """
    transformed_o = o
    shifted: List[Operation] = []
    for step in sequence:
        transformed_o, step_shifted = transform_pair(transformed_o, step)
        shifted.append(step_shifted)
    return transformed_o, shifted


def transform_sequence_against(
    sequence: Sequence[Operation], o: Operation
) -> List[Operation]:
    """Return just ``L{o}``; convenience wrapper over the full transform."""
    _, shifted = transform_against_sequence(o, sequence)
    return shifted
