"""Executable convergence properties of transformation functions.

CP1 (Definition 4.4) is the property the Jupiter proofs rely on:

    σ; o1; o2'  =  σ; o2; o1'      where (o1', o2') = OT(o1, o2)

CP2 (Prakash & Knister; footnote 4 of the paper) is *not* required by
Jupiter — the server's total order makes it unnecessary — but we provide a
checker so the test-suite can document that position-shifting OT indeed
fails CP2 in general, which is precisely why protocols without a central
serialisation order (like the broken protocol of Example 8.1) diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.document.list_document import ListDocument
from repro.ot.operations import Operation
from repro.ot.sequences import transform_against_sequence
from repro.ot.transform import transform_pair


@dataclass(frozen=True)
class PropertyVerdict:
    """Outcome of a convergence-property check, with evidence."""

    holds: bool
    detail: str = ""
    left: Optional[List[object]] = None
    right: Optional[List[object]] = None

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.holds


def _apply_all(document: ListDocument, operations: List[Operation]) -> ListDocument:
    result = document.copy()
    for operation in operations:
        operation.apply(result)
    return result


def check_cp1(
    document: ListDocument, o1: Operation, o2: Operation
) -> PropertyVerdict:
    """Check CP1 for ``o1``/``o2`` defined on ``document``.

    Both orders of the transformed square are executed on copies of
    ``document`` and the resulting element sequences compared.
    """
    o1_prime, o2_prime = transform_pair(o1, o2)
    via_o1 = _apply_all(document, [o1, o2_prime])
    via_o2 = _apply_all(document, [o2, o1_prime])
    if via_o1 == via_o2:
        return PropertyVerdict(True)
    return PropertyVerdict(
        False,
        detail=(
            f"CP1 violated for {o1} / {o2}: "
            f"{via_o1.as_string()!r} != {via_o2.as_string()!r}"
        ),
        left=list(via_o1.read()),
        right=list(via_o2.read()),
    )


def check_cp2(
    document: ListDocument, o1: Operation, o2: Operation, o3: Operation
) -> PropertyVerdict:
    """Check CP2: transforming ``o3`` along either side of the CP1 square
    of ``o1``/``o2`` yields the same operation effect.

    Formally, with ``(o1', o2') = OT(o1, o2)``:

        OT(OT(o3, o1), o2')  ≡  OT(OT(o3, o2), o1')

    We compare by *effect* (applying both results to the state after the
    square) rather than syntactically, since a NOP can be represented with
    different contexts.
    """
    o1_prime, o2_prime = transform_pair(o1, o2)
    via_o1, _ = transform_against_sequence(o3, [o1, o2_prime])
    via_o2, _ = transform_against_sequence(o3, [o2, o1_prime])
    base = _apply_all(document, [o1, o2_prime])
    left = _apply_all(base, [via_o1])
    right = _apply_all(base, [via_o2])
    if left == right:
        return PropertyVerdict(True)
    return PropertyVerdict(
        False,
        detail=(
            f"CP2 violated for {o1} / {o2} / {o3}: "
            f"{left.as_string()!r} != {right.as_string()!r}"
        ),
        left=list(left.read()),
        right=list(right.read()),
    )
