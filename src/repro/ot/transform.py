"""Pairwise inclusion transformation for list operations.

``transform(o1, o2)`` computes ``o1{o2} = OT(o1, o2)``: the form of ``o1``
that has the same effect after ``o2`` has already been applied.  Both
operations must be defined on the same context (the same replica state);
the result is defined on ``C(o1) ∪ {org(o2)}`` (Definition 4.6).

The functions implement the standard position-shifting OT for a replicated
list (Ellis & Gibbs 1989; Imine et al. 2006) with the tie-breaking
convention of the paper's Figure 7: between two concurrent inserts at the
same position, the insert from the *higher-priority* replica stays to the
left.  This family satisfies CP1 (Definition 4.4), which the test-suite
verifies both on the paper's examples and property-based over random
operation pairs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.ids import StateKey
from repro.errors import ContextMismatchError, TransformError
from repro.ot.operations import Operation


def transform(
    o1: Operation, o2: Operation, context: Optional[StateKey] = None
) -> Operation:
    """Return ``o1{o2}``, the form of ``o1`` that applies after ``o2``.

    Raises :class:`ContextMismatchError` when the operations are not
    defined on the same context — transforming such a pair is meaningless
    and always indicates a protocol bug, so we fail fast.

    ``context`` optionally supplies the result's context
    ``C(o1) ∪ {org(o2)}`` when the caller already holds it — Algorithm 1
    does (it is a state key of the CP1 square being closed), and passing
    it spares one O(|context|) set union per transform.
    """
    if o1.context is not o2.context and o1.context != o2.context:
        raise ContextMismatchError(
            f"cannot transform {o1.pretty()} against {o2.pretty()}: "
            "contexts differ"
        )
    if o1.opid == o2.opid:
        raise TransformError(
            f"cannot transform an operation against itself: {o1}"
        )

    if o1.is_nop or o2.is_nop:
        return o1.extended_by(o2.opid, context)

    if o1.is_insert and o2.is_insert:
        return _transform_ins_ins(o1, o2, context)
    if o1.is_insert and o2.is_delete:
        return _transform_ins_del(o1, o2, context)
    if o1.is_delete and o2.is_insert:
        return _transform_del_ins(o1, o2, context)
    return _transform_del_del(o1, o2, context)


def transform_pair(
    o1: Operation,
    o2: Operation,
    contexts: Optional[Tuple[StateKey, StateKey]] = None,
) -> Tuple[Operation, Operation]:
    """Return ``(o1{o2}, o2{o1})`` — both sides of the CP1 square.

    This is the paper's ``(o1', o2') = OT(o1, o2)`` notation, producing the
    two far edges of the commutative diagram in Figure 1c.  ``contexts``
    optionally carries the two result contexts (see :func:`transform`).
    """
    if contexts is None:
        return transform(o1, o2), transform(o2, o1)
    return transform(o1, o2, contexts[0]), transform(o2, o1, contexts[1])


# ----------------------------------------------------------------------
# The four kind-directed cases
# ----------------------------------------------------------------------
def _transform_ins_ins(
    o1: Operation, o2: Operation, context: Optional[StateKey]
) -> Operation:
    assert o1.position is not None and o2.position is not None
    if o1.position < o2.position:
        return o1.extended_by(o2.opid, context)
    if o1.position > o2.position:
        return o1.moved_to(o1.position + 1, o2.opid, context)
    # Same position: the higher-priority replica's element stays left.
    if o1.priority > o2.priority:
        return o1.extended_by(o2.opid, context)
    return o1.moved_to(o1.position + 1, o2.opid, context)


def _transform_ins_del(
    o1: Operation, o2: Operation, context: Optional[StateKey]
) -> Operation:
    assert o1.position is not None and o2.position is not None
    if o1.position <= o2.position:
        return o1.extended_by(o2.opid, context)
    return o1.moved_to(o1.position - 1, o2.opid, context)


def _transform_del_ins(
    o1: Operation, o2: Operation, context: Optional[StateKey]
) -> Operation:
    assert o1.position is not None and o2.position is not None
    if o1.position < o2.position:
        return o1.extended_by(o2.opid, context)
    return o1.moved_to(o1.position + 1, o2.opid, context)


def _transform_del_del(
    o1: Operation, o2: Operation, context: Optional[StateKey]
) -> Operation:
    assert o1.position is not None and o2.position is not None
    if o1.position < o2.position:
        return o1.extended_by(o2.opid, context)
    if o1.position > o2.position:
        return o1.moved_to(o1.position - 1, o2.opid, context)
    # Same position on the same context means the same element: the other
    # deletion already removed it, so this one degenerates to a no-op.
    assert o1.element is not None and o2.element is not None
    if o1.element.opid != o2.element.opid:
        raise TransformError(
            f"concurrent deletions at position {o1.position} target "
            f"different elements ({o1.element.pretty()} vs "
            f"{o2.element.pretty()}) despite equal contexts"
        )
    return o1.collapsed(o2.opid, context)
