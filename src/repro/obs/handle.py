"""The process-global observability handle.

Instrumented call sites throughout the repository hold a reference to
*the handle* (obtained once, at object construction, via
:func:`repro.obs.get_obs`) and poke named instruments on it::

    self._obs = get_obs()
    ...
    self._obs.ot_transforms.inc()

Two implementations share that surface:

* :class:`Obs` — the live handle: a :class:`~repro.obs.registry.MetricsRegistry`
  pre-declaring the repository's **canonical instrument set** (so every
  exposition contains every series, zero-valued or not — scrapers and
  dashboards never see series flicker in and out of existence), plus a
  :class:`~repro.obs.trace.TraceRing`.
* :class:`NoopObs` — the disabled singleton: every canonical attribute
  is one shared do-nothing instrument and ``enabled`` is ``False``.
  A disabled call site therefore costs an attribute load and an empty
  method call — and sites that would do real work first (read a clock,
  compute a length) guard on ``obs.enabled`` and skip even that.

Enable/disable swaps which object :func:`repro.obs.get_obs` returns;
objects constructed *before* ``enable()`` keep their no-op handle, which
is exactly the contract: observability is decided at process start,
before the instrumented objects exist.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    render_snapshot,
)
from repro.obs.trace import DEFAULT_CAPACITY, TraceRing

#: Sub-second work: OT/serialisation latency, WAL compaction, recovery.
FAST_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: attribute name -> (metric name, help)
CANONICAL_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    (
        "ot_transforms",
        "repro_ot_transforms_total",
        "OT transform_pair calls performed by Algorithm 1 integration",
    ),
    (
        "space_pruned",
        "repro_state_space_pruned_total",
        "State-space nodes reclaimed by GC pruning",
    ),
    (
        "ops_serialised",
        "repro_server_ops_serialised_total",
        "Client operations serialised by the CSS server",
    ),
    (
        "session_retransmits",
        "repro_session_retransmits_total",
        "Frames retransmitted by the reliable-session layer",
    ),
    (
        "session_duplicates",
        "repro_session_duplicates_total",
        "Duplicate frames suppressed by session receivers",
    ),
    (
        "session_gap_parks",
        "repro_session_gap_parks_total",
        "Out-of-order frames parked in session reorder buffers",
    ),
    (
        "session_acks",
        "repro_session_acks_total",
        "Cumulative acknowledgements processed by session senders",
    ),
    (
        "wal_appends",
        "repro_wal_appends_total",
        "Operations appended to the server write-ahead log",
    ),
    (
        "wal_compactions",
        "repro_wal_compactions_total",
        "Write-ahead log compactions performed",
    ),
    (
        "wal_records_truncated",
        "repro_wal_records_truncated_total",
        "Write-ahead log records truncated by compaction",
    ),
    (
        "net_frames_in",
        "repro_net_frames_received_total",
        "Wire frames read from TCP connections",
    ),
    (
        "net_frames_out",
        "repro_net_frames_sent_total",
        "Wire frames written to TCP connections",
    ),
    (
        "net_bytes_in",
        "repro_net_bytes_received_total",
        "Bytes read from TCP connections (headers + bodies)",
    ),
    (
        "net_bytes_out",
        "repro_net_bytes_sent_total",
        "Bytes written to TCP connections (headers + bodies)",
    ),
    (
        "net_reconnects",
        "repro_net_reconnects_total",
        "Client reconnections after the first successful connect",
    ),
    (
        "net_resync_frames",
        "repro_net_resync_frames_total",
        "Broadcast frames re-shipped from durable state on reconnect",
    ),
    (
        "view_changes",
        "repro_view_changes_total",
        "View changes completed by the replication layer",
    ),
    (
        "repl_appends",
        "repro_repl_appends_total",
        "Log records shipped to (and appended by) backup replicas",
    ),
    (
        "repl_stale_rejected",
        "repro_repl_stale_rejected_total",
        "Frames rejected because they carried a stale epoch",
    ),
    (
        "wal_torn_tail_dropped",
        "repro_wal_torn_tail_dropped_total",
        "Torn (truncated/garbage) final WAL records dropped at recovery",
    ),
    (
        "net_evictions",
        "repro_net_evictions_total",
        "Slow-consumer connections evicted (queue full, write stall, idle)",
    ),
    (
        "net_shed",
        "repro_net_shed_total",
        "Connections shed by admission control with a retry_after answer",
    ),
    (
        "net_write_stalls",
        "repro_net_write_stalls_total",
        "Frame writes that exceeded the write deadline",
    ),
    (
        "net_oversize_rejected",
        "repro_net_oversize_rejected_total",
        "Oversized frames rejected mid-session with an error envelope",
    ),
    (
        "fleet_redirects",
        "repro_fleet_redirects_total",
        "Client hellos answered by the fleet router with a redirect",
    ),
    (
        "fleet_registrations",
        "repro_fleet_registrations_total",
        "Worker registrations accepted by the fleet router",
    ),
    (
        "fleet_expirations",
        "repro_fleet_expirations_total",
        "Worker leases expired by the fleet router's failure detector",
    ),
    (
        "fleet_replacements",
        "repro_fleet_replacements_total",
        "Documents re-placed onto a surviving worker after a lease expiry",
    ),
    (
        "net_frames_coalesced",
        "repro_net_frames_coalesced_total",
        "Envelopes that rode inside a batched multi frame instead of alone",
    ),
    (
        "net_state_transfers",
        "repro_net_state_transfers_total",
        "Reconnects resynced by whole-state transfer after GC passed them",
    ),
)

CANONICAL_GAUGES: Tuple[Tuple[str, str, str], ...] = (
    (
        "space_nodes",
        "repro_state_space_nodes",
        "Live state-space node count of the last integrating replica",
    ),
    (
        "net_connected_clients",
        "repro_net_connected_clients",
        "Client channels with a live TCP writer",
    ),
    (
        "net_unacked_frames",
        "repro_net_unacked_frames",
        "Outgoing data frames awaiting cumulative acknowledgement",
    ),
    (
        "net_parked_frames",
        "repro_net_parked_frames",
        "Out-of-order broadcast frames parked awaiting a gap fill",
    ),
    (
        "document_length",
        "repro_document_length",
        "List length at the final state of the last integrating replica",
    ),
    (
        "repl_commit_quorum",
        "repro_repl_commit_quorum",
        "Replicas required for quorum commit (f+1 of the 2f+1 roster)",
    ),
    (
        "repl_commit_floor",
        "repro_repl_commit_floor",
        "Highest quorum-committed serial in the replicated log",
    ),
    (
        "net_outbound_queue",
        "repro_net_outbound_queue_depth",
        "Outbound frames parked in per-peer bounded send queues",
    ),
    (
        "fleet_live_workers",
        "repro_fleet_live_workers",
        "Workers holding a current lease with the fleet router",
    ),
    (
        "doc_space_nodes",
        "repro_doc_state_space_nodes",
        "Live state-space nodes per served document (the active window)",
    ),
    (
        "serialized_order_len",
        "repro_serialized_order_len",
        "Serialised-order entries retained past the GC base per document",
    ),
    (
        "wal_bytes_on_disk",
        "repro_wal_bytes_on_disk",
        "Size of the per-document write-ahead log file on disk, in bytes",
    ),
    (
        "gc_floor",
        "repro_gc_floor_serial",
        "Active-window GC floor: highest serial pruned from live state",
    ),
)

#: attribute name -> (metric name, help, buckets)
CANONICAL_HISTOGRAMS: Tuple[Tuple[str, str, str, Tuple[float, ...]], ...] = (
    (
        "net_rtt",
        "repro_net_rtt_seconds",
        "Client round-trip time: edit shipped to own echo applied",
        DEFAULT_SECONDS_BUCKETS,
    ),
    (
        "serialise_duration",
        "repro_server_serialise_seconds",
        "Server time to serialise + integrate one client operation",
        FAST_SECONDS_BUCKETS,
    ),
    (
        "wal_compaction_duration",
        "repro_wal_compaction_seconds",
        "Wall-clock duration of one WAL compaction",
        FAST_SECONDS_BUCKETS,
    ),
    (
        "wal_recovery_duration",
        "repro_wal_recovery_seconds",
        "Wall-clock duration of one WAL recovery (snapshot + replay)",
        FAST_SECONDS_BUCKETS,
    ),
    (
        "css_integrate_duration",
        "repro_css_integrate_duration_seconds",
        "Wall-clock duration of one Algorithm 1 integration",
        FAST_SECONDS_BUCKETS,
    ),
    (
        "failover_latency",
        "repro_failover_seconds",
        "Primary loss detected to first op committed by the new primary",
        DEFAULT_SECONDS_BUCKETS,
    ),
)


#: Canonical instruments that carry a ``doc`` label: the wire-layer
#: series a multi-document worker splits per document.  Call sites MUST
#: address these through ``.labels(doc)`` — a labelled parent's own
#: ``inc()``/``set()`` never reaches the exposition.  The label value is
#: ``""`` for traffic with no document context (admin, replication).
DOC_LABELLED = frozenset(
    {
        "net_frames_in",
        "net_frames_out",
        "net_connected_clients",
        "net_outbound_queue",
        "net_frames_coalesced",
        "net_state_transfers",
        "doc_space_nodes",
        "serialized_order_len",
        "wal_bytes_on_disk",
        "gc_floor",
    }
)


class Obs:
    """The live observability handle: registry + canonical set + traces."""

    enabled = True

    def __init__(self, trace_capacity: int = DEFAULT_CAPACITY) -> None:
        self.registry = MetricsRegistry()
        self.trace_ring = TraceRing(trace_capacity)
        for attr, name, help_text in CANONICAL_COUNTERS:
            labelnames = ("doc",) if attr in DOC_LABELLED else ()
            setattr(
                self,
                attr,
                self.registry.counter(name, help_text, labelnames=labelnames),
            )
        for attr, name, help_text in CANONICAL_GAUGES:
            labelnames = ("doc",) if attr in DOC_LABELLED else ()
            setattr(
                self,
                attr,
                self.registry.gauge(name, help_text, labelnames=labelnames),
            )
        for attr, name, help_text, buckets in CANONICAL_HISTOGRAMS:
            setattr(
                self,
                attr,
                self.registry.histogram(name, help_text, buckets=buckets),
            )

    def trace(self, kind: str, **fields: Any) -> None:
        """Append one structured event to the trace ring."""
        self.trace_ring.append(kind, fields)

    def snapshot(self, include_trace: bool = False) -> Dict[str, Any]:
        """JSON-able snapshot of every instrument (optionally + traces)."""
        snapshot = self.registry.snapshot()
        if include_trace:
            snapshot["trace"] = self.trace_ring.events()
        return snapshot

    def render(self) -> str:
        """Prometheus text exposition of the live registry."""
        return render_snapshot(self.registry.snapshot())

    def trace_events(self) -> List[Dict[str, Any]]:
        return self.trace_ring.events()


class _NoopInstrument:
    """One shared instrument that absorbs every call."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values: str) -> "_NoopInstrument":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


NOOP_INSTRUMENT = _NoopInstrument()


class NoopObs:
    """The disabled handle: same surface, nothing recorded, ~zero cost."""

    enabled = False
    registry: Optional[MetricsRegistry] = None
    trace_ring: Optional[TraceRing] = None

    def trace(self, kind: str, **fields: Any) -> None:
        pass

    def snapshot(self, include_trace: bool = False) -> Dict[str, Any]:
        return {"version": 1, "metrics": []}

    def render(self) -> str:
        return ""

    def trace_events(self) -> List[Dict[str, Any]]:
        return []


# Every canonical instrument is a *class* attribute on NoopObs, so the
# disabled fast path is a plain attribute load — no __getattr__ dispatch.
for _attr, _name, _help in CANONICAL_COUNTERS + CANONICAL_GAUGES:
    setattr(NoopObs, _attr, NOOP_INSTRUMENT)
for _attr, _name, _help, _buckets in CANONICAL_HISTOGRAMS:
    setattr(NoopObs, _attr, NOOP_INSTRUMENT)
del _attr, _name, _help, _buckets
