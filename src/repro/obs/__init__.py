"""repro.obs — metrics, tracing, and Prometheus-style exposition.

The observability subsystem for the deployed runtime: a metrics registry
(counters, gauges, histograms with fixed bucket boundaries so
cross-process merges are exact), a structured trace-event ring buffer,
and Prometheus text exposition — all behind one process-global handle
that is a no-op singleton until :func:`enable` is called.

Usage, in three layers:

* **Instrumented code** calls :func:`get_obs` once (at object
  construction) and pokes named instruments on the handle; when
  observability is off those calls hit the shared no-op handle and cost
  ~nothing (see :mod:`repro.obs.handle`).
* **Processes** opt in at startup: the ``repro serve`` and
  ``repro connect`` CLI verbs call :func:`enable` before building their
  runtime objects; library embedders and the simulator default to off.
* **Consumers** scrape: the ``metrics`` admin-plane command on a running
  :class:`~repro.net.server.NetServer` (and the ``repro metrics`` CLI
  verb wrapping it) return Prometheus text exposition, and the load
  generator merges per-client snapshots into its report with
  :func:`merge_snapshots`.
"""

from __future__ import annotations

from typing import Union

from repro.obs.handle import (
    CANONICAL_COUNTERS,
    CANONICAL_GAUGES,
    CANONICAL_HISTOGRAMS,
    DOC_LABELLED,
    FAST_SECONDS_BUCKETS,
    NOOP_INSTRUMENT,
    NoopObs,
    Obs,
)
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    merge_snapshots,
    render_snapshot,
    snapshot_total,
    snapshot_value,
)
from repro.obs.trace import DEFAULT_CAPACITY, TraceRing

__all__ = [
    "Obs",
    "NoopObs",
    "NOOP",
    "NOOP_INSTRUMENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRing",
    "ObservabilityError",
    "DEFAULT_SECONDS_BUCKETS",
    "FAST_SECONDS_BUCKETS",
    "DEFAULT_CAPACITY",
    "CANONICAL_COUNTERS",
    "CANONICAL_GAUGES",
    "CANONICAL_HISTOGRAMS",
    "DOC_LABELLED",
    "get_obs",
    "enable",
    "disable",
    "is_enabled",
    "merge_snapshots",
    "render_snapshot",
    "snapshot_total",
    "snapshot_value",
]

#: The disabled singleton every process starts with.
NOOP = NoopObs()

_handle: Union[Obs, NoopObs] = NOOP


def get_obs() -> Union[Obs, NoopObs]:
    """The process-global handle (the no-op singleton until enabled)."""
    return _handle


def enable(trace_capacity: int = DEFAULT_CAPACITY, reset: bool = False) -> Obs:
    """Switch observability on; idempotent unless ``reset`` is given.

    Must run *before* the instrumented objects are constructed — call
    sites bind the handle once, at construction (which is what makes the
    disabled fast path free).  ``reset=True`` discards a live handle's
    instruments and starts fresh, which tests use for isolation.
    """
    global _handle
    if reset or not _handle.enabled:
        _handle = Obs(trace_capacity)
    return _handle


def disable() -> None:
    """Switch observability off (back to the shared no-op singleton)."""
    global _handle
    _handle = NOOP


def is_enabled() -> bool:
    return _handle.enabled
