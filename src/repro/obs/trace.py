"""The structured trace-event ring buffer.

Metrics answer "how many / how fast"; traces answer "what happened just
before things went wrong".  A :class:`TraceRing` keeps the most recent
``capacity`` structured events — a monotone sequence number, a wall-clock
timestamp, a dot-separated ``kind`` and free-form fields — and overwrites
the oldest on overflow, so a long-lived server pays a fixed memory cost
no matter how chatty its lifetime was.

Events are plain dicts, JSON-able by construction, so a ring can ride
along a metrics snapshot or an admin-plane reply unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, List

from repro.obs.registry import ObservabilityError

DEFAULT_CAPACITY = 4096


class TraceRing:
    """A bounded ring of structured trace events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"trace ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._next_seq = 1

    def append(self, kind: str, fields: Dict[str, Any]) -> None:
        """Record one event; the oldest event falls off a full ring."""
        self._events.append(
            {
                "seq": self._next_seq,
                "ts": time.time(),
                "kind": kind,
                "fields": dict(fields),
            }
        )
        self._next_seq += 1

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (copies, JSON-able)."""
        return [dict(event) for event in self._events]

    @property
    def total(self) -> int:
        """Events ever appended (retained + overwritten)."""
        return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wrap-around."""
        return self.total - len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
