"""The metrics registry: counters, gauges, histograms, exposition.

Three instrument kinds, modelled on the Prometheus data model but pure
stdlib:

* :class:`Counter` — a monotonically increasing float;
* :class:`Gauge` — a float that can go up and down;
* :class:`Histogram` — observations bucketed against **fixed, explicit
  bucket boundaries**.  Fixing the boundaries at creation (instead of
  adapting them to the data) is what makes cross-process merge *exact*:
  two histograms with the same boundaries merge by summing their bucket
  counts, with zero approximation error.  This is the property the
  load generator leans on when it folds per-client snapshots into one
  fleet-wide report.

Instruments may carry labels (``labelnames`` at creation,
:meth:`~_Metric.labels` to get the per-label-value child).  Children are
ordinary instruments; the parent is only a factory plus sample
aggregator.

Every instrument lives in a :class:`MetricsRegistry`; ``snapshot()``
serialises the whole registry to a plain JSON-able dict, and
:func:`render_snapshot` turns any snapshot — live or merged — into
Prometheus text exposition format (version 0.0.4: ``# HELP`` / ``# TYPE``
comments, cumulative ``_bucket{le="..."}`` series, ``_sum`` and
``_count``).

Registries are deliberately not thread-safe: every runtime in this
repository is either single-threaded or a single asyncio event loop, and
cross-process aggregation happens through snapshots, never shared state.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds, in seconds — wide enough for
#: localhost RTTs (sub-millisecond) through WAN reconnect storms.
DEFAULT_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class ObservabilityError(ReproError):
    """Misuse of the metrics registry (type clash, bucket mismatch...)."""


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(
    labelnames: Sequence[str], labelvalues: Sequence[str]
) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Metric:
    """Common machinery: identity, labels, child management."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ObservabilityError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        #: labelvalues tuple -> child instrument (labelled parents only)
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def _new_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def labels(self, *values: str) -> "_Metric":
        """The child instrument for one concrete label-value tuple."""
        if not self.labelnames:
            raise ObservabilityError(
                f"{self.name} was created without labels"
            )
        if len(values) != len(self.labelnames):
            raise ObservabilityError(
                f"{self.name} expects {len(self.labelnames)} label values "
                f"({self.labelnames}), got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _own_sample(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def samples(self) -> List[Dict[str, Any]]:
        """All concrete samples: ``[{"labels": [...], ...values...}]``."""
        if self.labelnames:
            rows = []
            for key in sorted(self._children):
                sample = self._children[key]._own_sample()
                sample["labels"] = list(key)
                rows.append(sample)
            return rows
        sample = self._own_sample()
        sample["labels"] = []
        return [sample]

    def to_obj(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": self.samples(),
        }


class Counter(_Metric):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        if self.labelnames:
            return sum(c._value for c in self._children.values())
        return self._value

    def _own_sample(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge(_Metric):
    """A value that can go up and down (queue depths, live counts)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        if self.labelnames:
            return sum(c._value for c in self._children.values())
        return self._value

    def _own_sample(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram(_Metric):
    """Observations against fixed bucket boundaries.

    ``buckets`` are the finite upper bounds (``le`` semantics: an
    observation equal to a bound lands in that bound's bucket); the
    implicit ``+Inf`` bucket catches the overflow.  Counts are stored
    per-bucket (not cumulative) and cumulated only at render time, which
    keeps :func:`merge_snapshots` a plain element-wise sum.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {buckets!r}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        if self.labelnames:
            return sum(c._count for c in self._children.values())
        return self._count

    @property
    def sum(self) -> float:
        if self.labelnames:
            return sum(c._sum for c in self._children.values())
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Returns the upper bound of the bucket holding the target rank
        (the last finite bound for overflow observations) — the usual
        fixed-bucket estimate: exact to bucket resolution, merge-stable.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} not in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.buckets[-1]
        return self.buckets[-1]  # pragma: no cover - defensive

    def _own_sample(self) -> Dict[str, Any]:
        return {
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }

    def to_obj(self) -> Dict[str, Any]:
        obj = super().to_obj()
        obj["buckets"] = list(self.buckets)
        return obj


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ObservabilityError(
                    f"{name} is already registered as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            wanted_buckets = kwargs.get("buckets")
            if wanted_buckets is not None and tuple(
                float(b) for b in wanted_buckets
            ) != existing.buckets:
                raise ObservabilityError(
                    f"{name} is already registered with buckets "
                    f"{existing.buckets}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help=help, labelnames=labelnames
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, help=help, labelnames=labelnames
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Serialise every instrument to a JSON-able dict."""
        return {
            "version": SNAPSHOT_VERSION,
            "metrics": [m.to_obj() for m in self._metrics.values()],
        }

    def render(self) -> str:
        """Prometheus text exposition of the live registry."""
        return render_snapshot(self.snapshot())


# ----------------------------------------------------------------------
# Snapshot-level operations (work on live or merged snapshots alike)
# ----------------------------------------------------------------------
def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render any snapshot to Prometheus text exposition format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        labelnames = metric.get("labelnames", [])
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for sample in metric["samples"]:
            labelstr = _format_labels(labelnames, sample.get("labels", []))
            if metric["type"] == "histogram":
                cumulative = 0
                bounds = [*metric["buckets"], "+Inf"]
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    le = (
                        _format_value(bound)
                        if bound != "+Inf"
                        else "+Inf"
                    )
                    bucket_labels = _format_labels(
                        [*labelnames, "le"],
                        [*sample.get("labels", []), le],
                    )
                    lines.append(
                        f"{name}_bucket{bucket_labels} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{labelstr} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{labelstr} {sample['count']}")
            else:
                lines.append(
                    f"{name}{labelstr} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge snapshots from several processes into one, exactly.

    Counters and gauges sum per ``(name, labels)``; histograms sum their
    per-bucket counts element-wise, which is exact because every process
    uses the same fixed boundaries (a boundary mismatch raises — merging
    approximations silently is how dashboards lie).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for snapshot in snapshots:
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ObservabilityError(
                f"unsupported snapshot version {snapshot.get('version')!r}"
            )
        for metric in snapshot.get("metrics", []):
            name = metric["name"]
            target = merged.get(name)
            if target is None:
                target = {
                    "name": name,
                    "type": metric["type"],
                    "help": metric.get("help", ""),
                    "labelnames": list(metric.get("labelnames", [])),
                    "samples": [],
                }
                if metric["type"] == "histogram":
                    target["buckets"] = list(metric["buckets"])
                merged[name] = target
                order.append(name)
            if target["type"] != metric["type"]:
                raise ObservabilityError(
                    f"{name} is a {metric['type']} in one snapshot and a "
                    f"{target['type']} in another"
                )
            if metric["type"] == "histogram" and list(
                metric["buckets"]
            ) != target["buckets"]:
                raise ObservabilityError(
                    f"{name} bucket boundaries differ across snapshots; "
                    "an exact merge is impossible"
                )
            by_labels = {
                tuple(s.get("labels", [])): s for s in target["samples"]
            }
            for sample in metric["samples"]:
                key = tuple(sample.get("labels", []))
                existing = by_labels.get(key)
                if existing is None:
                    copied = dict(sample)
                    copied["labels"] = list(key)
                    if "counts" in copied:
                        copied["counts"] = list(copied["counts"])
                    target["samples"].append(copied)
                    by_labels[key] = copied
                elif metric["type"] == "histogram":
                    existing["counts"] = [
                        a + b
                        for a, b in zip(existing["counts"], sample["counts"])
                    ]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                else:
                    existing["value"] += sample["value"]
    return {
        "version": SNAPSHOT_VERSION,
        "metrics": [merged[name] for name in order],
    }


def snapshot_value(
    snapshot: Dict[str, Any],
    name: str,
    labels: Sequence[str] = (),
) -> Optional[float]:
    """Read one counter/gauge sample out of a snapshot (``None`` if absent).

    For histograms this returns the observation *count* — the scalar a
    report or assertion usually wants.
    """
    wanted = list(labels)
    for metric in snapshot.get("metrics", []):
        if metric["name"] != name:
            continue
        for sample in metric["samples"]:
            if sample.get("labels", []) == wanted:
                if metric["type"] == "histogram":
                    return float(sample["count"])
                return float(sample["value"])
    return None


def snapshot_total(snapshot: Dict[str, Any], name: str) -> Optional[float]:
    """Sum every sample of one metric across all its label values.

    The label-blind companion to :func:`snapshot_value`: a labelled
    series (``repro_net_frames_received_total{doc="..."}``) has no
    unlabelled sample, so a report that wants "frames, total" sums the
    children.  Histograms contribute their observation counts.  Returns
    ``None`` when the metric is absent from the snapshot entirely.
    """
    for metric in snapshot.get("metrics", []):
        if metric["name"] != name:
            continue
        key = "count" if metric["type"] == "histogram" else "value"
        return float(sum(s[key] for s in metric["samples"]))
    return None
