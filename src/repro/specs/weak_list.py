"""The weak list specification ``Aweak`` (Definition 3.3).

An abstract execution satisfies the weak list specification iff there is a
list order ``lo`` such that (1) every event returns exactly the visible
inserted-but-not-deleted elements, ordered consistently with ``lo``, with
inserts landing at their requested position, and (2) ``lo`` is irreflexive
and transitive/total on every returned list.

The checker is sound *and complete*: condition 1b forces ``lo`` to contain
the order of every returned list, so the union of those orders
(Definition 8.1) is the minimal candidate; it works iff all returned lists
are pairwise compatible (Lemma 8.3) — two lists disagreeing on common
elements ``a``, ``b`` would force ``(a,b)`` and ``(b,a)`` into ``lo``, and
transitivity on either list would then break irreflexivity.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.document.elements import Element
from repro.model.abstract import AbstractExecution
from repro.model.events import DoEvent
from repro.specs.list_order import build_list_order
from repro.specs.report import CheckResult


def check_element_conditions(
    abstract: AbstractExecution,
    result: CheckResult,
    initial_elements: Tuple[Element, ...] = (),
) -> None:
    """Conditions 1a and 1c, shared by the weak and strong checkers.

    ``initial_elements`` are elements present in every replica's document
    before the execution starts (the paper's worked examples begin from
    lists like ``"abc"``); they count as inserted-and-visible everywhere.
    """
    for event in abstract.history:
        result.events_checked += 1
        _check_contents(abstract, event, result, initial_elements)
        _check_insert_position(event, result)


def _check_contents(
    abstract: AbstractExecution,
    event: DoEvent,
    result: CheckResult,
    initial_elements: Tuple[Element, ...] = (),
) -> None:
    """Condition 1a: ``w`` is exactly visible inserts minus deletes."""
    visible = set(abstract.updates_visible_to(event))
    if event.is_update:
        visible.add(event.eid)  # ``≤vis`` includes the event itself
    inserted: Set[Element] = set(initial_elements)
    deleted: Set[Element] = set()
    for eid in visible:
        update = abstract.event_by_eid(eid)
        assert update.operation is not None
        if update.operation.is_insert:
            inserted.add(update.operation.element)
        elif update.operation.is_delete:
            deleted.add(update.operation.element)
    expected = inserted - deleted
    actual = set(event.returned)
    if actual != expected:
        missing = expected - actual
        extra = actual - expected
        description = (
            f"event {event.eid} at {event.replica} returned "
            f"{event.returned_string()!r} but the visible updates imply "
            f"{{{', '.join(sorted(str(e.value) for e in expected))}}}"
        )
        if missing:
            description += f"; missing {sorted(str(e.value) for e in missing)}"
        if extra:
            description += f"; extra {sorted(str(e.value) for e in extra)}"
        result.add("1a", description, witness=event)
    if len(actual) != len(event.returned):
        result.add(
            "1a",
            f"event {event.eid} returned duplicate elements",
            witness=event,
        )


def _check_insert_position(event: DoEvent, result: CheckResult) -> None:
    """Condition 1c: ``op = Ins(a, k)`` implies ``a = w[min(k, n-1)]``."""
    if not event.is_update or not event.operation.is_insert:
        return
    operation = event.operation
    assert operation.element is not None and operation.position is not None
    length = len(event.returned)
    if length == 0:
        result.add(
            "1c",
            f"insert event {event.eid} returned an empty list",
            witness=event,
        )
        return
    landing = min(operation.position, length - 1)
    if event.returned[landing] != operation.element:
        result.add(
            "1c",
            (
                f"insert event {event.eid} requested position "
                f"{operation.position} but element {operation.element.pretty()} "
                f"is not at index {landing} of {event.returned_string()!r}"
            ),
            witness=event,
        )


def _first_incompatibility(
    events: List[DoEvent],
) -> Tuple[DoEvent, DoEvent, Tuple[Element, Element]]:
    """Locate a pair of events whose returned lists are incompatible.

    Only called when an incompatibility is known to exist; scans pairwise
    (the fast screening is done by :func:`check_weak_list` via a reversed-
    pair lookup on the union order).
    """
    positions: List[Dict[Element, int]] = [
        {element: index for index, element in enumerate(event.returned)}
        for event in events
    ]
    for i in range(len(events)):
        for j in range(i + 1, len(events)):
            first, second = positions[i], positions[j]
            common = [e for e in events[i].returned if e in second]
            for x in range(len(common)):
                for y in range(x + 1, len(common)):
                    if second[common[x]] > second[common[y]]:
                        return events[i], events[j], (common[x], common[y])
    raise AssertionError("incompatibility was detected but cannot be located")


def check_weak_list(
    abstract: AbstractExecution,
    thorough: bool = False,
    initial_elements: Tuple[Element, ...] = (),
) -> CheckResult:
    """Check membership in ``Aweak``.

    ``thorough=True`` additionally re-verifies condition 2 directly on the
    constructed list order (irreflexive, transitive and total on each
    returned list) instead of relying on the compatibility argument alone —
    slower, used by the test-suite to validate the checker itself.
    ``initial_elements`` declares a non-empty starting document (see
    :func:`check_element_conditions`).
    """
    result = CheckResult("weak list specification (Def. 3.3)")
    check_element_conditions(abstract, result, initial_elements)

    order = build_list_order(event.returned for event in abstract.history)

    # Pairwise compatibility ⟺ no reversed pair in the union order.
    incompatible = any(
        order.ordered(second, first) for first, second in order.pairs()
    )
    if incompatible:
        first_event, second_event, (a, b) = _first_incompatibility(
            abstract.history
        )
        result.add(
            "2 (compatibility)",
            (
                f"incompatible states: event {first_event.eid} returned "
                f"{first_event.returned_string()!r} but event "
                f"{second_event.eid} returned "
                f"{second_event.returned_string()!r} — common elements "
                f"{a.pretty()} and {b.pretty()} appear in opposite orders"
            ),
            witness=(first_event, second_event, a, b),
        )

    if thorough:
        if not order.is_irreflexive():
            result.add("2", "list order is not irreflexive")
        for event in abstract.history:
            returned = list(event.returned)
            if not order.is_total_on(returned):
                result.add(
                    "2",
                    f"list order not total on the list of event {event.eid}",
                    witness=event,
                )
            if not incompatible and not order.is_transitive_on(returned):
                result.add(
                    "2",
                    f"list order not transitive on the list of event "
                    f"{event.eid}",
                    witness=event,
                )
    return result
