"""The strong list specification ``Astrong`` (Definition 3.2).

Beyond the weak specification, the strong one requires a *single* list
order ``lo`` that is transitive, irreflexive and total over **all**
elements ever inserted — orderings relative to deleted elements must hold
even after the deletion.

Completeness of the checker: condition 1b forces ``lo`` to contain the
order of every returned list, so a suitable ``lo`` exists iff the union of
those orders is acyclic (any linear extension is then total, transitive
and irreflexive).  The checker therefore reports the cycle as the witness;
for the paper's Figure 7 it is exactly ``a → x → b → a``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.document.elements import Element
from repro.model.abstract import AbstractExecution
from repro.specs.list_order import build_list_order
from repro.specs.report import CheckResult
from repro.specs.weak_list import check_element_conditions


def check_strong_list(
    abstract: AbstractExecution,
    initial_elements: Tuple[Element, ...] = (),
) -> CheckResult:
    """Check membership in ``Astrong``.

    ``initial_elements`` declares a non-empty starting document (see
    :func:`~repro.specs.weak_list.check_element_conditions`).
    """
    result = CheckResult("strong list specification (Def. 3.2)")
    check_element_conditions(abstract, result, initial_elements)

    order = build_list_order(event.returned for event in abstract.history)
    cycle = order.find_cycle()
    if cycle is not None:
        rendering = " -> ".join(e.pretty() for e in cycle + cycle[:1])
        result.add(
            "2 (total order)",
            (
                "no total list order exists: the returned lists force the "
                f"cycle {rendering}"
            ),
            witness=cycle,
        )
    return result


def witness_list_order(
    abstract: AbstractExecution,
) -> Optional[List[Element]]:
    """A concrete ``lo`` witnessing ``Astrong`` membership, if one exists.

    Returns a topological ordering of ``elems(A)`` consistent with every
    returned list (i.e. the total order as a list), or ``None`` when the
    constraints are cyclic.  Useful for tests that want to exhibit the
    order, e.g. for RGA executions.
    """
    order = build_list_order(event.returned for event in abstract.history)
    elements: Set[Element] = set(abstract.elems()) | order.elements()
    successors: Dict[Element, Set[Element]] = {e: set() for e in elements}
    indegree: Dict[Element, int] = {e: 0 for e in elements}
    for first, second in order.pairs():
        if second not in successors[first]:
            successors[first].add(second)
            indegree[second] += 1

    # Kahn's algorithm with deterministic tie-breaking on element identity.
    ready = sorted(
        (e for e in elements if indegree[e] == 0),
        key=lambda e: (str(e.value), e.opid),
    )
    topological: List[Element] = []
    while ready:
        node = ready.pop(0)
        topological.append(node)
        inserted_any = False
        for child in successors[node]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
                inserted_any = True
        if inserted_any:
            ready.sort(key=lambda e: (str(e.value), e.opid))
    if len(topological) != len(elements):
        return None
    return topological
