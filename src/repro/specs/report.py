"""Verdict objects returned by the specification checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class Violation:
    """One reason an abstract execution fails a specification."""

    condition: str
    description: str
    witness: Optional[Any] = None

    def __str__(self) -> str:
        return f"[{self.condition}] {self.description}"


@dataclass
class CheckResult:
    """Outcome of checking one specification against one execution."""

    specification: str
    violations: List[Violation] = field(default_factory=list)
    events_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def add(self, condition: str, description: str, witness: Any = None) -> None:
        self.violations.append(Violation(condition, description, witness))

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.specification}: SATISFIED "
                f"({self.events_checked} events checked)"
            )
        lines = [
            f"{self.specification}: VIOLATED "
            f"({len(self.violations)} violation(s)):"
        ]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)
