"""The list order ``lo`` and state compatibility (Definitions 8.1, 8.2).

The paper's proof of Theorem 8.2 hinges on two notions made executable
here:

* the **list order** ``a lo b`` — "there exists an event with returned
  list ``w`` such that ``a`` appears before ``b`` in ``w``" (Def. 8.1);
* **state compatibility** — two returned lists agree on the relative order
  of all their common elements (Def. 8.2); Lemma 8.3 shows ``lo`` is
  irreflexive (as a strict order) iff all returned lists are pairwise
  compatible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.document.elements import Element


class ListOrder:
    """``lo`` built from a collection of returned lists, with queries."""

    def __init__(self) -> None:
        # successors[a] = elements that some list places after a.
        self._successors: Dict[Element, Set[Element]] = {}
        self._elements: Set[Element] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_list(self, returned: Sequence[Element]) -> None:
        """Record every ordered pair of one returned list."""
        for index, earlier in enumerate(returned):
            self._elements.add(earlier)
            bucket = self._successors.setdefault(earlier, set())
            for later in returned[index + 1 :]:
                bucket.add(later)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def elements(self) -> Set[Element]:
        return set(self._elements)

    def ordered(self, first: Element, second: Element) -> bool:
        """``first lo second``."""
        return second in self._successors.get(first, ())

    def pairs(self) -> Iterable[Tuple[Element, Element]]:
        for first, bucket in self._successors.items():
            for second in bucket:
                yield first, second

    def is_irreflexive(self) -> bool:
        return all(
            first not in bucket for first, bucket in self._successors.items()
        )

    def is_total_on(self, elements: Sequence[Element]) -> bool:
        """Total on ``elements``: every distinct pair ordered some way."""
        for i, first in enumerate(elements):
            for second in elements[i + 1 :]:
                if not (self.ordered(first, second) or self.ordered(second, first)):
                    return False
        return True

    def is_transitive_on(self, elements: Sequence[Element]) -> bool:
        """Transitive when restricted to ``elements``."""
        element_set = set(elements)
        for first in elements:
            for second in self._successors.get(first, ()):
                if second not in element_set:
                    continue
                for third in self._successors.get(second, ()):
                    if third in element_set and not self.ordered(first, third):
                        return False
        return True

    def find_cycle(self) -> Optional[List[Element]]:
        """A directed cycle in ``lo`` if one exists, else ``None``.

        A cycle is how the strong-list counterexample manifests: Figure 7
        yields ``lo ⊇ {(a,x), (x,b), (b,a)}``.
        """
        return find_cycle(self._successors)


def build_list_order(returned_lists: Iterable[Sequence[Element]]) -> ListOrder:
    """Build Definition 8.1's ``lo`` from all returned lists."""
    order = ListOrder()
    for returned in returned_lists:
        order.add_list(returned)
    return order


def compatible(
    first: Sequence[Element], second: Sequence[Element]
) -> Optional[Tuple[Element, Element]]:
    """Check state compatibility (Definition 8.2).

    Returns ``None`` when the two lists are compatible, or a witness pair
    ``(a, b)`` of common elements such that ``a`` precedes ``b`` in
    ``first`` but ``b`` precedes ``a`` in ``second``.
    """
    position_in_second = {element: i for i, element in enumerate(second)}
    common = [element for element in first if element in position_in_second]
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            if position_in_second[common[i]] > position_in_second[common[j]]:
                return (common[i], common[j])
    return None


def all_pairwise_compatible(
    returned_lists: Sequence[Sequence[Element]],
) -> Optional[Tuple[int, int, Tuple[Element, Element]]]:
    """First incompatibility among the lists, or ``None``.

    Returns ``(i, j, (a, b))`` where lists ``i`` and ``j`` disagree on the
    order of common elements ``a`` and ``b``.
    """
    for i in range(len(returned_lists)):
        for j in range(i + 1, len(returned_lists)):
            witness = compatible(returned_lists[i], returned_lists[j])
            if witness is not None:
                return (i, j, witness)
    return None


def find_cycle(successors: Dict[Element, Set[Element]]) -> Optional[List[Element]]:
    """Find any directed cycle in an adjacency mapping.

    Iterative DFS with colouring; returns the cycle as a list of elements
    (first element repeated implicitly), or ``None`` when acyclic.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Element, int] = {}
    parent: Dict[Element, Optional[Element]] = {}

    for root in successors:
        if colour.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[Element, Iterable[Element]]] = [
            (root, iter(successors.get(root, ())))
        ]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state == GREY:
                    # Found a back-edge: child .. node is a cycle.
                    cycle = [node]
                    walker: Optional[Element] = parent[node]
                    while walker is not None and cycle[-1] != child:
                        cycle.append(walker)
                        walker = parent[walker]
                    if cycle[-1] != child:
                        cycle.append(child)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None
