"""Executable replicated-list specifications (Section 3).

Each checker takes an :class:`~repro.model.abstract.AbstractExecution` and
returns a :class:`~repro.specs.report.CheckResult` with a verdict and, on
failure, a human-readable witness — the paper's counterexamples (Figure 7,
Figure 8) come out of these witnesses verbatim.
"""

from repro.specs.convergence import check_convergence
from repro.specs.list_order import (
    ListOrder,
    build_list_order,
    compatible,
    find_cycle,
)
from repro.specs.report import CheckResult, Violation
from repro.specs.strong_list import check_strong_list
from repro.specs.weak_list import check_weak_list

__all__ = [
    "check_convergence",
    "check_strong_list",
    "check_weak_list",
    "ListOrder",
    "build_list_order",
    "compatible",
    "find_cycle",
    "CheckResult",
    "Violation",
]
