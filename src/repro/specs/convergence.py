"""The convergence property ``Acp`` (Definition 3.1).

Two read events that observe the same set of list updates must return the
same list.  Following footnote 3 of the paper this is the *strong*
convergence property of Shapiro et al.; it is the specification Jupiter was
originally designed for, and Theorem 6.7 shows CSS satisfies it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.model.abstract import AbstractExecution
from repro.model.events import DoEvent
from repro.specs.report import CheckResult


def check_convergence(
    abstract: AbstractExecution, reads_only: bool = False
) -> CheckResult:
    """Check that equal visible-update sets imply equal returned lists.

    Definition 3.1 quantifies over ``Read`` events; since every operation
    in the replicated list returns the full list, by default we check the
    stronger statement over *all* do events (any event doubles as a read
    of the state it produced).  Pass ``reads_only=True`` for the literal
    definition.
    """
    result = CheckResult("convergence property (Def. 3.1)")
    groups: Dict[FrozenSet[int], List[DoEvent]] = {}
    for event in abstract.history:
        if reads_only and not event.is_read:
            continue
        observed = abstract.updates_visible_to(event)
        if event.is_update:
            # The event's own update is part of what its return reflects;
            # include it so events are grouped by the state they expose.
            observed = observed | {event.eid}
        groups.setdefault(observed, []).append(event)
        result.events_checked += 1

    for observed, events in groups.items():
        reference = events[0]
        for event in events[1:]:
            if event.returned != reference.returned:
                result.add(
                    "Def 3.1",
                    (
                        f"events {reference.eid} and {event.eid} observe the "
                        f"same updates but return "
                        f"{reference.returned_string()!r} vs "
                        f"{event.returned_string()!r}"
                    ),
                    witness=(reference, event, observed),
                )
    return result


def final_states_by_replica(
    abstract: AbstractExecution,
) -> Dict[str, Tuple]:
    """The last returned list at each replica — a convenient convergence
    summary for tests and benchmarks."""
    finals: Dict[str, Tuple] = {}
    for event in abstract.history:
        finals[event.replica] = event.returned
    return finals
