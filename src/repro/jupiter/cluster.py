"""Schedule-driven execution of a client/server system (Section 4.4).

A :class:`Cluster` wires one server and ``n`` clients with FIFO channels,
executes a :class:`~repro.model.schedule.Schedule` step by step, records
the concrete :class:`~repro.model.execution.Execution` (do/send/receive
events), and keeps a per-replica *behaviour* log — the sequence of
(operation, document) pairs Definition 2.5 talks about — used by the
Theorem 7.1 equivalence experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import OpId, ReplicaId, SERVER_ID
from repro.document.list_document import ListDocument
from repro.errors import ScheduleError
from repro.jupiter.base import BaseClient, BaseServer
from repro.jupiter.broken import BrokenClient, BrokenServer
from repro.jupiter.classic import ClassicClient, ClassicServer
from repro.jupiter.cscw import CscwClient, CscwServer
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.vector import VectorClient, VectorServer
from repro.model.events import Message
from repro.model.execution import Execution, ExecutionRecorder
from repro.model.schedule import (
    ClientReceive,
    Drain,
    Generate,
    Read,
    Schedule,
    ServerReceive,
)


@dataclass(frozen=True)
class BehaviorEntry:
    """One step of a replica behaviour (Definition 2.5), for comparisons.

    ``action`` is ``"generate"``, ``"apply"`` (a remote operation was
    executed) or ``"ack"``; ``opid`` names the original operation;
    ``kind``/``position`` describe the executed (transformed) form; and
    ``document`` is the list contents afterwards.
    """

    action: str
    opid: Optional[OpId]
    kind: Optional[str]
    position: Optional[int]
    document: str


class Cluster:
    """One server + n clients + FIFO channels + an execution recorder."""

    def __init__(
        self,
        server: BaseServer,
        clients: Dict[ReplicaId, BaseClient],
        observe_after_receive: bool = True,
    ) -> None:
        self.server = server
        self.clients = dict(clients)
        self.observe_after_receive = observe_after_receive
        self.recorder = ExecutionRecorder()
        self._to_server: Dict[ReplicaId, Deque[Message]] = {
            name: deque() for name in clients
        }
        self._to_client: Dict[ReplicaId, Deque[Message]] = {
            name: deque() for name in clients
        }
        self.behaviors: Dict[ReplicaId, List[BehaviorEntry]] = {
            name: [] for name in [server.replica_id, *clients]
        }

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def generate(self, client_id: ReplicaId, spec) -> None:
        client = self._client(client_id)
        result = client.generate(spec)
        self.recorder.record_do(client_id, result.operation, result.returned)
        self._log(
            client_id, "generate", result.operation, client.document.as_string()
        )
        message = Message(client_id, SERVER_ID, result.outgoing)
        self.recorder.record_send(client_id, message)
        self._to_server[client_id].append(message)

    def server_receive(self, client_id: ReplicaId) -> Message:
        queue = self._to_server[self._require_client(client_id)]
        if not queue:
            raise ScheduleError(
                f"schedule delivers from {client_id} but its channel is empty"
            )
        message = queue.popleft()
        self.recorder.record_receive(SERVER_ID, message)
        outgoing = self.server.receive(client_id, message.payload)
        self._log(SERVER_ID, "apply", None, self.server.document.as_string())
        for recipient, payload in outgoing:
            reply = Message(SERVER_ID, recipient, payload)
            self.recorder.record_send(SERVER_ID, reply)
            self._to_client[recipient].append(reply)
        return message

    def client_receive(self, client_id: ReplicaId) -> Message:
        queue = self._to_client[self._require_client(client_id)]
        if not queue:
            raise ScheduleError(
                f"schedule delivers to {client_id} but its channel is empty"
            )
        message = queue.popleft()
        self.recorder.record_receive(client_id, message)
        client = self._client(client_id)
        result = client.receive(message.payload)
        if result.executed is not None:
            self._log(
                client_id, "apply", result.executed, client.document.as_string()
            )
            if self.observe_after_receive:
                # Expose the new state to the specification checkers as a
                # read: Definitions 3.2/3.3 quantify over *returned* lists,
                # and intermediate states like Figure 7's w13/w14 only
                # appear if somebody looks at them.
                self.recorder.record_do(client_id, None, result.returned)
        else:
            self._log(client_id, "ack", None, client.document.as_string())
        return message

    def read(self, replica_id: ReplicaId) -> None:
        if replica_id == self.server.replica_id:
            self.recorder.record_do(replica_id, None, self.server.read())
        else:
            self.recorder.record_do(replica_id, None, self._client(replica_id).read())

    def drain(self) -> None:
        """Deliver everything in flight, deterministically round-robin."""
        names = sorted(self.clients)
        while True:
            progressed = False
            for name in names:
                if self._to_server[name]:
                    self.server_receive(name)
                    progressed = True
            for name in names:
                if self._to_client[name]:
                    self.client_receive(name)
                    progressed = True
            if not progressed:
                return

    # ------------------------------------------------------------------
    # Whole-schedule execution
    # ------------------------------------------------------------------
    def run(self, schedule: Schedule) -> Execution:
        for step in schedule:
            if isinstance(step, Generate):
                self.generate(step.client, step.spec)
            elif isinstance(step, ServerReceive):
                self.server_receive(step.client)
            elif isinstance(step, ClientReceive):
                self.client_receive(step.client)
            elif isinstance(step, Read):
                self.read(step.replica)
            elif isinstance(step, Drain):
                self.drain()
            else:  # pragma: no cover - defensive
                raise ScheduleError(f"unknown schedule step {step!r}")
        return self.recorder.finish()

    # ------------------------------------------------------------------
    # Crash recovery (used by the fault-injected simulation loop)
    # ------------------------------------------------------------------
    def replace_client(
        self,
        client_id: ReplicaId,
        client: BaseClient,
        behaviors_keep: Optional[int] = None,
    ) -> None:
        """Swap in a replica restored from a checkpoint after a crash.

        The behaviour log is truncated to ``behaviors_keep`` entries —
        everything after the checkpoint was volatile and died with the
        process; the resync replay re-appends it deterministically, so
        the final log matches an uncrashed run of the same schedule
        (the Theorem 7.1 comparison the chaos harness performs).
        """
        self._require_client(client_id)
        if client.replica_id != client_id:
            raise ScheduleError(
                f"restored replica {client.replica_id} cannot replace "
                f"{client_id}"
            )
        self.clients[client_id] = client
        if behaviors_keep is not None:
            del self.behaviors[client_id][behaviors_keep:]

    def replace_server(self, server: BaseServer) -> None:
        """Swap in a server recovered from its write-ahead log.

        Unlike :meth:`replace_client` nothing is truncated: the WAL is
        written before every broadcast, so each behaviour entry the old
        server logged corresponds to a serialised operation the recovered
        server has replayed — the log and the behaviour record agree.
        """
        if server.replica_id != self.server.replica_id:
            raise ScheduleError(
                f"recovered server {server.replica_id} cannot replace "
                f"{self.server.replica_id}"
            )
        if sorted(server.clients) != sorted(self.server.clients):
            raise ScheduleError(
                "recovered server's client roster differs from the "
                "running cluster's"
            )
        self.server = server

    def queued_payload_from(self, client_id: ReplicaId, index: int) -> Any:
        """Peek (without delivering) one queued client-to-server payload.

        The replicated runner proposes an operation to the backup quorum
        *before* the server processes it: the payload stays queued until
        the record commits, at which point :meth:`server_receive` pops it
        — so the peek index is the client's proposed-but-uncommitted
        count.
        """
        queue = self._to_server[self._require_client(client_id)]
        if index >= len(queue):
            raise ScheduleError(
                f"peek at {client_id}[{index}] but only {len(queue)} "
                "messages are queued"
            )
        return queue[index].payload

    def queued_payloads_to(self, client_id: ReplicaId) -> Tuple[Any, ...]:
        """Payloads queued on one server-to-client channel, send order.

        Server crash recovery cross-checks these against the broadcasts
        rebuilt from the write-ahead log: the queue is the server's
        volatile send buffer, and the WAL must reproduce it exactly.
        """
        self._require_client(client_id)
        return tuple(m.payload for m in self._to_client[client_id])

    def resync_deliver(self, client_id: ReplicaId, payload) -> None:
        """Re-process one lost-and-recovered server message.

        Unlike :meth:`client_receive` this bypasses the channel queue and
        the execution recorder: the message was already received (and
        recorded) once before the crash — recovery only replays its
        *effect* on the restored replica, logging the behaviour entry the
        crash erased.
        """
        client = self._client(client_id)
        result = client.receive(payload)
        if result.executed is not None:
            self._log(
                client_id, "apply", result.executed, client.document.as_string()
            )
        else:
            self._log(client_id, "ack", None, client.document.as_string())

    # ------------------------------------------------------------------
    # Dynamic membership (CSS only; see repro.jupiter.membership)
    # ------------------------------------------------------------------
    def add_client(self, client_id: ReplicaId) -> None:
        """Admit a new client to a running CSS cluster.

        The server cuts a join snapshot (Proposition 6.6 makes its space
        the universal starting point); the newcomer is wired with fresh
        FIFO channels and starts receiving every subsequently serialised
        operation like any veteran.
        """
        from repro.jupiter.membership import client_from_join, server_admit

        if client_id in self.clients:
            raise ScheduleError(f"client {client_id} already exists")
        payload = server_admit(self.server, client_id)
        self.clients[client_id] = client_from_join(payload)
        self._to_server[client_id] = deque()
        self._to_client[client_id] = deque()
        self.behaviors[client_id] = []
        # The join snapshot is communication: record it as a message so
        # the happens-before relation carries everything the server had
        # processed into the newcomer's causal past (otherwise its first
        # read would return elements "invisible" to it and condition 1a
        # of the list specifications would flag a phantom violation).
        join_message = Message(SERVER_ID, client_id, payload)
        self.recorder.record_send(SERVER_ID, join_message)
        self.recorder.record_receive(client_id, join_message)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def documents(self) -> Dict[ReplicaId, str]:
        """Current document at every replica (server included)."""
        result = {self.server.replica_id: self.server.document.as_string()}
        for name, client in self.clients.items():
            result[name] = client.document.as_string()
        return result

    def in_flight(self) -> int:
        """Number of undelivered messages."""
        return sum(len(q) for q in self._to_server.values()) + sum(
            len(q) for q in self._to_client.values()
        )

    def pending_to_client(self, client_id: ReplicaId) -> int:
        """Undelivered server-to-client messages for one client."""
        return len(self._to_client[client_id])

    def pending_to_server(self, client_id: ReplicaId) -> int:
        """Undelivered client-to-server messages from one client."""
        return len(self._to_server[client_id])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _client(self, client_id: ReplicaId) -> BaseClient:
        try:
            return self.clients[client_id]
        except KeyError:
            raise ScheduleError(f"unknown client {client_id}") from None

    def _require_client(self, client_id: ReplicaId) -> ReplicaId:
        if client_id not in self.clients:
            raise ScheduleError(f"unknown client {client_id}")
        return client_id

    def _log(
        self,
        replica_id: ReplicaId,
        action: str,
        operation,
        document: str,
    ) -> None:
        self.behaviors[replica_id].append(
            BehaviorEntry(
                action=action,
                opid=operation.opid if operation is not None else None,
                kind=operation.kind.value if operation is not None else None,
                position=operation.position if operation is not None else None,
                document=document,
            )
        )


def _crdt_protocols():
    """CRDT baselines, imported lazily to avoid an import cycle
    (``repro.crdt`` builds on the same base-client machinery)."""
    from repro.crdt.logoot import LogootClient, LogootServer
    from repro.crdt.rga import RgaClient, RgaServer
    from repro.crdt.treedoc import TreedocClient, TreedocServer
    from repro.crdt.woot import WootClient, WootServer

    return {
        "rga": (RgaServer, RgaClient),
        "logoot": (LogootServer, LogootClient),
        "treedoc": (TreedocServer, TreedocClient),
        "woot": (WootServer, WootClient),
    }


_PROTOCOLS = {
    "css": (CssServer, CssClient),
    "cscw": (CscwServer, CscwClient),
    "classic": (ClassicServer, ClassicClient),
    "vector": (VectorServer, VectorClient),
    "broken": (BrokenServer, BrokenClient),
}


def make_cluster(
    protocol: str,
    clients: Sequence[ReplicaId],
    initial_text: str = "",
    observe_after_receive: bool = True,
    strict_cp1: bool = False,
) -> Cluster:
    """Build a ready-to-run cluster for one of the implemented protocols.

    ``protocol`` is ``"css"``, ``"cscw"``, ``"classic"`` or ``"broken"``.
    All replicas start from the same initial document built from
    ``initial_text`` (shared element identities, as the paper's worked
    examples assume).

    ``strict_cp1`` applies to the CSS family only: every replica's
    state-space verifies CP1 squares by full ordered-document comparison
    (the pre-optimisation behaviour) instead of the cheap
    length/fingerprint check.  ``"css-ref"`` goes further: the replicas
    run on :class:`~repro.jupiter.reference.ReferenceStateSpace`, the
    retained seed implementation, serving as the equivalence oracle and
    the perf-harness baseline.
    """
    initial = ListDocument.from_string(initial_text) if initial_text else None
    if protocol == "css-gc":
        # CSS with state-space garbage collection at every replica.
        server = CssServer(
            SERVER_ID, list(clients), initial, gc=True, strict_cp1=strict_cp1
        )
        client_map = {
            name: CssClient(
                name, initial, gc=True, peers=list(clients),
                strict_cp1=strict_cp1,
            )
            for name in clients
        }
        return Cluster(server, client_map, observe_after_receive)
    if protocol == "css-ref":
        from repro.jupiter.reference import ReferenceStateSpace

        server = CssServer(SERVER_ID, list(clients), initial)
        server.space = ReferenceStateSpace(server.oracle, initial)
        client_map = {}
        for name in clients:
            client = CssClient(name, initial)
            client.space = ReferenceStateSpace(client.oracle, initial)
            client_map[name] = client
        return Cluster(server, client_map, observe_after_receive)
    registry = dict(_PROTOCOLS)
    registry.update(_crdt_protocols())
    if protocol not in registry:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(registry) + ['css-gc', 'css-ref']}"
        )
    server_cls, client_cls = registry[protocol]
    if protocol == "css":
        server = CssServer(
            SERVER_ID, list(clients), initial, strict_cp1=strict_cp1
        )
        client_map = {
            name: CssClient(name, initial, strict_cp1=strict_cp1)
            for name in clients
        }
        return Cluster(server, client_map, observe_after_receive)
    server = server_cls(SERVER_ID, list(clients), initial)
    client_map = {name: client_cls(name, initial) for name in clients}
    return Cluster(server, client_map, observe_after_receive)
