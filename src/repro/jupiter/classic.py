"""Classic buffer-based Jupiter (Nichols et al., UIST'95 style).

The optimised implementation real systems deploy: no explicit state-spaces
at all.  Each client keeps only its document plus the buffer of *pending*
own operations (sent, echo not yet received), maintained in the
transformed form matching the current document; the server keeps, per
client, the *frontier* of transformed operations that client has not yet
acknowledged.  Incoming operations transform against the buffer/frontier
with the standard sequence transformation.

Behaviourally this is the CSCW protocol with the state-space bookkeeping
erased, so the equivalence tests run it side-by-side with CSS and CSCW
under identical schedules.  Operation contexts are still tracked exactly,
which means every buffered transformation is *checked*: a mis-aligned
buffer raises :class:`~repro.errors.ContextMismatchError` instead of
corrupting documents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.ordering import ServerOrderOracle
from repro.model.schedule import OpSpec
from repro.ot.operations import Operation
from repro.ot.sequences import transform_against_sequence


class ClassicClient(BaseClient):
    """Document + pending buffer; the minimal Jupiter client."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id)
        self._document = (initial_document or ListDocument()).copy()
        self._context: frozenset = frozenset()  # ids of processed ops
        self._pending: List[Operation] = []

    @property
    def document(self) -> ListDocument:
        return self._document

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def generate(self, spec: OpSpec) -> GenerateResult:
        operation = self._operation_from_spec(spec, self._context)
        operation.apply(self._document)
        self._context = self._context | {operation.opid}
        self._pending.append(operation)
        return GenerateResult(
            operation=operation,
            returned=self.read(),
            outgoing=ClientOperation(operation),
        )

    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, ServerOperation):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        if payload.origin == self.replica_id:
            # Echo/acknowledgement: the head of the pending buffer is now
            # stable at the server; it was executed locally long ago.
            if not self._pending or self._pending[0].opid != payload.operation.opid:
                raise ProtocolError(
                    f"{self.replica_id}: unexpected ack for "
                    f"{payload.operation.opid}"
                )
            self._pending.pop(0)
            return ReceiveResult(executed=None, returned=self.read())
        # Transform the incoming operation against the pending buffer and
        # the buffer against it (one sweep of CP1 squares).
        executed, shifted = transform_against_sequence(
            payload.operation, self._pending
        )
        self._pending = shifted
        executed.apply(self._document)
        self._context = self._context | {executed.opid}
        return ReceiveResult(executed=executed, returned=self.read())


class ClassicServer(BaseServer):
    """Document + per-client frontier; the minimal Jupiter server."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self._document = (initial_document or ListDocument()).copy()
        self._frontiers: Dict[ReplicaId, List[Operation]] = {
            client: [] for client in clients
        }

    @property
    def document(self) -> ListDocument:
        return self._document

    def frontier_size(self, client: ReplicaId) -> int:
        return len(self._frontiers[client])

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        if sender not in self._frontiers:
            raise ProtocolError(f"server: unknown client {sender}")
        operation = payload.operation
        serial = self.oracle.assign(operation.opid)
        prefix = self.oracle.serialized_before(serial)

        # Drop the frontier prefix the client had already seen when it
        # generated this operation (those ids are in its context); FIFO
        # guarantees the seen part is exactly a prefix.
        frontier = self._frontiers[sender]
        unseen_from = 0
        while (
            unseen_from < len(frontier)
            and frontier[unseen_from].opid in operation.context
        ):
            unseen_from += 1
        for stale in frontier[unseen_from:]:
            if stale.opid in operation.context:
                raise ProtocolError(
                    f"server: frontier for {sender} acknowledged out of "
                    f"order around {stale.opid}"
                )
        unseen = frontier[unseen_from:]

        transformed, shifted = transform_against_sequence(operation, unseen)
        self._frontiers[sender] = shifted
        transformed.apply(self._document)
        for client in self.clients:
            if client != sender:
                self._frontiers[client].append(transformed)

        broadcast = ServerOperation(
            operation=transformed, origin=sender, serial=serial, prefix=prefix
        )
        return [(client, broadcast) for client in self.clients]
