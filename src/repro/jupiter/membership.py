"""Dynamic membership: clients joining a running CSS system.

The original Jupiter model fixes the client set up front; a production
editor must admit collaborators mid-session.  Joining is built on two
facts this repository already establishes:

* Proposition 6.6 — the server's n-ary ordered state-space *is* the
  state-space every replica would have built, so a snapshot of it is a
  complete starting point for a newcomer;
* FIFO broadcasts — everything serialised after the snapshot reaches the
  newcomer in total order, exactly as it reaches the veterans.

``server_admit`` extends the roster and cuts a join payload (the
serialised space plus the serialisation order); ``client_from_join``
builds a fully initialised :class:`~repro.jupiter.css.CssClient` from it.
The newcomer's first generated operation has the server state at
admission as its context, which every veteran's space contains, so no
special-casing is needed anywhere else.

Limitations (documented, asserted): admission is for the plain ``css``
protocol; the ``css-gc`` variant would additionally need to re-announce
the roster to every client (a newcomer with an empty known-state must
reset everyone's pruning floor).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.ids import ReplicaId
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.persistence import (
    FORMAT_VERSION,
    opid_from_obj,
    opid_to_obj,
    space_from_obj,
    space_to_obj,
)


def server_admit(server: CssServer, client_id: ReplicaId) -> Dict[str, Any]:
    """Admit ``client_id`` and return its join payload.

    The payload contains everything the newcomer needs to be
    indistinguishable from a client that was present from the start and
    has processed every serialised operation.
    """
    if client_id in server.clients:
        raise ProtocolError(f"client {client_id} is already a member")
    if getattr(server, "_gc", False):
        raise ProtocolError(
            "dynamic admission is not supported with state-space GC "
            "enabled (the pruning floor would need a roster re-announce)"
        )
    server.clients.append(client_id)
    return {
        "version": FORMAT_VERSION,
        "client": client_id,
        "space": space_to_obj(server.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in server.oracle._serial_by_opid.items()
        ],
    }


def client_from_join(payload: Dict[str, Any]) -> CssClient:
    """Build a ready-to-run client from a join payload."""
    if payload.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported join payload version {payload.get('version')!r}"
        )
    client = CssClient(str(payload["client"]))
    for opid_obj, serial in payload["serials"]:
        client.oracle.record(opid_from_obj(opid_obj), int(serial))
    client.space = space_from_obj(payload["space"], client.oracle)
    return client
