"""Shared machinery for Jupiter state-spaces.

Both the 2D state-spaces of the CSCW protocol and the n-ary ordered
state-space of the CSS protocol are DAGs whose nodes are replica states —
identified by the :class:`frozenset` of original operation ids processed
(Definition 4.5) — and whose transitions are labelled with (original or
transformed) operations.  Every node also carries the list document at
that state, so the paper's per-state lists (``w13 = "ax"`` etc.) can be
read straight off the structure.

Two hot-path representations keep growth near-linear in operations
processed (see ``docs/ARCHITECTURE.md`` § "The hot path"):

* state keys are hash-consed through a per-space
  :class:`~repro.jupiter.keys.KeyInterner`, so the square construction
  never recomputes a union or re-hashes a key it has seen before;
* node documents are **lazy**: attaching a node records ``(parent, op)``
  in O(1) and the document materialises — once, cached — only when
  somebody reads it.  The always-on CP1 cross-check at square corners
  compares the O(1)-maintained length and content fingerprint; the full
  ordered-document comparison (and eager materialisation, i.e. the exact
  seed behaviour) is restored by constructing the space with
  ``strict_cp1=True``, which the verifier and the equivalence tests do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.ids import OpId, StateKey, format_opid_set
from repro.document.list_document import ListDocument
from repro.errors import PositionError, StateSpaceError, UnknownStateError
from repro.jupiter.keys import KeyInterner
from repro.ot.operations import Operation


@dataclass(frozen=True)
class Transition:
    """A labelled edge ``source --operation--> target``."""

    source: StateKey
    target: StateKey
    operation: Operation

    @property
    def org_id(self) -> OpId:
        """The original-operation identity of the label."""
        return self.operation.opid

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{format_opid_set(self.source)} --{self.operation}--> "
            f"{format_opid_set(self.target)}"
        )


def _content_fingerprint(document: ListDocument) -> int:
    """Order-insensitive fingerprint: XOR of the element-id hashes.

    The key of a state already determines *which* elements its document
    contains (inserts present minus deletes present); the fingerprint is
    the O(1)-maintainable shadow of that fact, used by the cheap CP1
    corner check.  Order divergence — the part CP1 is really about — is
    caught by the ``strict_cp1`` full comparison.
    """
    fp = 0
    for element in document:
        fp ^= hash(element.opid)
    return fp


class StateNode:
    """A state: its key, its document, and its outgoing transitions.

    The document is either *materialised* (``_doc`` set) or *pending*
    (``_parent``/``_op`` set): the document of the parent node with one
    operation applied.  Pending nodes cost O(1) to create; reading
    :attr:`document` materialises the chain up to the nearest
    materialised ancestor and caches the result here.  ``length`` and
    ``content_fp`` are always maintained eagerly in O(1).
    """

    __slots__ = ("key", "children", "length", "content_fp", "_doc", "_parent", "_op")

    def __init__(
        self,
        key: StateKey,
        document: Optional[ListDocument] = None,
        *,
        parent: Optional["StateNode"] = None,
        operation: Optional[Operation] = None,
        length: Optional[int] = None,
        content_fp: Optional[int] = None,
    ) -> None:
        self.key = key
        self.children: List[Transition] = []
        self._doc = document
        self._parent = parent
        self._op = operation
        if document is not None:
            self.length = len(document)
            self.content_fp = _content_fingerprint(document)
        else:
            if parent is None or operation is None:
                raise StateSpaceError(
                    "a pending node needs both a parent and an operation"
                )
            assert length is not None and content_fp is not None
            self.length = length
            self.content_fp = content_fp

    @property
    def document(self) -> ListDocument:
        """The list document at this state (materialised on demand)."""
        if self._doc is None:
            self._materialise()
        return self._doc  # type: ignore[return-value]

    @property
    def materialised(self) -> bool:
        return self._doc is not None

    def _materialise(self) -> None:
        chain: List[StateNode] = []
        cursor: StateNode = self
        while cursor._doc is None:
            chain.append(cursor)
            cursor = cursor._parent  # type: ignore[assignment]
        document = cursor._doc.copy()
        for node in reversed(chain):
            node._op.apply(document)  # type: ignore[union-attr]
        self._doc = document
        # Release the chain so pruned ancestors can actually be freed.
        self._parent = None
        self._op = None

    def child_org_ids(self) -> List[OpId]:
        return [t.org_id for t in self.children]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"State{format_opid_set(self.key)}={self.document.as_string()!r}"


#: A canonical, comparable rendering of a state-space: for every state
#: key, the ordered list of (org id, kind, position, target key).
Signature = Dict[
    StateKey, Tuple[Tuple[OpId, str, Optional[int], StateKey], ...]
]


class BaseStateSpace:
    """Node bookkeeping shared by the 2D and n-ary state-spaces."""

    def __init__(
        self,
        initial_document: Optional[ListDocument] = None,
        *,
        strict_cp1: bool = False,
    ) -> None:
        self._interner = KeyInterner()
        self._strict_cp1 = bool(strict_cp1)
        document = (initial_document or ListDocument()).copy()
        root = StateNode(self._interner.intern(frozenset()), document)
        self._nodes: Dict[StateKey, StateNode] = {root.key: root}
        self.final_key: StateKey = root.key
        #: number of pairwise OTs performed while building this space.
        self.ot_count: int = 0

    @property
    def strict_cp1(self) -> bool:
        """Whether corners verify CP1 by full ordered-document equality."""
        return self._strict_cp1

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    def node(self, key: StateKey) -> StateNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise UnknownStateError(
                f"no state {format_opid_set(key)} in this state-space"
            ) from None

    def has_state(self, key: StateKey) -> bool:
        return key in self._nodes

    def states(self) -> List[StateKey]:
        return list(self._nodes)

    def node_count(self) -> int:
        return len(self._nodes)

    def transition_count(self) -> int:
        return sum(len(node.children) for node in self._nodes.values())

    def transitions(self) -> Iterable[Transition]:
        for node in self._nodes.values():
            yield from node.children

    @property
    def final_node(self) -> StateNode:
        return self._nodes[self.final_key]

    @property
    def document(self) -> ListDocument:
        """The document at the final state — the replica's current list."""
        return self.final_node.document

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _attach(
        self,
        source: StateNode,
        operation: Operation,
        target: Optional[StateNode] = None,
    ) -> StateNode:
        """Create or reuse the target node of ``operation`` from ``source``.

        Creating a node is O(op): the target records ``(source, op)`` and
        its eagerly derived length/fingerprint.  When the target already
        exists (the closing corner of a CP1 square), the derived length
        and content fingerprint must match the stored ones — the cheap,
        always-on shadow of the CP1 check.  With ``strict_cp1`` the
        document is additionally recomputed along this second edge and
        compared in full (the seed behaviour), which also catches pure
        *order* divergence that the fingerprint cannot see.

        ``target`` optionally names the corner node the caller already
        holds (Algorithm 1 holds it: the square's first edge created it),
        sparing the key union/lookup for the closing edge entirely.
        """
        if operation.context is not source.key:
            # Interned contexts hit the identity fast path above; anything
            # else pays a comparison — full in strict mode, length-only on
            # the hot path (transformed contexts are equal by construction
            # of the CP1 square).
            if self._strict_cp1:
                if operation.context != source.key:
                    raise StateSpaceError(
                        f"operation {operation.pretty()} attached at state "
                        f"{format_opid_set(source.key)} with a different "
                        "context"
                    )
            elif len(operation.context) != len(source.key):
                raise StateSpaceError(
                    f"operation {operation.pretty()} attached at state "
                    f"{format_opid_set(source.key)} with a different context"
                )
        if target is None:
            target_key = self._interner.extend(source.key, operation.opid)
            existing = self._nodes.get(target_key)
        else:
            target_key = target.key
            existing = target
        if operation.is_nop:
            length, content_fp = source.length, source.content_fp
        else:
            position = operation.position
            assert operation.element is not None and position is not None
            if operation.is_insert:
                if not 0 <= position <= source.length:
                    raise PositionError(
                        f"insert position {position} out of range for "
                        f"document of length {source.length}"
                    )
                length = source.length + 1
            else:
                if not 0 <= position < source.length:
                    raise PositionError(
                        f"position {position} out of range for document "
                        f"of length {source.length}"
                    )
                length = source.length - 1
            content_fp = source.content_fp ^ hash(operation.element.opid)
        if existing is not None:
            if existing.length != length or existing.content_fp != content_fp:
                raise StateSpaceError(
                    f"CP1 square broken at {format_opid_set(target_key)}: "
                    f"length/content fingerprint mismatch along "
                    f"{operation.pretty()}"
                )
            if self._strict_cp1:
                recomputed = source.document.copy()
                operation.apply(recomputed)
                if recomputed != existing.document:
                    raise StateSpaceError(
                        f"CP1 square broken at {format_opid_set(target_key)}: "
                        f"{recomputed.as_string()!r} != "
                        f"{existing.document.as_string()!r}"
                    )
            return existing
        if self._strict_cp1:
            document = source.document.copy()
            operation.apply(document)
            node = StateNode(target_key, document)
        else:
            node = StateNode(
                target_key,
                parent=source,
                operation=operation,
                length=length,
                content_fp=content_fp,
            )
        self._nodes[target_key] = node
        return node

    # ------------------------------------------------------------------
    # Comparison / inspection
    # ------------------------------------------------------------------
    def signature(self) -> Signature:
        """Canonical structure for equality comparisons across replicas."""
        return {
            key: tuple(
                (
                    t.org_id,
                    t.operation.kind.value,
                    t.operation.position,
                    t.target,
                )
                for t in node.children
            )
            for key, node in self._nodes.items()
        }

    def same_structure(self, other: "BaseStateSpace") -> bool:
        """Structural equality (Proposition 6.6's notion of sameness)."""
        return self.signature() == other.signature()

    def contains_structure(self, other: "BaseStateSpace") -> bool:
        """Whether every state and transition of ``other`` is in ``self``.

        Transition order is ignored (a 2D state-space does not order
        siblings the way the n-ary one does); this is the containment of
        Proposition 7.4, ``DSS ⊆ CSS``.
        """
        mine = self.signature()
        for key, edges in other.signature().items():
            if key not in mine:
                return False
            if not set(edges) <= set(mine[key]):
                return False
        return True

    def document_at(self, key: StateKey) -> ListDocument:
        """The list document at a given state (e.g. ``w13``)."""
        return self.node(key).document

    def iter_documents(self) -> Iterator[Tuple[StateKey, ListDocument]]:
        """Yield ``(key, document)`` for every state, without permanently
        caching lazy nodes.

        Snapshots need every document; materialising them through
        :attr:`StateNode.document` would pin them all in memory for the
        life of the space.  This walk shares the per-chain work through a
        transient memo instead, so a snapshot costs the same transient
        O(states × length) it always did and the space stays lazy.
        """
        memo: Dict[int, ListDocument] = {}

        def doc_of(node: StateNode) -> ListDocument:
            if node._doc is not None:
                return node._doc
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            chain: List[StateNode] = []
            cursor: StateNode = node
            while cursor._doc is None and id(cursor) not in memo:
                chain.append(cursor)
                cursor = cursor._parent  # type: ignore[assignment]
            document = cursor._doc if cursor._doc is not None else memo[id(cursor)]
            for entry in reversed(chain):
                document = document.copy()
                entry._op.apply(document)  # type: ignore[union-attr]
                memo[id(entry)] = document
            return memo[id(node)]

        for key, node in self._nodes.items():
            yield key, doc_of(node)
