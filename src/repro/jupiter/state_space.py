"""Shared machinery for Jupiter state-spaces.

Both the 2D state-spaces of the CSCW protocol and the n-ary ordered
state-space of the CSS protocol are DAGs whose nodes are replica states —
identified by the :class:`frozenset` of original operation ids processed
(Definition 4.5) — and whose transitions are labelled with (original or
transformed) operations.  Every node also carries the list document at
that state, so the paper's per-state lists (``w13 = "ax"`` etc.) can be
read straight off the structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.ids import OpId, StateKey, format_opid_set
from repro.document.list_document import ListDocument
from repro.errors import StateSpaceError, UnknownStateError
from repro.ot.operations import Operation


@dataclass(frozen=True)
class Transition:
    """A labelled edge ``source --operation--> target``."""

    source: StateKey
    target: StateKey
    operation: Operation

    @property
    def org_id(self) -> OpId:
        """The original-operation identity of the label."""
        return self.operation.opid

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{format_opid_set(self.source)} --{self.operation}--> "
            f"{format_opid_set(self.target)}"
        )


class StateNode:
    """A state: its key, its document, and its outgoing transitions."""

    __slots__ = ("key", "document", "children")

    def __init__(self, key: StateKey, document: ListDocument) -> None:
        self.key = key
        self.document = document
        self.children: List[Transition] = []

    def child_org_ids(self) -> List[OpId]:
        return [t.org_id for t in self.children]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"State{format_opid_set(self.key)}={self.document.as_string()!r}"


#: A canonical, comparable rendering of a state-space: for every state
#: key, the ordered list of (org id, kind, position, target key).
Signature = Dict[
    StateKey, Tuple[Tuple[OpId, str, Optional[int], StateKey], ...]
]


class BaseStateSpace:
    """Node bookkeeping shared by the 2D and n-ary state-spaces."""

    def __init__(self, initial_document: Optional[ListDocument] = None) -> None:
        document = (initial_document or ListDocument()).copy()
        root = StateNode(frozenset(), document)
        self._nodes: Dict[StateKey, StateNode] = {root.key: root}
        self.final_key: StateKey = root.key
        #: number of pairwise OTs performed while building this space.
        self.ot_count: int = 0

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    def node(self, key: StateKey) -> StateNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise UnknownStateError(
                f"no state {format_opid_set(key)} in this state-space"
            ) from None

    def has_state(self, key: StateKey) -> bool:
        return key in self._nodes

    def states(self) -> List[StateKey]:
        return list(self._nodes)

    def node_count(self) -> int:
        return len(self._nodes)

    def transition_count(self) -> int:
        return sum(len(node.children) for node in self._nodes.values())

    def transitions(self) -> Iterable[Transition]:
        for node in self._nodes.values():
            yield from node.children

    @property
    def final_node(self) -> StateNode:
        return self._nodes[self.final_key]

    @property
    def document(self) -> ListDocument:
        """The document at the final state — the replica's current list."""
        return self.final_node.document

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _attach(self, source: StateNode, operation: Operation) -> StateNode:
        """Create or reuse the target node of ``operation`` from ``source``.

        The target document is computed by applying ``operation`` to a copy
        of the source document.  When the target node already exists (the
        closing corner of a CP1 square), the recomputed document must match
        the stored one — a cheap, always-on check of CP1 along every square
        this space ever builds.
        """
        if operation.context != source.key:
            raise StateSpaceError(
                f"operation {operation.pretty()} attached at state "
                f"{format_opid_set(source.key)} with a different context"
            )
        target_key = source.key | {operation.opid}
        existing = self._nodes.get(target_key)
        if existing is not None:
            recomputed = source.document.copy()
            operation.apply(recomputed)
            if recomputed != existing.document:
                raise StateSpaceError(
                    f"CP1 square broken at {format_opid_set(target_key)}: "
                    f"{recomputed.as_string()!r} != "
                    f"{existing.document.as_string()!r}"
                )
            return existing
        document = source.document.copy()
        operation.apply(document)
        node = StateNode(target_key, document)
        self._nodes[target_key] = node
        return node

    # ------------------------------------------------------------------
    # Comparison / inspection
    # ------------------------------------------------------------------
    def signature(self) -> Signature:
        """Canonical structure for equality comparisons across replicas."""
        return {
            key: tuple(
                (
                    t.org_id,
                    t.operation.kind.value,
                    t.operation.position,
                    t.target,
                )
                for t in node.children
            )
            for key, node in self._nodes.items()
        }

    def same_structure(self, other: "BaseStateSpace") -> bool:
        """Structural equality (Proposition 6.6's notion of sameness)."""
        return self.signature() == other.signature()

    def contains_structure(self, other: "BaseStateSpace") -> bool:
        """Whether every state and transition of ``other`` is in ``self``.

        Transition order is ignored (a 2D state-space does not order
        siblings the way the n-ary one does); this is the containment of
        Proposition 7.4, ``DSS ⊆ CSS``.
        """
        mine = self.signature()
        for key, edges in other.signature().items():
            if key not in mine:
                return False
            if not set(edges) <= set(mine[key]):
                return False
        return True

    def document_at(self, key: StateKey) -> ListDocument:
        """The list document at a given state (e.g. ``w13``)."""
        return self.node(key).document
