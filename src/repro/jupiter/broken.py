"""A deliberately incorrect OT protocol (Example 8.1 / Figure 8).

The server relays *original* operations in arrival order, and each client
naively transforms an incoming operation against the operations it has
executed that the incoming one has not seen — **in local execution order**
rather than along the ordered state-space.  Different clients therefore
transform along different paths of what would be the state-space, and
because position-shifting OT does not satisfy CP2, their documents can
diverge — exactly the failure the paper's running counterexample
illustrates and the CSS protocol's "leftmost transitions" rule prevents.

Used as failure injection: the convergence and weak-list checkers must
*catch* executions of this protocol.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Tuple

from repro.common.ids import ReplicaId
from repro.common.priority import priority_of
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.ordering import ServerOrderOracle
from repro.model.schedule import OpSpec
from repro.ot.operations import OpKind, Operation


def naive_transform(first: Operation, second: Operation) -> Operation:
    """Position-shifting transform that ignores operation contexts.

    Same shifting rules as :func:`repro.ot.transform.transform`, minus the
    context discipline — which is precisely what makes the protocol
    incorrect: it happily transforms operations that are not defined on
    the same state.
    """
    if first.kind is OpKind.NOP or second.kind is OpKind.NOP:
        return first
    assert first.position is not None and second.position is not None
    p1, p2 = first.position, second.position
    if first.is_insert and second.is_insert:
        if p1 < p2 or (
            p1 == p2
            and priority_of(first.opid.replica) > priority_of(second.opid.replica)
        ):
            return first
        return replace(first, position=p1 + 1)
    if first.is_insert and second.is_delete:
        return first if p1 <= p2 else replace(first, position=p1 - 1)
    if first.is_delete and second.is_insert:
        return first if p1 < p2 else replace(first, position=p1 + 1)
    # delete / delete
    if p1 < p2:
        return first
    if p1 > p2:
        return replace(first, position=p1 - 1)
    return replace(first, kind=OpKind.NOP, position=None)


def naive_apply(operation: Operation, document: ListDocument) -> None:
    """Apply without safety checks — the broken protocol's coordinates can
    be stale, and we want divergence to show up in the document, not as a
    crash."""
    if operation.is_nop:
        return
    assert operation.element is not None and operation.position is not None
    if operation.is_insert:
        document.insert(operation.element, min(operation.position, len(document)))
    else:
        position = min(operation.position, len(document) - 1)
        if position >= 0:
            document.delete(position)


class BrokenClient(BaseClient):
    """Transforms incoming operations in local execution order."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id)
        self._document = (initial_document or ListDocument()).copy()
        self._executed: List[Operation] = []  # executed forms, local order
        self._context: frozenset = frozenset()

    @property
    def document(self) -> ListDocument:
        return self._document

    def generate(self, spec: OpSpec) -> GenerateResult:
        operation = self._operation_from_spec(spec, self._context)
        naive_apply(operation, self._document)
        self._executed.append(operation)
        self._context = self._context | {operation.opid}
        return GenerateResult(
            operation=operation,
            returned=self.read(),
            outgoing=ClientOperation(operation),
        )

    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, ServerOperation):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        if payload.origin == self.replica_id:
            return ReceiveResult(executed=None, returned=self.read())
        incoming = payload.operation
        for done in self._executed:
            if done.opid not in incoming.context:
                incoming = naive_transform(incoming, done)
        naive_apply(incoming, self._document)
        self._executed.append(incoming)
        self._context = self._context | {incoming.opid}
        return ReceiveResult(executed=incoming, returned=self.read())


class BrokenServer(BaseServer):
    """Relays originals; keeps a naive document of its own."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self._document = (initial_document or ListDocument()).copy()
        self._executed: List[Operation] = []

    @property
    def document(self) -> ListDocument:
        return self._document

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        operation = payload.operation
        serial = self.oracle.assign(operation.opid)
        prefix = self.oracle.serialized_before(serial)
        incoming = operation
        for done in self._executed:
            if done.opid not in incoming.context:
                incoming = naive_transform(incoming, done)
        naive_apply(incoming, self._document)
        self._executed.append(incoming)
        broadcast = ServerOperation(
            operation=operation, origin=sender, serial=serial, prefix=prefix
        )
        return [(client, broadcast) for client in self.clients]
