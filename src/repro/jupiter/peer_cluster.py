"""Peer-to-peer execution harness for the decentralised CSS protocol.

The star-shaped :class:`~repro.jupiter.cluster.Cluster` models the paper's
client/server system; this harness models the §10 future-work setting —
a full mesh of peers with FIFO channels and no server.  It records the
same kind of concrete execution, so all specification checkers apply
unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ScheduleError, SimulationError
from repro.jupiter.dcss import DcssPeer
from repro.model.events import Message
from repro.model.execution import Execution, ExecutionRecorder
from repro.model.schedule import OpSpec


class PeerCluster:
    """A full mesh of dCSS peers with FIFO channels."""

    def __init__(
        self,
        peers: Sequence[ReplicaId],
        initial_text: str = "",
        observe_after_receive: bool = True,
    ) -> None:
        if len(peers) < 2:
            raise ValueError("a peer-to-peer system needs at least 2 peers")
        initial = (
            ListDocument.from_string(initial_text) if initial_text else None
        )
        names = list(peers)
        self.peers: Dict[ReplicaId, DcssPeer] = {
            name: DcssPeer(name, names, initial) for name in names
        }
        self.observe_after_receive = observe_after_receive
        self.recorder = ExecutionRecorder()
        self._channels: Dict[Tuple[ReplicaId, ReplicaId], Deque[Message]] = {
            (a, b): deque() for a in names for b in names if a != b
        }
        # Operation messages held back by a peer's stability queue; their
        # receive events are recorded only at integration time (delivery
        # semantics of the hold-back queue, see PeerReceiveResult).
        self._held: Dict[Tuple[ReplicaId, object], Message] = {}

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def generate(self, peer_id: ReplicaId, spec: OpSpec) -> None:
        peer = self._peer(peer_id)
        result = peer.generate(spec)
        self.recorder.record_do(peer_id, result.operation, result.returned)
        self._send_all(peer_id, result.outgoing)

    def deliver(self, receiver: ReplicaId, sender: ReplicaId) -> None:
        """Deliver the next message on the ``sender -> receiver`` channel."""
        channel = self._channels.get((sender, receiver))
        if channel is None:
            raise ScheduleError(f"no channel {sender} -> {receiver}")
        if not channel:
            raise ScheduleError(
                f"channel {sender} -> {receiver} is empty"
            )
        message = channel.popleft()
        peer = self._peer(receiver)
        payload = message.payload
        from repro.jupiter.dcss import PeerOperation

        if isinstance(payload, PeerOperation):
            # Hold the receive event until the operation integrates.
            self._held[(receiver, payload.operation.opid)] = message
        # Acknowledgements are network-layer control traffic: they carry
        # no replica-visible state, so they stay out of the recorded
        # execution entirely (their sends are unrecorded too).  Recording
        # them would add happens-before edges for operations a peer has
        # *heard of* but not yet integrated, which is not what
        # Definition 4.5 means by a processed operation.
        result = peer.receive(payload)
        for broadcast, _executed in result.integrated:
            held = self._held.pop((receiver, broadcast.operation.opid))
            self.recorder.record_receive(receiver, held)
        if result.integrated and self.observe_after_receive:
            self.recorder.record_do(receiver, None, result.returned)
        self._send_all(receiver, result.outgoing)

    def read(self, peer_id: ReplicaId) -> None:
        self.recorder.record_do(peer_id, None, self._peer(peer_id).read())

    def drain(self, max_rounds: int = 1_000_000) -> None:
        """Deliver everything (round-robin) until full quiescence.

        Quiescence means empty channels *and* empty hold-back queues; a
        non-empty hold-back queue with no messages in flight would be a
        stability deadlock, which we surface loudly.
        """
        names = sorted(self.peers)
        for _ in range(max_rounds):
            progressed = False
            for receiver in names:
                for sender in names:
                    if sender != receiver and self._channels[(sender, receiver)]:
                        self.deliver(receiver, sender)
                        progressed = True
            if not progressed:
                break
        stuck = {
            name: peer.holdback_size
            for name, peer in self.peers.items()
            if peer.holdback_size
        }
        if stuck:
            raise SimulationError(
                f"stability deadlock: hold-back queues non-empty at {stuck}"
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def documents(self) -> Dict[ReplicaId, str]:
        return {
            name: peer.document.as_string()
            for name, peer in self.peers.items()
        }

    def converged(self) -> bool:
        return len(set(self.documents().values())) == 1

    def state_spaces_identical(self) -> bool:
        """Proposition 6.6, decentralised edition."""
        spaces = [peer.space for peer in self.peers.values()]
        return all(s.same_structure(spaces[0]) for s in spaces[1:])

    def execution(self) -> Execution:
        return self.recorder.finish()

    def in_flight(self) -> int:
        return sum(len(channel) for channel in self._channels.values())

    def total_messages_recorded(self) -> int:
        from repro.model.events import SendEvent

        return sum(
            1 for event in self.recorder.finish() if isinstance(event, SendEvent)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peer(self, peer_id: ReplicaId) -> DcssPeer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise ScheduleError(f"unknown peer {peer_id}") from None

    def _send_all(
        self, sender: ReplicaId, outgoing: List[Tuple[ReplicaId, object]]
    ) -> None:
        from repro.jupiter.dcss import PeerOperation

        for recipient, payload in outgoing:
            message = Message(sender, recipient, payload)
            if isinstance(payload, PeerOperation):
                self.recorder.record_send(sender, message)
            self._channels[(sender, recipient)].append(message)
