"""The n-ary ordered state-space and Algorithm 1 (Sections 6.1–6.2).

A state may have up to ``n`` child transitions (one per client, Lemma 6.1),
kept ordered left-to-right by the server total order on their original
operations.  Integrating an operation ``o`` whose context matches state
``σ``:

1. saves ``o`` at ``σ`` along the transition of the right order among all
   transitions from ``σ``;
2. transforms ``o`` with the sequence ``L`` of operations along the
   *leftmost* transitions from ``σ`` to the final state, adding the new
   transitions of each CP1 square in their appropriate order (Algorithm 1);
3. returns ``o{L}`` for the replica to execute — the document of the new
   final state already reflects it.

Each CP1 square is O(1) amortised: the corner node created by
:meth:`_insert_ordered` is carried into the next square instead of being
re-derived from a fresh key union, and all key bookkeeping goes through
the space's :class:`~repro.jupiter.keys.KeyInterner`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Protocol, Set

from repro.common.ids import OpId, StateKey, format_opid_set
from repro.document.list_document import ListDocument
from repro.errors import StateSpaceError
from repro.jupiter.keys import KeyInterner
from repro.jupiter.state_space import BaseStateSpace, StateNode, Transition
from repro.obs import get_obs
from repro.ot.operations import Operation
from repro.ot.transform import transform_pair


class TotalOrderOracle(Protocol):
    """Anything that can decide ``first ⇒ second`` on original ids."""

    def before(self, first: OpId, second: OpId) -> bool:  # pragma: no cover
        ...


class NaryStateSpace(BaseStateSpace):
    """The CSS protocol's single compact state-space."""

    def __init__(
        self,
        oracle: TotalOrderOracle,
        initial_document: Optional[ListDocument] = None,
        *,
        strict_cp1: bool = False,
    ) -> None:
        super().__init__(initial_document, strict_cp1=strict_cp1)
        self._oracle = oracle
        self._obs = get_obs()

    # ------------------------------------------------------------------
    # Ordered transition insertion
    # ------------------------------------------------------------------
    def _insert_ordered(
        self,
        source: StateNode,
        operation: Operation,
        target: Optional[StateNode] = None,
    ) -> StateNode:
        """Add a transition from ``source`` at its total-order position
        and return the target node."""
        target = self._attach(source, operation, target)
        transition = Transition(source.key, target.key, operation)
        for index, sibling in enumerate(source.children):
            if sibling.org_id == operation.opid:
                raise StateSpaceError(
                    f"duplicate transition for {operation.opid} at "
                    f"{format_opid_set(source.key)}"
                )
            if not self._oracle.before(sibling.org_id, operation.opid):
                source.children.insert(index, transition)
                return target
        source.children.append(transition)
        return target

    # ------------------------------------------------------------------
    # The leftmost path (Lemma 6.4)
    # ------------------------------------------------------------------
    def leftmost_path(self, key: StateKey) -> List[Transition]:
        """Transitions along leftmost children from ``key`` to the final
        state.  By Lemma 6.4 these are exactly the processed operations not
        in ``key``, in total order."""
        path: List[Transition] = []
        cursor = self.node(key)
        while cursor.key != self.final_key:
            if not cursor.children:
                raise StateSpaceError(
                    f"leftmost path from {format_opid_set(key)} got stuck "
                    f"at {format_opid_set(cursor.key)} before reaching the "
                    "final state"
                )
            step = cursor.children[0]
            path.append(step)
            cursor = self.node(step.target)
        return path

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def integrate(self, operation: Operation) -> Operation:
        """Integrate ``operation`` and return its executed form ``o{L}``."""
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        source = self.node(operation.context)  # the matching state
        path = self.leftmost_path(source.key)

        corner = self._insert_ordered(source, operation)

        current = operation
        for step in path:
            # The two transformed forms attach at states whose keys this
            # loop already holds interned — hand them over so no set union
            # is recomputed per square.
            transformed, step_shifted = transform_pair(
                current, step.operation, contexts=(step.target, corner.key)
            )
            self.ot_count += 1
            # Close the CP1 square: the shifted path operation continues
            # from the corner we just created — its target *is* the next
            # corner, so no key union needs recomputing...
            next_corner = self._insert_ordered(corner, step_shifted)
            # ...and the transformed operation re-attaches at the path's
            # next state, into the same corner node, ordered among that
            # state's existing transitions.
            self._insert_ordered(
                self.node(step.target), transformed, target=next_corner
            )
            corner = next_corner
            current = transformed

        self.final_key = corner.key
        if obs.enabled:
            obs.ot_transforms.inc(len(path))
            obs.space_nodes.set(len(self._nodes))
            obs.document_length.set(corner.length)
            obs.css_integrate_duration.observe(time.perf_counter() - started)
        return current

    # ------------------------------------------------------------------
    # Invariant checks used by the property tests (Lemmas 6.1–6.3, 8.4)
    # ------------------------------------------------------------------
    def max_out_degree(self) -> int:
        """For Lemma 6.1: must never exceed the number of clients."""
        return max(
            (len(node.children) for node in self._nodes.values()), default=0
        )

    def children_are_ordered(self) -> bool:
        """Sibling transitions must be strictly increasing in total order."""
        for node in self._nodes.values():
            ids = node.child_org_ids()
            for first, second in zip(ids, ids[1:]):
                if not self._oracle.before(first, second):
                    return False
        return True

    # ------------------------------------------------------------------
    # Garbage collection (the §10 metadata-overhead concern)
    # ------------------------------------------------------------------
    def prune_below(self, floor: StateKey) -> int:
        """Discard states that can never be matched again; return count.

        ``floor`` must be a lower bound on the context of every operation
        this replica may still have to integrate (for the server: the
        meet of all clients' known states; for a client: the meet of the
        other replicas' known states and its own).  Any future matching
        state, and every state on a transform path from it, is a superset
        of ``floor``, so states whose key does not contain ``floor`` are
        unreachable and safe to drop.

        An over-eager ``floor`` is *detected*, not silently absorbed: a
        later context lookup for a pruned state raises
        :class:`~repro.errors.UnknownStateError`.
        """
        floor = frozenset(floor)
        if not floor <= self.final_key:
            raise StateSpaceError(
                "prune floor mentions operations this replica has not "
                "processed"
            )
        doomed = [key for key in self._nodes if not floor <= key]
        if doomed:
            doomed_set = set(doomed)
            # Materialise the documents of surviving nodes whose pending
            # chain starts at a doomed parent, so no survivor keeps a
            # pruned subgraph alive through its materialisation chain.
            for key, node in self._nodes.items():
                if key in doomed_set or node.materialised:
                    continue
                parent = node._parent
                if parent is not None and parent.key in doomed_set:
                    node._materialise()
            for key in doomed:
                del self._nodes[key]
            self._interner.forget(doomed)
        obs = self._obs
        if obs.enabled:
            obs.space_pruned.inc(len(doomed))
            obs.space_nodes.set(len(self._nodes))
        return len(doomed)

    def rebase_below(self, floor: StateKey) -> int:
        """Prune below ``floor`` *and* subtract it from every key.

        :meth:`prune_below` bounds the node **count**, but every
        surviving key still contains the whole garbage-collected prefix,
        so per-operation key unions stay O(history).  Rebasing rewrites
        each survivor's key to ``key - floor`` — the relabelling is a
        bijection on the surviving nodes (all of them contain ``floor``),
        so the graph structure, sibling order, and documents are
        untouched and every key is O(active window) afterwards.

        Callers must feed the space operations whose contexts are
        expressed relative to the same floor from then on (the net
        runtime's serial-encoded contexts do exactly that); the stale
        absolute contexts inside already-stored transitions are never
        used for attachment again, only their operation bodies are.
        """
        floor = frozenset(floor)
        pruned = self.prune_below(floor)
        if not floor:
            return pruned
        fresh = KeyInterner()
        remap = {
            key: fresh.intern(key - floor) for key in self._nodes
        }
        nodes: Dict[StateKey, StateNode] = {}
        for key, node in self._nodes.items():
            new_key = remap[key]
            node.key = new_key
            node.children = [
                Transition(new_key, remap[t.target], t.operation)
                for t in node.children
            ]
            nodes[new_key] = node
        self._nodes = nodes
        self._interner = fresh
        self.final_key = remap[self.final_key]
        return pruned

    def _ancestors(
        self,
        key: StateKey,
        parents: Optional[Dict[StateKey, List[StateKey]]] = None,
    ) -> Set[StateKey]:
        """All states with a path to ``key`` (including ``key`` itself).

        ``parents`` is the reverse-edge map; pass one (from
        :meth:`_parents_map`) to amortise it over several calls.
        """
        if parents is None:
            parents = self._parents_map()
        seen = {key}
        frontier = [key]
        while frontier:
            state = frontier.pop()
            for parent in parents[state]:
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen

    def _parents_map(self) -> Dict[StateKey, List[StateKey]]:
        parents: Dict[StateKey, List[StateKey]] = {
            state: [] for state in self._nodes
        }
        for transition in self.transitions():
            parents[transition.target].append(transition.source)
        return parents

    def lowest_common_ancestors(
        self, first: StateKey, second: StateKey
    ) -> List[StateKey]:
        """All LCAs of two states; Lemma 8.4 says there is exactly one.

        The reverse-edge map is built once and every candidate's ancestor
        set is memoised, so the lowest-filter is linear in the graph per
        distinct candidate instead of rebuilding the map per pair.
        """
        parents = self._parents_map()
        ancestor_sets: Dict[StateKey, Set[StateKey]] = {}

        def ancestors_of(key: StateKey) -> Set[StateKey]:
            cached = ancestor_sets.get(key)
            if cached is None:
                ancestor_sets[key] = cached = self._ancestors(key, parents)
            return cached

        common = ancestors_of(first) & ancestors_of(second)
        lowest = [
            candidate
            for candidate in common
            if not any(
                other != candidate and candidate in ancestors_of(other)
                for other in common
            )
        ]
        return lowest

    def lca(self, first: StateKey, second: StateKey) -> StateKey:
        """The unique lowest common ancestor of two states (Lemma 8.4).

        Raises :class:`StateSpaceError` if uniqueness fails — which the
        paper proves cannot happen for spaces built by the CSS protocol
        (Example 8.2 shows it *can* for naive unions of client spaces).
        """
        lowest = self.lowest_common_ancestors(first, second)
        if len(lowest) != 1:
            raise StateSpaceError(
                f"states {format_opid_set(first)} and "
                f"{format_opid_set(second)} have {len(lowest)} lowest "
                "common ancestors"
            )
        return lowest[0]
