"""The retained slow-but-obviously-correct n-ary state-space.

This module preserves the *seed* implementation of the compact n-ary
ordered state-space, exactly as it behaved before the hot-path overhaul
(interned keys, lazy copy-on-write documents, corner reuse): plain
``frozenset`` unions per square, an eager document copy at every node,
and the full structural CP1 comparison at every square corner.

It exists for two reasons, following the verified-optimisation
methodology of Gomes et al. and Kleppmann's OpSets work — keep a slow
reference model and machine-check that the fast path is behaviourally
identical:

* the **oracle-equivalence property tests** run the same seeded random
  schedules through the optimised space and this one and require
  identical signatures, documents and prune behaviour at every replica;
* the **perf-regression harness** measures the baseline column of
  ``BENCH_scaling.json`` against it, so the speedup the optimised path
  claims is recomputed on the same machine that produced the "after"
  numbers.

Do not optimise this file.  Its value is that it stays boring.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.ids import StateKey, format_opid_set
from repro.document.list_document import ListDocument
from repro.errors import StateSpaceError, UnknownStateError
from repro.jupiter.nary import TotalOrderOracle
from repro.jupiter.state_space import Signature, StateNode, Transition
from repro.ot.operations import Operation
from repro.ot.transform import transform_pair


class ReferenceStateSpace:
    """Drop-in replacement for :class:`~repro.jupiter.nary.NaryStateSpace`
    with the seed's eager, fully-checked behaviour."""

    def __init__(
        self,
        oracle: TotalOrderOracle,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        document = (initial_document or ListDocument()).copy()
        root = StateNode(frozenset(), document)
        self._nodes: Dict[StateKey, StateNode] = {root.key: root}
        self.final_key: StateKey = root.key
        self.ot_count: int = 0
        self._oracle = oracle

    # ------------------------------------------------------------------
    # Node access (mirrors BaseStateSpace)
    # ------------------------------------------------------------------
    def node(self, key: StateKey) -> StateNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise UnknownStateError(
                f"no state {format_opid_set(key)} in this state-space"
            ) from None

    def has_state(self, key: StateKey) -> bool:
        return key in self._nodes

    def states(self) -> List[StateKey]:
        return list(self._nodes)

    def node_count(self) -> int:
        return len(self._nodes)

    def transition_count(self) -> int:
        return sum(len(node.children) for node in self._nodes.values())

    def transitions(self):
        for node in self._nodes.values():
            yield from node.children

    @property
    def final_node(self) -> StateNode:
        return self._nodes[self.final_key]

    @property
    def document(self) -> ListDocument:
        return self.final_node.document

    def document_at(self, key: StateKey) -> ListDocument:
        return self.node(key).document

    def iter_documents(self) -> Iterator[Tuple[StateKey, ListDocument]]:
        for key, node in self._nodes.items():
            yield key, node.document

    # ------------------------------------------------------------------
    # Growth — the seed's eager _attach, verbatim semantics
    # ------------------------------------------------------------------
    def _attach(self, source: StateNode, operation: Operation) -> StateNode:
        if operation.context != source.key:
            raise StateSpaceError(
                f"operation {operation.pretty()} attached at state "
                f"{format_opid_set(source.key)} with a different context"
            )
        target_key = source.key | {operation.opid}
        existing = self._nodes.get(target_key)
        if existing is not None:
            recomputed = source.document.copy()
            operation.apply(recomputed)
            if recomputed != existing.document:
                raise StateSpaceError(
                    f"CP1 square broken at {format_opid_set(target_key)}: "
                    f"{recomputed.as_string()!r} != "
                    f"{existing.document.as_string()!r}"
                )
            return existing
        document = source.document.copy()
        operation.apply(document)
        node = StateNode(target_key, document)
        self._nodes[target_key] = node
        return node

    def _insert_ordered(self, source: StateNode, operation: Operation) -> None:
        target = self._attach(source, operation)
        transition = Transition(source.key, target.key, operation)
        for index, sibling in enumerate(source.children):
            if sibling.org_id == operation.opid:
                raise StateSpaceError(
                    f"duplicate transition for {operation.opid} at "
                    f"{format_opid_set(source.key)}"
                )
            if not self._oracle.before(sibling.org_id, operation.opid):
                source.children.insert(index, transition)
                return
        source.children.append(transition)

    # ------------------------------------------------------------------
    # Algorithm 1 — the seed's integrate, union recomputation and all
    # ------------------------------------------------------------------
    def leftmost_path(self, key: StateKey) -> List[Transition]:
        path: List[Transition] = []
        cursor = self.node(key)
        while cursor.key != self.final_key:
            if not cursor.children:
                raise StateSpaceError(
                    f"leftmost path from {format_opid_set(key)} got stuck "
                    f"at {format_opid_set(cursor.key)} before reaching the "
                    "final state"
                )
            step = cursor.children[0]
            path.append(step)
            cursor = self.node(step.target)
        return path

    def integrate(self, operation: Operation) -> Operation:
        source = self.node(operation.context)
        path = self.leftmost_path(source.key)

        self._insert_ordered(source, operation)
        new_corner = self.node(source.key | {operation.opid})

        current = operation
        for step in path:
            transformed, step_shifted = transform_pair(current, step.operation)
            self.ot_count += 1
            self._insert_ordered(new_corner, step_shifted)
            self._insert_ordered(self.node(step.target), transformed)
            new_corner = self.node(step.target | {operation.opid})
            current = transformed

        self.final_key = new_corner.key
        return current

    # ------------------------------------------------------------------
    # Invariants / comparison / GC
    # ------------------------------------------------------------------
    def max_out_degree(self) -> int:
        return max(
            (len(node.children) for node in self._nodes.values()), default=0
        )

    def children_are_ordered(self) -> bool:
        for node in self._nodes.values():
            ids = node.child_org_ids()
            for first, second in zip(ids, ids[1:]):
                if not self._oracle.before(first, second):
                    return False
        return True

    def signature(self) -> Signature:
        return {
            key: tuple(
                (
                    t.org_id,
                    t.operation.kind.value,
                    t.operation.position,
                    t.target,
                )
                for t in node.children
            )
            for key, node in self._nodes.items()
        }

    def same_structure(self, other) -> bool:
        return self.signature() == other.signature()

    def prune_below(self, floor: StateKey) -> int:
        floor = frozenset(floor)
        if not floor <= self.final_key:
            raise StateSpaceError(
                "prune floor mentions operations this replica has not "
                "processed"
            )
        doomed = [key for key in self._nodes if not floor <= key]
        for key in doomed:
            del self._nodes[key]
        return len(doomed)
