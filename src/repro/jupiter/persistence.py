"""Snapshot / restore and server durability for CSS replicas.

A production collaborative editor checkpoints replica state so a client
can restart without replaying its whole history.  This module serialises
every piece of a CSS replica — operations, state-space nodes and ordered
transitions, the order oracle, the pending queue — to plain JSON-able
dictionaries and restores them to working replicas.

Snapshots are *canonical*: every collection is emitted in a sorted or
protocol-defined order (serials by serial number, state keys sorted), so
the same replica always produces byte-identical JSON — which is what lets
tests and operators compare snapshots with plain string equality.

Round-trip fidelity is exact: a restored replica produces byte-identical
behaviour to the original (verified structurally in the tests by
comparing state-space signatures and resuming runs on the restored
replica).

The second half of the module is the **server durability subsystem**
(:class:`ServerWriteAheadLog`): the serialisation authority appends every
operation it serialises — with its assigned serial and origin — to a
write-ahead log *before* broadcasting it, periodically compacts the log
into a full snapshot, and recovers after a crash by restoring the latest
snapshot and replaying the log suffix through a real
:class:`~repro.jupiter.css.CssServer`.  Recovery re-checks the paper's
ordering invariants as it goes: every replayed operation must receive
exactly the serial the log recorded (dense 1..n, no serial skipped or
reused), and the rebuilt state-space must match the logged history.
"""

from __future__ import annotations

import json
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.common.ids import OpId, ReplicaId
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.nary import NaryStateSpace
from repro.jupiter.state_space import StateNode, Transition
from repro.obs import get_obs
from repro.ot.operations import OpKind, Operation

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Primitive codecs
# ----------------------------------------------------------------------
def opid_to_obj(opid: OpId) -> List[Any]:
    return [opid.replica, opid.seq]


def opid_from_obj(obj: List[Any]) -> OpId:
    return OpId(str(obj[0]), int(obj[1]))


def element_to_obj(element: Element) -> Dict[str, Any]:
    return {"value": element.value, "opid": opid_to_obj(element.opid)}


def element_from_obj(obj: Dict[str, Any]) -> Element:
    return Element(obj["value"], opid_from_obj(obj["opid"]))


def operation_to_obj(operation: Operation) -> Dict[str, Any]:
    return {
        "kind": operation.kind.value,
        "opid": opid_to_obj(operation.opid),
        "element": (
            element_to_obj(operation.element)
            if operation.element is not None
            else None
        ),
        "position": operation.position,
        "context": sorted(opid_to_obj(o) for o in operation.context),
    }


def operation_from_obj(obj: Dict[str, Any]) -> Operation:
    return Operation(
        kind=OpKind(obj["kind"]),
        opid=opid_from_obj(obj["opid"]),
        element=(
            element_from_obj(obj["element"])
            if obj["element"] is not None
            else None
        ),
        position=obj["position"],
        context=frozenset(opid_from_obj(o) for o in obj["context"]),
    )


def _state_key_to_obj(key) -> List[List[Any]]:
    return sorted(opid_to_obj(o) for o in key)


def _state_key_from_obj(obj) -> frozenset:
    return frozenset(opid_from_obj(o) for o in obj)


# ----------------------------------------------------------------------
# State-space codec
# ----------------------------------------------------------------------
def space_to_obj(space: NaryStateSpace) -> Dict[str, Any]:
    """Serialise a state-space: nodes (with documents) and transitions."""
    nodes = []
    # iter_documents materialises lazy documents through a transient memo,
    # so snapshotting does not permanently cache every node's document.
    for key, document in space.iter_documents():
        node = space.node(key)
        nodes.append(
            {
                "key": _state_key_to_obj(key),
                "document": [element_to_obj(e) for e in document],
                "children": [
                    {
                        "operation": operation_to_obj(t.operation),
                        "target": _state_key_to_obj(t.target),
                    }
                    for t in node.children
                ],
            }
        )
    return {
        "version": FORMAT_VERSION,
        "final": _state_key_to_obj(space.final_key),
        "ot_count": space.ot_count,
        "nodes": nodes,
    }


def space_from_obj(obj: Dict[str, Any], oracle) -> NaryStateSpace:
    """Rebuild a state-space from its serialised form.

    Reconstruction bypasses :meth:`NaryStateSpace.integrate` — the stored
    structure already encodes every square and sibling order — and
    repopulates the node table directly.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    space = NaryStateSpace(oracle)
    nodes = space._nodes  # populated wholesale during restore
    nodes.clear()
    # Snapshots carry plain sorted frozensets on the wire; restore
    # re-interns every key so the rebuilt space hits the same identity
    # fast paths as one grown through integrate().
    intern = space._interner.intern
    for node_obj in obj["nodes"]:
        key = intern(_state_key_from_obj(node_obj["key"]))
        document = ListDocument(
            element_from_obj(e) for e in node_obj["document"]
        )
        nodes[key] = StateNode(key, document)
    for node_obj in obj["nodes"]:
        key = intern(_state_key_from_obj(node_obj["key"]))
        node = nodes[key]
        for child in node_obj["children"]:
            target = intern(_state_key_from_obj(child["target"]))
            if target not in nodes:
                raise ProtocolError(
                    "snapshot transition points at a missing state"
                )
            node.children.append(
                Transition(key, target, operation_from_obj(child["operation"]))
            )
    space.final_key = intern(_state_key_from_obj(obj["final"]))
    if space.final_key not in nodes:
        raise ProtocolError("snapshot final state missing from node table")
    space.ot_count = int(obj.get("ot_count", 0))
    return space


# ----------------------------------------------------------------------
# Replica snapshots
# ----------------------------------------------------------------------
def snapshot_client(client: CssClient) -> Dict[str, Any]:
    """Serialise a CSS client (space, serial knowledge, pending queue).

    ``serials`` is emitted sorted by serial number (the canonical order of
    :meth:`~repro.jupiter.ordering.ClientOrderOracle.serial_items`), so
    snapshotting the same replica twice — or a replica restored from this
    snapshot — produces byte-identical JSON.
    """
    return {
        "version": FORMAT_VERSION,
        "replica": client.replica_id,
        "next_seq": client.next_seq,
        "space": space_to_obj(client.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in client.oracle.serial_items()
        ],
        "pending": [opid_to_obj(opid) for opid in client.pending_opids()],
    }


def restore_client(obj: Dict[str, Any]) -> CssClient:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    client = CssClient(str(obj["replica"]))
    for opid_obj, serial in obj["serials"]:
        client.oracle.record(opid_from_obj(opid_obj), int(serial))
    client.space = space_from_obj(obj["space"], client.oracle)
    client.restore_session(
        pending=[opid_from_obj(o) for o in obj["pending"]],
        next_seq=int(obj["next_seq"]),
    )
    return client


def checkpoint_client(
    client: CssClient,
    session: Optional[Dict[str, Any]] = None,
    behaviors_len: int = 0,
    delivered: int = 0,
) -> Dict[str, Any]:
    """Cut a crash-recovery checkpoint for one CSS client.

    A checkpoint is what survives a crash: the protocol snapshot
    (:func:`snapshot_client`) plus the durable transport metadata the
    reliable-session layer needs to resume — the client's sender-side
    sequence state (``session``), how many server messages it had
    consumed (``delivered``, the resync cursor of
    :class:`~repro.jupiter.messages.ResyncRequest`), and how long its
    behaviour log was (entries after it are lost with the crash and
    reconstructed by the resync replay).
    """
    return {
        "version": FORMAT_VERSION,
        "client": snapshot_client(client),
        "session": dict(session or {}),
        "behaviors_len": int(behaviors_len),
        "delivered": int(delivered),
    }


def restore_checkpoint(obj: Dict[str, Any]) -> CssClient:
    """Rebuild the protocol replica held in a checkpoint.

    The transport metadata (``obj["session"]``, ``obj["delivered"]``,
    ``obj["behaviors_len"]``) stays with the caller — the event loop
    re-seeds its session endpoints and behaviour log from it.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported checkpoint version {obj.get('version')!r}"
        )
    return restore_client(obj["client"])


def snapshot_server(server: CssServer) -> Dict[str, Any]:
    """Serialise a CSS server (space + full serialisation order).

    ``serials`` is sorted by serial number (see :func:`snapshot_client`),
    so the same server always snapshots to byte-identical JSON.
    """
    return {
        "version": FORMAT_VERSION,
        "replica": server.replica_id,
        "clients": list(server.clients),
        "space": space_to_obj(server.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in server.oracle.serial_items()
        ],
    }


def restore_server(obj: Dict[str, Any]) -> CssServer:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    server = CssServer(str(obj["replica"]), [str(c) for c in obj["clients"]])
    for opid_obj, serial in sorted(obj["serials"], key=lambda item: item[1]):
        assigned = server.oracle.assign(opid_from_obj(opid_obj))
        if assigned != int(serial):
            raise ProtocolError(
                "snapshot serial numbers are not a dense 1..n sequence"
            )
    server.space = space_from_obj(obj["space"], server.oracle)
    return server


# ----------------------------------------------------------------------
# Server durability: write-ahead log + snapshot compaction + recovery
# ----------------------------------------------------------------------
def wal_record_to_obj(
    serial: int, origin: ReplicaId, operation: Operation, epoch: int = 0
) -> Dict[str, Any]:
    """One WAL entry: a serialised operation in server-serial order.

    ``epoch`` is the replication view under which the record was first
    proposed (0 for an unreplicated log).  View changes re-propose the
    uncommitted suffix under a higher epoch, so ``(epoch, serial)`` pairs
    totally order log prefixes across primaries.
    """
    return {
        "serial": int(serial),
        "origin": origin,
        "epoch": int(epoch),
        "operation": operation_to_obj(operation),
    }


def _validate_wal_record(record: Any) -> Dict[str, Any]:
    """Raise :class:`ProtocolError` unless ``record`` is a decodable entry."""
    if not isinstance(record, dict):
        raise ProtocolError(f"WAL record is not an object: {record!r}")
    for field in ("serial", "origin", "operation"):
        if field not in record:
            raise ProtocolError(f"WAL record missing field {field!r}")
    operation_from_obj(record["operation"])  # raises on garbage payloads
    return record


class ServerWriteAheadLog:
    """Durability for the serialisation authority.

    The server appends each operation it serialises — original form,
    origin client, assigned serial — *before* broadcasting it, so a crash
    can never lose serialised history: everything the server has told the
    world is on the log.  Periodically the log is *compacted*: a full
    :func:`snapshot_server` replaces the record prefix it covers, except
    that records a lagging consumer still needs are retained (the
    ``retain_after`` low-water mark — the classic "keep the suffix beyond
    the minimum acknowledged cursor" rule), because the broadcast
    re-shipment of recovery (:meth:`broadcasts_for`) rebuilds
    ``ServerOperation`` payloads from records, not from the snapshot.

    Recovery (:meth:`recover`) restores the latest snapshot and replays
    the record suffix through a real :class:`CssServer` receive path,
    verifying that every replayed operation is assigned exactly the
    serial the log recorded — the dense 1..n sequence every proof in the
    paper leans on resumes precisely where the log left off, with no
    serial skipped or reused.

    The whole structure is JSON-able (:meth:`to_obj` / :meth:`from_obj`);
    in a deployment each :meth:`append` would be an fsync'd disk write.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: Sequence[ReplicaId],
        snapshot_every: int = 8,
        initial_text: str = "",
    ) -> None:
        if snapshot_every < 1:
            raise ProtocolError("snapshot_every must be >= 1")
        self.replica_id = replica_id
        self.clients = list(clients)
        self.snapshot_every = snapshot_every
        self.initial_text = initial_text
        #: latest compaction snapshot (``None`` until the first compaction)
        self.snapshot: Optional[Dict[str, Any]] = None
        #: records after the truncation point, ascending contiguous serials
        self.records: List[Dict[str, Any]] = []
        self.appends = 0
        self.compactions = 0
        self.records_truncated = 0
        #: epoch of the highest record witnessed (0 before any append)
        self.last_epoch = 0
        self._next_serial = 1
        self._since_snapshot = 0
        self._obs = get_obs()

    # -- write path ----------------------------------------------------
    @property
    def last_serial(self) -> int:
        """The highest serial the log has witnessed (0 when empty)."""
        return self._next_serial - 1

    def append(
        self,
        serial: int,
        origin: ReplicaId,
        operation: Operation,
        epoch: int = 0,
    ) -> None:
        """Log one serialised operation (call *before* broadcasting it)."""
        if serial != self._next_serial:
            raise ProtocolError(
                f"WAL append out of order: got serial {serial}, "
                f"expected {self._next_serial}"
            )
        if epoch < self.last_epoch:
            raise ProtocolError(
                f"WAL append with stale epoch {epoch} < {self.last_epoch}"
            )
        self.records.append(
            wal_record_to_obj(serial, origin, operation, epoch)
        )
        self.last_epoch = int(epoch)
        self._next_serial += 1
        self.appends += 1
        self._since_snapshot += 1
        self._obs.wal_appends.inc()

    def truncate_from(self, serial: int) -> List[Dict[str, Any]]:
        """Discard records with serial >= ``serial``; return them.

        View changes use this on a backup whose uncommitted suffix lost to
        the adopted log: the suffix is cut, handed back to the caller (the
        new primary re-proposes equivalent records under its epoch), and
        the log resumes appending at ``serial``.
        """
        cut = [r for r in self.records if int(r["serial"]) >= serial]
        self.records = [r for r in self.records if int(r["serial"]) < serial]
        self._next_serial = min(self._next_serial, int(serial))
        self.last_epoch = (
            int(self.records[-1]["epoch"]) if self.records else 0
        )
        return cut

    def record_at(self, serial: int) -> Optional[Dict[str, Any]]:
        """The retained record with ``serial``, or ``None`` if truncated."""
        for record in self.records:
            if int(record["serial"]) == serial:
                return record
        return None

    def should_compact(self) -> bool:
        return self._since_snapshot >= self.snapshot_every

    def compact(
        self, server: CssServer, retain_after: Optional[int] = None
    ) -> int:
        """Snapshot ``server`` and truncate the record prefix it covers.

        ``retain_after`` is the low-water mark: records with a serial
        above it are kept even though the snapshot covers them, because a
        consumer (a client session cursor or a client-crash checkpoint)
        may still need their broadcast re-shipped.  Returns the number of
        records truncated.
        """
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        self.snapshot = snapshot_server(server)
        floor = self.last_serial
        if retain_after is not None:
            floor = min(floor, int(retain_after))
        kept = [r for r in self.records if r["serial"] > floor]
        truncated = len(self.records) - len(kept)
        self.records = kept
        self.records_truncated += truncated
        self.compactions += 1
        self._since_snapshot = 0
        if obs.enabled:
            obs.wal_compactions.inc()
            obs.wal_records_truncated.inc(truncated)
            obs.wal_compaction_duration.observe(time.perf_counter() - started)
            obs.trace(
                "wal.compact",
                serial=self.last_serial,
                truncated=truncated,
                retained=len(kept),
            )
        return truncated

    # -- recovery ------------------------------------------------------
    def recover(self) -> CssServer:
        """Rebuild the server: latest snapshot + replay of the log suffix.

        The suffix replays through the real :meth:`CssServer.receive`
        path, so recovery exercises serialisation, integration and
        broadcast construction exactly as live traffic does.  Every
        replayed operation must be assigned the serial the log recorded.
        """
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        if self.snapshot is not None:
            server = restore_server(self.snapshot)
        else:
            initial = (
                ListDocument.from_string(self.initial_text)
                if self.initial_text
                else None
            )
            server = CssServer(self.replica_id, list(self.clients), initial)
        for record in self.records:
            serial = int(record["serial"])
            if serial <= server.oracle.last_serial:
                continue  # snapshot already covers this retained record
            operation = operation_from_obj(record["operation"])
            server.receive(record["origin"], ClientOperation(operation))
            assigned = server.oracle.serial_of(operation.opid)
            if assigned != serial:
                raise ProtocolError(
                    f"WAL replay assigned serial {assigned} to "
                    f"{operation.opid} but the log recorded {serial}; "
                    "the recovered order diverges from the logged one"
                )
        if server.oracle.last_serial != self.last_serial:
            raise ProtocolError(
                f"WAL recovery stopped at serial "
                f"{server.oracle.last_serial} but the log reaches "
                f"{self.last_serial}"
            )
        if obs.enabled:
            obs.wal_recovery_duration.observe(time.perf_counter() - started)
            obs.trace(
                "wal.recover",
                serial=self.last_serial,
                replayed=len(self.records),
                from_snapshot=self.snapshot is not None,
            )
        return server

    def broadcasts_for(
        self, server: CssServer, delivered: int
    ) -> List[ServerOperation]:
        """Rebuild the broadcasts a consumer with cursor ``delivered`` missed.

        Answers a :class:`~repro.jupiter.messages.ResyncRequest` from the
        replayed log: one :class:`ServerOperation` per serial in
        ``delivered + 1 .. last_serial``, with the prefix sets recomputed
        from the recovered server's oracle.
        """
        total = self.last_serial
        if not 0 <= delivered <= total:
            raise ProtocolError(
                f"resync cursor {delivered} outside the log's 0..{total}"
            )
        if delivered == total:
            return []
        available = {int(r["serial"]): r for r in self.records}
        missing = [
            serial
            for serial in range(delivered + 1, total + 1)
            if serial not in available
        ]
        if missing:
            raise ProtocolError(
                f"WAL compacted past a consumer: serials {missing} were "
                "truncated but a resync cursor still needs them (the "
                "retain_after low-water mark was too aggressive)"
            )
        return [
            ServerOperation(
                operation=operation_from_obj(available[serial]["operation"]),
                origin=available[serial]["origin"],
                serial=serial,
                prefix=server.oracle.serialized_before(serial),
            )
            for serial in range(delivered + 1, total + 1)
        ]

    def origin_counts(self) -> Dict[ReplicaId, int]:
        """Serialised operations per origin client (snapshot + suffix).

        This is exactly the per-channel consumption count the server's
        session receivers held before the crash: origin ``c`` had
        ``origin_counts()[c]`` frames consumed from its channel, so the
        recovered receiver resumes expecting frame ``count + 1``.
        """
        counts: Dict[ReplicaId, int] = {}
        seen: set = set()
        if self.snapshot is not None:
            for opid_obj, _serial in self.snapshot["serials"]:
                opid = opid_from_obj(opid_obj)
                seen.add(opid)
                counts[opid.replica] = counts.get(opid.replica, 0) + 1
        for record in self.records:
            opid = opid_from_obj(record["operation"]["opid"])
            if opid in seen:
                continue  # retained record the snapshot also covers
            counts[record["origin"]] = counts.get(record["origin"], 0) + 1
        return counts

    # -- codec ---------------------------------------------------------
    def to_obj(self) -> Dict[str, Any]:
        return {
            "version": FORMAT_VERSION,
            "replica": self.replica_id,
            "clients": list(self.clients),
            "snapshot_every": self.snapshot_every,
            "initial_text": self.initial_text,
            "snapshot": self.snapshot,
            "records": [dict(r) for r in self.records],
            "next_serial": self._next_serial,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "ServerWriteAheadLog":
        if obj.get("version") != FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported WAL version {obj.get('version')!r}"
            )
        wal = cls(
            str(obj["replica"]),
            [str(c) for c in obj["clients"]],
            snapshot_every=int(obj["snapshot_every"]),
            initial_text=str(obj.get("initial_text", "")),
        )
        wal.snapshot = obj["snapshot"]
        wal.records = [dict(r) for r in obj["records"]]
        wal._next_serial = int(obj["next_serial"])
        if wal.records:
            wal.last_epoch = int(wal.records[-1].get("epoch", 0))
        return wal


# ----------------------------------------------------------------------
# On-disk WAL: header + one JSON record per line, torn-tail tolerant
# ----------------------------------------------------------------------
def save_wal(wal: ServerWriteAheadLog, path: str) -> None:
    """Persist a WAL as JSON-lines: one header line, one line per record.

    The record-per-line layout mirrors how an appending log hits disk: a
    crash mid-append leaves at most one truncated final line, which
    :func:`load_wal` detects and drops (the torn tail).
    """
    header = wal.to_obj()
    records = header.pop("records")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_wal(path: str) -> ServerWriteAheadLog:
    """Load a WAL saved by :func:`save_wal`, tolerating a torn tail.

    A crash mid-append can leave the *final* record line truncated or
    garbled.  That record was never acknowledged to anyone (the append
    had not completed, so the op was neither broadcast nor quorum
    certified), so it is safe to drop: recovery logs a warning, bumps the
    ``wal_torn_tail_dropped`` counter, and resumes from the previous
    record.  Corruption anywhere *before* the final record is not a torn
    tail — it means lost acknowledged history — and raises
    :class:`ProtocolError`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line.strip()]
    if not lines:
        raise ProtocolError(f"WAL file {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError as error:
        raise ProtocolError(f"WAL header in {path} is corrupt: {error}")
    records: List[Dict[str, Any]] = []
    torn: Optional[str] = None
    for index, line in enumerate(lines[1:], start=1):
        final = index == len(lines) - 1
        try:
            records.append(_validate_wal_record(json.loads(line)))
        except (ValueError, ProtocolError) as error:
            if not final:
                raise ProtocolError(
                    f"WAL record {index} in {path} is corrupt mid-log "
                    f"(not a torn tail): {error}"
                )
            torn = str(error)
    if torn is not None:
        warnings.warn(
            f"dropping torn final WAL record in {path}: {torn}",
            RuntimeWarning,
            stacklevel=2,
        )
        get_obs().wal_torn_tail_dropped.inc()
    header["records"] = records
    header["next_serial"] = (
        int(records[-1]["serial"]) + 1
        if records
        else _post_snapshot_serial(header)
    )
    return ServerWriteAheadLog.from_obj(header)


def _post_snapshot_serial(header: Dict[str, Any]) -> int:
    """First serial after the header's snapshot (1 if no snapshot)."""
    snapshot = header.get("snapshot")
    if not snapshot:
        return 1
    serials = [int(serial) for _opid, serial in snapshot["serials"]]
    return max(serials, default=0) + 1
