"""Snapshot / restore for CSS replicas (crash recovery, debugging dumps).

A production collaborative editor checkpoints replica state so a client
can restart without replaying its whole history.  This module serialises
every piece of a CSS replica — operations, state-space nodes and ordered
transitions, the order oracle, the pending queue — to plain JSON-able
dictionaries and restores them to working replicas.

Round-trip fidelity is exact: a restored replica produces byte-identical
behaviour to the original (verified structurally in the tests by
comparing state-space signatures and resuming runs on the restored
replica).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.ids import OpId, ReplicaId
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.nary import NaryStateSpace
from repro.jupiter.state_space import StateNode, Transition
from repro.ot.operations import OpKind, Operation

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Primitive codecs
# ----------------------------------------------------------------------
def opid_to_obj(opid: OpId) -> List[Any]:
    return [opid.replica, opid.seq]


def opid_from_obj(obj: List[Any]) -> OpId:
    return OpId(str(obj[0]), int(obj[1]))


def element_to_obj(element: Element) -> Dict[str, Any]:
    return {"value": element.value, "opid": opid_to_obj(element.opid)}


def element_from_obj(obj: Dict[str, Any]) -> Element:
    return Element(obj["value"], opid_from_obj(obj["opid"]))


def operation_to_obj(operation: Operation) -> Dict[str, Any]:
    return {
        "kind": operation.kind.value,
        "opid": opid_to_obj(operation.opid),
        "element": (
            element_to_obj(operation.element)
            if operation.element is not None
            else None
        ),
        "position": operation.position,
        "context": sorted(opid_to_obj(o) for o in operation.context),
    }


def operation_from_obj(obj: Dict[str, Any]) -> Operation:
    return Operation(
        kind=OpKind(obj["kind"]),
        opid=opid_from_obj(obj["opid"]),
        element=(
            element_from_obj(obj["element"])
            if obj["element"] is not None
            else None
        ),
        position=obj["position"],
        context=frozenset(opid_from_obj(o) for o in obj["context"]),
    )


def _state_key_to_obj(key) -> List[List[Any]]:
    return sorted(opid_to_obj(o) for o in key)


def _state_key_from_obj(obj) -> frozenset:
    return frozenset(opid_from_obj(o) for o in obj)


# ----------------------------------------------------------------------
# State-space codec
# ----------------------------------------------------------------------
def space_to_obj(space: NaryStateSpace) -> Dict[str, Any]:
    """Serialise a state-space: nodes (with documents) and transitions."""
    nodes = []
    for key in space.states():
        node = space.node(key)
        nodes.append(
            {
                "key": _state_key_to_obj(key),
                "document": [element_to_obj(e) for e in node.document],
                "children": [
                    {
                        "operation": operation_to_obj(t.operation),
                        "target": _state_key_to_obj(t.target),
                    }
                    for t in node.children
                ],
            }
        )
    return {
        "version": FORMAT_VERSION,
        "final": _state_key_to_obj(space.final_key),
        "ot_count": space.ot_count,
        "nodes": nodes,
    }


def space_from_obj(obj: Dict[str, Any], oracle) -> NaryStateSpace:
    """Rebuild a state-space from its serialised form.

    Reconstruction bypasses :meth:`NaryStateSpace.integrate` — the stored
    structure already encodes every square and sibling order — and
    repopulates the node table directly.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    space = NaryStateSpace(oracle)
    nodes = space._nodes  # populated wholesale during restore
    nodes.clear()
    for node_obj in obj["nodes"]:
        key = _state_key_from_obj(node_obj["key"])
        document = ListDocument(
            element_from_obj(e) for e in node_obj["document"]
        )
        nodes[key] = StateNode(key, document)
    for node_obj in obj["nodes"]:
        key = _state_key_from_obj(node_obj["key"])
        node = nodes[key]
        for child in node_obj["children"]:
            target = _state_key_from_obj(child["target"])
            if target not in nodes:
                raise ProtocolError(
                    "snapshot transition points at a missing state"
                )
            node.children.append(
                Transition(key, target, operation_from_obj(child["operation"]))
            )
    space.final_key = _state_key_from_obj(obj["final"])
    if space.final_key not in nodes:
        raise ProtocolError("snapshot final state missing from node table")
    space.ot_count = int(obj.get("ot_count", 0))
    return space


# ----------------------------------------------------------------------
# Replica snapshots
# ----------------------------------------------------------------------
def snapshot_client(client: CssClient) -> Dict[str, Any]:
    """Serialise a CSS client (space, serial knowledge, pending queue)."""
    return {
        "version": FORMAT_VERSION,
        "replica": client.replica_id,
        "next_seq": client._seq.current,
        "space": space_to_obj(client.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in client.oracle._serial_by_opid.items()
        ],
        "pending": [opid_to_obj(opid) for opid in client._pending],
    }


def restore_client(obj: Dict[str, Any]) -> CssClient:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    client = CssClient(str(obj["replica"]))
    for opid_obj, serial in obj["serials"]:
        client.oracle.record(opid_from_obj(opid_obj), int(serial))
    client.space = space_from_obj(obj["space"], client.oracle)
    client._pending = [opid_from_obj(o) for o in obj["pending"]]
    client._seq = type(client._seq)(
        client.replica_id, start=int(obj["next_seq"])
    )
    return client


def checkpoint_client(
    client: CssClient,
    session: Optional[Dict[str, Any]] = None,
    behaviors_len: int = 0,
    delivered: int = 0,
) -> Dict[str, Any]:
    """Cut a crash-recovery checkpoint for one CSS client.

    A checkpoint is what survives a crash: the protocol snapshot
    (:func:`snapshot_client`) plus the durable transport metadata the
    reliable-session layer needs to resume — the client's sender-side
    sequence state (``session``), how many server messages it had
    consumed (``delivered``, the resync cursor of
    :class:`~repro.jupiter.messages.ResyncRequest`), and how long its
    behaviour log was (entries after it are lost with the crash and
    reconstructed by the resync replay).
    """
    return {
        "version": FORMAT_VERSION,
        "client": snapshot_client(client),
        "session": dict(session or {}),
        "behaviors_len": int(behaviors_len),
        "delivered": int(delivered),
    }


def restore_checkpoint(obj: Dict[str, Any]) -> CssClient:
    """Rebuild the protocol replica held in a checkpoint.

    The transport metadata (``obj["session"]``, ``obj["delivered"]``,
    ``obj["behaviors_len"]``) stays with the caller — the event loop
    re-seeds its session endpoints and behaviour log from it.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported checkpoint version {obj.get('version')!r}"
        )
    return restore_client(obj["client"])


def snapshot_server(server: CssServer) -> Dict[str, Any]:
    """Serialise a CSS server (space + full serialisation order)."""
    return {
        "version": FORMAT_VERSION,
        "replica": server.replica_id,
        "clients": list(server.clients),
        "space": space_to_obj(server.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in server.oracle._serial_by_opid.items()
        ],
    }


def restore_server(obj: Dict[str, Any]) -> CssServer:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    server = CssServer(str(obj["replica"]), [str(c) for c in obj["clients"]])
    for opid_obj, serial in sorted(obj["serials"], key=lambda item: item[1]):
        assigned = server.oracle.assign(opid_from_obj(opid_obj))
        if assigned != int(serial):
            raise ProtocolError(
                "snapshot serial numbers are not a dense 1..n sequence"
            )
    server.space = space_from_obj(obj["space"], server.oracle)
    return server
