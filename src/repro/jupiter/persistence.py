"""Snapshot / restore and server durability for CSS replicas.

A production collaborative editor checkpoints replica state so a client
can restart without replaying its whole history.  This module serialises
every piece of a CSS replica — operations, state-space nodes and ordered
transitions, the order oracle, the pending queue — to plain JSON-able
dictionaries and restores them to working replicas.

Snapshots are *canonical*: every collection is emitted in a sorted or
protocol-defined order (serials by serial number, state keys sorted), so
the same replica always produces byte-identical JSON — which is what lets
tests and operators compare snapshots with plain string equality.

Round-trip fidelity is exact: a restored replica produces byte-identical
behaviour to the original (verified structurally in the tests by
comparing state-space signatures and resuming runs on the restored
replica).

The second half of the module is the **server durability subsystem**
(:class:`ServerWriteAheadLog`): the serialisation authority appends every
operation it serialises — with its assigned serial and origin — to a
write-ahead log *before* broadcasting it, periodically compacts the log
into a full snapshot, and recovers after a crash by restoring the latest
snapshot and replaying the log suffix through a real
:class:`~repro.jupiter.css.CssServer`.  Recovery re-checks the paper's
ordering invariants as it goes: every replayed operation must receive
exactly the serial the log recorded (dense 1..n, no serial skipped or
reused), and the rebuilt state-space must match the logged history.
"""

from __future__ import annotations

import json
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.common.ids import OpId, ReplicaId
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.nary import NaryStateSpace
from repro.jupiter.ordering import ServerOrderOracle
from repro.jupiter.state_space import StateNode, Transition
from repro.obs import get_obs
from repro.ot.operations import OpKind, Operation

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Primitive codecs
# ----------------------------------------------------------------------
def opid_to_obj(opid: OpId) -> List[Any]:
    return [opid.replica, opid.seq]


def opid_from_obj(obj: List[Any]) -> OpId:
    return OpId(str(obj[0]), int(obj[1]))


def element_to_obj(element: Element) -> Dict[str, Any]:
    return {"value": element.value, "opid": opid_to_obj(element.opid)}


def element_from_obj(obj: Dict[str, Any]) -> Element:
    return Element(obj["value"], opid_from_obj(obj["opid"]))


def operation_to_obj(
    operation: Operation, *, with_context: bool = True
) -> Dict[str, Any]:
    obj = {
        "kind": operation.kind.value,
        "opid": opid_to_obj(operation.opid),
        "element": (
            element_to_obj(operation.element)
            if operation.element is not None
            else None
        ),
        "position": operation.position,
    }
    if with_context:
        obj["context"] = sorted(opid_to_obj(o) for o in operation.context)
    return obj


def operation_from_obj(obj: Dict[str, Any]) -> Operation:
    return Operation(
        kind=OpKind(obj["kind"]),
        opid=opid_from_obj(obj["opid"]),
        element=(
            element_from_obj(obj["element"])
            if obj["element"] is not None
            else None
        ),
        position=obj["position"],
        context=frozenset(opid_from_obj(o) for o in obj["context"]),
    )


def _state_key_to_obj(key) -> List[List[Any]]:
    return sorted(opid_to_obj(o) for o in key)


def _state_key_from_obj(obj) -> frozenset:
    return frozenset(opid_from_obj(o) for o in obj)


# ----------------------------------------------------------------------
# Serial-encoded operation contexts (the active-window wire/WAL form)
# ----------------------------------------------------------------------
# A context is the set of operations its generator had processed: the
# first ``d`` serials of the total order plus a handful of the
# generator's own then-pending operations ("extras", serialised later).
# Encoding it as ``[d, [extra opids]]`` is O(extras) instead of
# O(history) *and* rebase-invariant: any decoder resolves the dense
# prefix ``(its own base, d]`` against its serial log, so the same bytes
# decode correctly before and after active-window GC.
def compact_context(operation: Operation, oracle) -> List[Any]:
    """Encode ``operation.context`` as ``[d, [extra opid objs]]``.

    Every context member must already be serialised (true whenever the
    server appends: FIFO channels serialise a client's earlier pending
    operations before the operation that references them).  ``d`` is the
    maximal dense serial prefix the context covers — at least the
    generator's own split, so every invariant proved for the generator's
    ``d`` holds for this one too.
    """
    base = oracle.base
    serials = sorted(oracle.serial_of(o) for o in operation.context)
    d = base
    extra_serials: List[int] = []
    for serial in serials:
        if serial == d + 1 and not extra_serials:
            d = serial
        else:
            extra_serials.append(serial)
    return [
        d,
        sorted(opid_to_obj(oracle.opid_of(s)) for s in extra_serials),
    ]


def context_from_compact(ctx_obj: List[Any], oracle) -> frozenset:
    """Decode a serial-encoded context relative to ``oracle``'s base."""
    d = int(ctx_obj[0])
    base = oracle.base
    if d < base:
        raise ProtocolError(
            f"compact context floor {d} is below the decoder's GC base "
            f"{base}; the record should have been unreachable"
        )
    ids = oracle.opids_between(base, d) if d > base else frozenset()
    extras = ctx_obj[1]
    if extras:
        ids = ids.union(opid_from_obj(o) for o in extras)
    return ids


def record_operation(record: Dict[str, Any], oracle=None) -> Operation:
    """Decode a WAL record's operation, resolving a compact context.

    Records written by the net runtime store their context
    serial-encoded (``record["ctx"]``) and need an oracle that has
    witnessed the serials below the record's; plain records carry the
    absolute context inline and decode without one.
    """
    obj = record["operation"]
    if "ctx" not in record:
        return operation_from_obj(obj)
    if oracle is None:
        raise ProtocolError(
            "compact WAL record needs an order oracle to decode"
        )
    return Operation(
        kind=OpKind(obj["kind"]),
        opid=opid_from_obj(obj["opid"]),
        element=(
            element_from_obj(obj["element"])
            if obj["element"] is not None
            else None
        ),
        position=obj["position"],
        context=context_from_compact(record["ctx"], oracle),
    )


# ----------------------------------------------------------------------
# State-space codec
# ----------------------------------------------------------------------
def space_to_obj(space: NaryStateSpace) -> Dict[str, Any]:
    """Serialise a state-space: nodes (with documents) and transitions."""
    nodes = []
    # iter_documents materialises lazy documents through a transient memo,
    # so snapshotting does not permanently cache every node's document.
    for key, document in space.iter_documents():
        node = space.node(key)
        nodes.append(
            {
                "key": _state_key_to_obj(key),
                "document": [element_to_obj(e) for e in document],
                "children": [
                    {
                        "operation": operation_to_obj(t.operation),
                        "target": _state_key_to_obj(t.target),
                    }
                    for t in node.children
                ],
            }
        )
    return {
        "version": FORMAT_VERSION,
        "final": _state_key_to_obj(space.final_key),
        "ot_count": space.ot_count,
        "nodes": nodes,
    }


def space_from_obj(obj: Dict[str, Any], oracle) -> NaryStateSpace:
    """Rebuild a state-space from its serialised form.

    Reconstruction bypasses :meth:`NaryStateSpace.integrate` — the stored
    structure already encodes every square and sibling order — and
    repopulates the node table directly.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    space = NaryStateSpace(oracle)
    nodes = space._nodes  # populated wholesale during restore
    nodes.clear()
    # Snapshots carry plain sorted frozensets on the wire; restore
    # re-interns every key so the rebuilt space hits the same identity
    # fast paths as one grown through integrate().
    intern = space._interner.intern
    for node_obj in obj["nodes"]:
        key = intern(_state_key_from_obj(node_obj["key"]))
        document = ListDocument(
            element_from_obj(e) for e in node_obj["document"]
        )
        nodes[key] = StateNode(key, document)
    for node_obj in obj["nodes"]:
        key = intern(_state_key_from_obj(node_obj["key"]))
        node = nodes[key]
        for child in node_obj["children"]:
            target = intern(_state_key_from_obj(child["target"]))
            if target not in nodes:
                raise ProtocolError(
                    "snapshot transition points at a missing state"
                )
            node.children.append(
                Transition(key, target, operation_from_obj(child["operation"]))
            )
    space.final_key = intern(_state_key_from_obj(obj["final"]))
    if space.final_key not in nodes:
        raise ProtocolError("snapshot final state missing from node table")
    space.ot_count = int(obj.get("ot_count", 0))
    return space


# ----------------------------------------------------------------------
# Replica snapshots
# ----------------------------------------------------------------------
def snapshot_client(client: CssClient) -> Dict[str, Any]:
    """Serialise a CSS client (space, serial knowledge, pending queue).

    ``serials`` is emitted sorted by serial number (the canonical order of
    :meth:`~repro.jupiter.ordering.ClientOrderOracle.serial_items`), so
    snapshotting the same replica twice — or a replica restored from this
    snapshot — produces byte-identical JSON.
    """
    return {
        "version": FORMAT_VERSION,
        "replica": client.replica_id,
        "next_seq": client.next_seq,
        "space": space_to_obj(client.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in client.oracle.serial_items()
        ],
        "pending": [opid_to_obj(opid) for opid in client.pending_opids()],
    }


def restore_client(obj: Dict[str, Any]) -> CssClient:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    client = CssClient(str(obj["replica"]))
    for opid_obj, serial in obj["serials"]:
        client.oracle.record(opid_from_obj(opid_obj), int(serial))
    client.space = space_from_obj(obj["space"], client.oracle)
    client.restore_session(
        pending=[opid_from_obj(o) for o in obj["pending"]],
        next_seq=int(obj["next_seq"]),
    )
    return client


def checkpoint_client(
    client: CssClient,
    session: Optional[Dict[str, Any]] = None,
    behaviors_len: int = 0,
    delivered: int = 0,
) -> Dict[str, Any]:
    """Cut a crash-recovery checkpoint for one CSS client.

    A checkpoint is what survives a crash: the protocol snapshot
    (:func:`snapshot_client`) plus the durable transport metadata the
    reliable-session layer needs to resume — the client's sender-side
    sequence state (``session``), how many server messages it had
    consumed (``delivered``, the resync cursor of
    :class:`~repro.jupiter.messages.ResyncRequest`), and how long its
    behaviour log was (entries after it are lost with the crash and
    reconstructed by the resync replay).
    """
    return {
        "version": FORMAT_VERSION,
        "client": snapshot_client(client),
        "session": dict(session or {}),
        "behaviors_len": int(behaviors_len),
        "delivered": int(delivered),
    }


def restore_checkpoint(obj: Dict[str, Any]) -> CssClient:
    """Rebuild the protocol replica held in a checkpoint.

    The transport metadata (``obj["session"]``, ``obj["delivered"]``,
    ``obj["behaviors_len"]``) stays with the caller — the event loop
    re-seeds its session endpoints and behaviour log from it.
    """
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported checkpoint version {obj.get('version')!r}"
        )
    return restore_client(obj["client"])


def snapshot_server(server: CssServer) -> Dict[str, Any]:
    """Serialise a CSS server (space + active-window serialisation order).

    ``serials`` is sorted by serial number (see :func:`snapshot_client`),
    so the same server always snapshots to byte-identical JSON.  A server
    whose state was rebased by active-window GC snapshots only the
    serials past its ``base`` — everything below it left the state-space
    and the keys are already relative to it — so checkpoints stay
    O(active window).
    """
    base = server.oracle.base
    snapshot = {
        "version": FORMAT_VERSION,
        "replica": server.replica_id,
        "clients": list(server.clients),
        "space": space_to_obj(server.space),
        "serials": [
            [opid_to_obj(opid), serial]
            for opid, serial in server.oracle.serial_items(after=base)
        ],
    }
    if base:
        snapshot["base"] = base
    return snapshot


def restore_server(obj: Dict[str, Any]) -> CssServer:
    if obj.get("version") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported snapshot version {obj.get('version')!r}"
        )
    server = CssServer(str(obj["replica"]), [str(c) for c in obj["clients"]])
    base = int(obj.get("base", 0))
    if base:
        # The snapshot was cut after active-window GC: re-seat the oracle
        # at the rebase floor so replayed serials resume densely there.
        oracle = ServerOrderOracle(start=base)
        server.oracle = oracle
    for opid_obj, serial in sorted(obj["serials"], key=lambda item: item[1]):
        assigned = server.oracle.assign(opid_from_obj(opid_obj))
        if assigned != int(serial):
            raise ProtocolError(
                "snapshot serial numbers are not a dense base+1..n sequence"
            )
    server.space = space_from_obj(obj["space"], server.oracle)
    return server


# ----------------------------------------------------------------------
# Server durability: write-ahead log + snapshot compaction + recovery
# ----------------------------------------------------------------------
def wal_record_to_obj(
    serial: int,
    origin: ReplicaId,
    operation: Operation,
    epoch: int = 0,
    ctx: Optional[List[Any]] = None,
) -> Dict[str, Any]:
    """One WAL entry: a serialised operation in server-serial order.

    ``epoch`` is the replication view under which the record was first
    proposed (0 for an unreplicated log).  View changes re-propose the
    uncommitted suffix under a higher epoch, so ``(epoch, serial)`` pairs
    totally order log prefixes across primaries.

    ``ctx`` is the serial-encoded context (see :func:`compact_context`);
    when given, the record omits the O(history) absolute context and
    stores the O(extras) encoding instead — decode it back with
    :func:`record_operation`.
    """
    record = {
        "serial": int(serial),
        "origin": origin,
        "epoch": int(epoch),
        "operation": operation_to_obj(operation, with_context=ctx is None),
    }
    if ctx is not None:
        record["ctx"] = [int(ctx[0]), list(ctx[1])]
    return record


def _validate_wal_record(record: Any) -> Dict[str, Any]:
    """Raise :class:`ProtocolError` unless ``record`` is a decodable entry."""
    if not isinstance(record, dict):
        raise ProtocolError(f"WAL record is not an object: {record!r}")
    for field in ("serial", "origin", "operation"):
        if field not in record:
            raise ProtocolError(f"WAL record missing field {field!r}")
    ctx = record.get("ctx")
    if ctx is not None:
        if (
            not isinstance(ctx, list)
            or len(ctx) != 2
            or not isinstance(ctx[0], int)
            or not isinstance(ctx[1], list)
        ):
            raise ProtocolError(
                f"WAL record has malformed compact context {ctx!r}"
            )
        # Validate everything but the (serial-encoded) context.
        operation_from_obj({**record["operation"], "context": ctx[1]})
    else:
        operation_from_obj(record["operation"])  # raises on garbage payloads
    return record


def _validate_wal_delta(delta: Any) -> Dict[str, Any]:
    """Raise :class:`ProtocolError` unless ``delta`` is a delta-snapshot."""
    if not isinstance(delta, dict):
        raise ProtocolError(f"WAL delta is not an object: {delta!r}")
    for field in ("upto", "floor", "final", "added", "removed", "touched",
                  "serials"):
        if field not in delta:
            raise ProtocolError(f"WAL delta missing field {field!r}")
    for node_obj in delta["added"]:
        if "key" not in node_obj or "children" not in node_obj:
            raise ProtocolError("WAL delta added-node missing key/children")
    return delta


class ServerWriteAheadLog:
    """Durability for the serialisation authority.

    The server appends each operation it serialises — original form,
    origin client, assigned serial — *before* broadcasting it, so a crash
    can never lose serialised history: everything the server has told the
    world is on the log.  Periodically the log is *compacted*: a full
    :func:`snapshot_server` replaces the record prefix it covers, except
    that records a lagging consumer still needs are retained (the
    ``retain_after`` low-water mark — the classic "keep the suffix beyond
    the minimum acknowledged cursor" rule), because the broadcast
    re-shipment of recovery (:meth:`broadcasts_for`) rebuilds
    ``ServerOperation`` payloads from records, not from the snapshot.

    Recovery (:meth:`recover`) restores the latest snapshot and replays
    the record suffix through a real :class:`CssServer` receive path,
    verifying that every replayed operation is assigned exactly the
    serial the log recorded — the dense 1..n sequence every proof in the
    paper leans on resumes precisely where the log left off, with no
    serial skipped or reused.

    Compaction is **incremental**: after the first full checkpoint,
    subsequent compactions emit *delta snapshots* — the state-space nodes
    added, removed, or re-ordered since the previous compaction, plus the
    serials assigned since — and every ``checkpoint_every`` deltas (or
    whenever active-window GC moved the rebase floor) a fresh full
    checkpoint restarts the chain.  Recovery merges checkpoint + deltas
    back into one snapshot and replays the record suffix as before.

    The whole structure is JSON-able (:meth:`to_obj` / :meth:`from_obj`);
    in a deployment each :meth:`append` would be an fsync'd disk write.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: Sequence[ReplicaId],
        snapshot_every: int = 8,
        initial_text: str = "",
        checkpoint_every: int = 16,
    ) -> None:
        if snapshot_every < 1:
            raise ProtocolError("snapshot_every must be >= 1")
        if checkpoint_every < 1:
            raise ProtocolError("checkpoint_every must be >= 1")
        self.replica_id = replica_id
        self.clients = list(clients)
        self.snapshot_every = snapshot_every
        self.checkpoint_every = checkpoint_every
        self.initial_text = initial_text
        #: latest full checkpoint (``None`` until the first compaction)
        self.snapshot: Optional[Dict[str, Any]] = None
        #: delta snapshots taken since ``snapshot``, oldest first
        self.deltas: List[Dict[str, Any]] = []
        #: records after the truncation point, ascending contiguous serials
        self.records: List[Dict[str, Any]] = []
        self.appends = 0
        self.compactions = 0
        self.records_truncated = 0
        #: what the last :meth:`compact` emitted: ``"full"`` or ``"delta"``
        #: (``None`` before any compaction) — the disk layer appends the
        #: delta as one line instead of rewriting the file when "delta"
        self.last_compaction_mode: Optional[str] = None
        self.last_delta: Optional[Dict[str, Any]] = None
        #: epoch of the highest record witnessed (0 before any append)
        self.last_epoch = 0
        self._next_serial = 1
        self._since_snapshot = 0
        # Diff base for the next delta: node-key -> child-transition count
        # as of the previous compaction.  ``None`` (fresh or restored log)
        # forces the next compaction to be a full checkpoint.
        self._shadow: Optional[Dict[Any, int]] = None
        self._shadow_upto = 0
        self._shadow_base = 0
        self._obs = get_obs()

    # -- write path ----------------------------------------------------
    @property
    def last_serial(self) -> int:
        """The highest serial the log has witnessed (0 when empty)."""
        return self._next_serial - 1

    def append(
        self,
        serial: int,
        origin: ReplicaId,
        operation: Operation,
        epoch: int = 0,
        ctx: Optional[List[Any]] = None,
    ) -> None:
        """Log one serialised operation (call *before* broadcasting it).

        ``ctx`` stores the context serial-encoded (the net runtime's
        O(active-window) form, see :func:`compact_context`) instead of
        the absolute opid set.
        """
        self.append_record(
            wal_record_to_obj(serial, origin, operation, epoch, ctx=ctx)
        )

    def append_record(self, record: Dict[str, Any]) -> None:
        """Append an already-encoded record verbatim.

        Replication backups use this: a compact-context record can only
        be *decoded* with an order oracle that witnessed the serials
        below it, which a backup does not run — but it never needs to
        decode, only to store the bytes the primary certified.
        """
        serial = int(record["serial"])
        epoch = int(record.get("epoch", 0))
        if serial != self._next_serial:
            raise ProtocolError(
                f"WAL append out of order: got serial {serial}, "
                f"expected {self._next_serial}"
            )
        if epoch < self.last_epoch:
            raise ProtocolError(
                f"WAL append with stale epoch {epoch} < {self.last_epoch}"
            )
        self.records.append(record)
        self.last_epoch = epoch
        self._next_serial += 1
        self.appends += 1
        self._since_snapshot += 1
        self._obs.wal_appends.inc()

    def truncate_from(self, serial: int) -> List[Dict[str, Any]]:
        """Discard records with serial >= ``serial``; return them.

        View changes use this on a backup whose uncommitted suffix lost to
        the adopted log: the suffix is cut, handed back to the caller (the
        new primary re-proposes equivalent records under its epoch), and
        the log resumes appending at ``serial``.
        """
        cut = [r for r in self.records if int(r["serial"]) >= serial]
        self.records = [r for r in self.records if int(r["serial"]) < serial]
        self._next_serial = min(self._next_serial, int(serial))
        self.last_epoch = (
            int(self.records[-1]["epoch"]) if self.records else 0
        )
        return cut

    def record_at(self, serial: int) -> Optional[Dict[str, Any]]:
        """The retained record with ``serial``, or ``None`` if truncated."""
        for record in self.records:
            if int(record["serial"]) == serial:
                return record
        return None

    def should_compact(self) -> bool:
        return self._since_snapshot >= self.snapshot_every

    @staticmethod
    def _node_key(key_obj: Sequence[Any]) -> Any:
        """Canonical hashable form of a serialised state key."""
        return tuple((str(o[0]), int(o[1])) for o in key_obj)

    def compact(
        self, server: CssServer, retain_after: Optional[int] = None
    ) -> int:
        """Snapshot ``server`` and truncate the record prefix it covers.

        ``retain_after`` is the low-water mark: records with a serial
        above it are kept even though the snapshot covers them, because a
        consumer (a client session cursor or a client-crash checkpoint)
        may still need their broadcast re-shipped.  Returns the number of
        records truncated.

        The first compaction (and every ``checkpoint_every``-th one, and
        any taken after active-window GC moved the rebase floor) emits a
        **full checkpoint**; the rest emit a **delta** against the
        previous compaction — nodes added and removed since, nodes whose
        ordered child-transition list grew (transition lists are
        insert-only, so a changed length is exactly a changed list), and
        the serials assigned since.  ``last_compaction_mode`` tells the
        disk layer which of the two it got.
        """
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        base = server.oracle.base
        # What the snapshot/delta covers is the *server's* state, which
        # in replicated mode can trail the log (proposed-but-uncommitted
        # records are on the log, not in the served state yet).
        covered = server.oracle.last_serial
        floor = self.last_serial
        if retain_after is not None:
            floor = min(floor, int(retain_after))
        # Complete while the record suffix still covers everything since
        # the last compaction — stored so trimmed snapshots keep the
        # per-origin consumption counts recovery re-seeds sessions with.
        counts = self.origin_counts()
        delta_mode = (
            self.snapshot is not None
            and self._shadow is not None
            and base == self._shadow_base
            and len(self.deltas) < self.checkpoint_every
        )
        if delta_mode:
            space_obj = space_to_obj(server.space)
            shadow = self._shadow
            current = {
                self._node_key(n["key"]): n for n in space_obj["nodes"]
            }
            delta = {
                "upto": covered,
                "floor": floor,
                "base": base,
                "final": space_obj["final"],
                "ot_count": space_obj["ot_count"],
                "added": [
                    current[k] for k in sorted(current) if k not in shadow
                ],
                "removed": [
                    [list(pair) for pair in k]
                    for k in sorted(shadow)
                    if k not in current
                ],
                "touched": [
                    {"key": n["key"], "children": n["children"]}
                    for k, n in sorted(current.items())
                    if k in shadow and len(n["children"]) != shadow[k]
                ],
                "serials": [
                    [opid_to_obj(opid), serial]
                    for opid, serial in server.oracle.serial_items(
                        after=self._shadow_upto
                    )
                ],
                "origin_counts": {
                    str(k): int(v) for k, v in sorted(counts.items())
                },
                "clients": list(server.clients),
            }
            self.deltas.append(delta)
            self.last_delta = delta
            self.last_compaction_mode = "delta"
        else:
            self.snapshot = snapshot_server(server)
            self.snapshot["origin_counts"] = {
                str(k): int(v) for k, v in sorted(counts.items())
            }
            self.deltas = []
            self.last_delta = None
            self.last_compaction_mode = "full"
            space_obj = self.snapshot["space"]
        self._shadow = {
            self._node_key(n["key"]): len(n["children"])
            for n in space_obj["nodes"]
        }
        self._shadow_upto = covered
        self._shadow_base = base
        kept = [r for r in self.records if r["serial"] > floor]
        truncated = len(self.records) - len(kept)
        self.records = kept
        self.records_truncated += truncated
        self.compactions += 1
        self._since_snapshot = 0
        if obs.enabled:
            obs.wal_compactions.inc()
            obs.wal_records_truncated.inc(truncated)
            obs.wal_compaction_duration.observe(time.perf_counter() - started)
            obs.trace(
                "wal.compact",
                serial=self.last_serial,
                truncated=truncated,
                retained=len(kept),
                mode=self.last_compaction_mode,
            )
        return truncated

    def _merged_snapshot(self) -> Optional[Dict[str, Any]]:
        """The full checkpoint with every delta folded in (obj level)."""
        if self.snapshot is None:
            return None
        if not self.deltas:
            return self.snapshot
        space = self.snapshot["space"]
        nodes = {self._node_key(n["key"]): n for n in space["nodes"]}
        serials = [list(item) for item in self.snapshot["serials"]]
        for delta in self.deltas:
            for key_obj in delta["removed"]:
                nodes.pop(self._node_key(key_obj), None)
            for patch in delta["touched"]:
                key = self._node_key(patch["key"])
                node = dict(nodes[key])
                node["children"] = patch["children"]
                nodes[key] = node
            for node_obj in delta["added"]:
                nodes[self._node_key(node_obj["key"])] = node_obj
            serials.extend(list(item) for item in delta["serials"])
        last = self.deltas[-1]
        merged = {
            "version": FORMAT_VERSION,
            "replica": self.snapshot["replica"],
            "clients": list(last.get("clients", self.snapshot["clients"])),
            "space": {
                "version": FORMAT_VERSION,
                "final": last["final"],
                "ot_count": int(last.get("ot_count", 0)),
                "nodes": [nodes[key] for key in sorted(nodes)],
            },
            "serials": serials,
        }
        merged_base = int(last.get("base", self.snapshot.get("base", 0)))
        if merged_base:
            merged["base"] = merged_base
        return merged

    # -- recovery ------------------------------------------------------
    def recover(self) -> CssServer:
        """Rebuild the server: latest snapshot + replay of the log suffix.

        The suffix replays through the real :meth:`CssServer.receive`
        path, so recovery exercises serialisation, integration and
        broadcast construction exactly as live traffic does.  Every
        replayed operation must be assigned the serial the log recorded.
        """
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        snapshot = self._merged_snapshot()
        if snapshot is not None:
            server = restore_server(snapshot)
        else:
            initial = (
                ListDocument.from_string(self.initial_text)
                if self.initial_text
                else None
            )
            server = CssServer(self.replica_id, list(self.clients), initial)
        for record in self.records:
            serial = int(record["serial"])
            if serial <= server.oracle.last_serial:
                continue  # snapshot already covers this retained record
            operation = record_operation(record, server.oracle)
            server.receive(record["origin"], ClientOperation(operation))
            assigned = server.oracle.serial_of(operation.opid)
            if assigned != serial:
                raise ProtocolError(
                    f"WAL replay assigned serial {assigned} to "
                    f"{operation.opid} but the log recorded {serial}; "
                    "the recovered order diverges from the logged one"
                )
        if server.oracle.last_serial != self.last_serial:
            raise ProtocolError(
                f"WAL recovery stopped at serial "
                f"{server.oracle.last_serial} but the log reaches "
                f"{self.last_serial}"
            )
        if obs.enabled:
            obs.wal_recovery_duration.observe(time.perf_counter() - started)
            obs.trace(
                "wal.recover",
                serial=self.last_serial,
                replayed=len(self.records),
                from_snapshot=self.snapshot is not None,
            )
        return server

    def broadcasts_for(
        self, server: CssServer, delivered: int
    ) -> List[ServerOperation]:
        """Rebuild the broadcasts a consumer with cursor ``delivered`` missed.

        Answers a :class:`~repro.jupiter.messages.ResyncRequest` from the
        replayed log: one :class:`ServerOperation` per serial in
        ``delivered + 1 .. last_serial``, with the prefix sets recomputed
        from the recovered server's oracle.
        """
        total = self.last_serial
        if not 0 <= delivered <= total:
            raise ProtocolError(
                f"resync cursor {delivered} outside the log's 0..{total}"
            )
        if delivered == total:
            return []
        available = {int(r["serial"]): r for r in self.records}
        missing = [
            serial
            for serial in range(delivered + 1, total + 1)
            if serial not in available
        ]
        if missing:
            raise ProtocolError(
                f"WAL compacted past a consumer: serials {missing} were "
                "truncated but a resync cursor still needs them (the "
                "retain_after low-water mark was too aggressive)"
            )
        return [
            ServerOperation(
                operation=record_operation(available[serial], server.oracle),
                origin=available[serial]["origin"],
                serial=serial,
                prefix=server.oracle.serialized_before(serial),
            )
            for serial in range(delivered + 1, total + 1)
        ]

    def origin_counts(self) -> Dict[ReplicaId, int]:
        """Serialised operations per origin client (snapshot + suffix).

        This is exactly the per-channel consumption count the server's
        session receivers held before the crash: origin ``c`` had
        ``origin_counts()[c]`` frames consumed from its channel, so the
        recovered receiver resumes expecting frame ``count + 1``.

        Computed as a *max-of-sequence-numbers* merge: each origin's
        sequence numbers are dense from 1, so its count equals the
        highest sequence witnessed anywhere — stored counts from earlier
        compactions (which may cover serials a GC-trimmed snapshot no
        longer lists), snapshot and delta serial logs, and the record
        suffix.  Overlap between sources is harmless under max.
        """
        counts: Dict[ReplicaId, int] = {}

        def bump(origin: ReplicaId, seq: int) -> None:
            if seq > counts.get(origin, 0):
                counts[origin] = seq

        if self.snapshot is not None:
            for origin, count in self.snapshot.get(
                "origin_counts", {}
            ).items():
                bump(str(origin), int(count))
            for opid_obj, _serial in self.snapshot["serials"]:
                opid = opid_from_obj(opid_obj)
                bump(opid.replica, opid.seq)
        for delta in self.deltas:
            for origin, count in delta.get("origin_counts", {}).items():
                bump(str(origin), int(count))
            for opid_obj, _serial in delta["serials"]:
                opid = opid_from_obj(opid_obj)
                bump(opid.replica, opid.seq)
        for record in self.records:
            opid = opid_from_obj(record["operation"]["opid"])
            bump(opid.replica, opid.seq)
        return counts

    # -- codec ---------------------------------------------------------
    def to_obj(self) -> Dict[str, Any]:
        return {
            "version": FORMAT_VERSION,
            "replica": self.replica_id,
            "clients": list(self.clients),
            "snapshot_every": self.snapshot_every,
            "checkpoint_every": self.checkpoint_every,
            "initial_text": self.initial_text,
            "snapshot": self.snapshot,
            "deltas": [dict(d) for d in self.deltas],
            "records": [dict(r) for r in self.records],
            "next_serial": self._next_serial,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "ServerWriteAheadLog":
        if obj.get("version") != FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported WAL version {obj.get('version')!r}"
            )
        wal = cls(
            str(obj["replica"]),
            [str(c) for c in obj["clients"]],
            snapshot_every=int(obj["snapshot_every"]),
            initial_text=str(obj.get("initial_text", "")),
            checkpoint_every=int(obj.get("checkpoint_every", 16)),
        )
        wal.snapshot = obj["snapshot"]
        wal.deltas = [dict(d) for d in obj.get("deltas", [])]
        wal.records = [dict(r) for r in obj["records"]]
        wal._next_serial = int(obj["next_serial"])
        if wal.records:
            wal.last_epoch = int(wal.records[-1].get("epoch", 0))
        # The diff shadow is not serialised: a restored log takes a full
        # checkpoint at its next compaction and resumes deltas from there.
        return wal


# ----------------------------------------------------------------------
# On-disk WAL: header + one JSON record per line, torn-tail tolerant
# ----------------------------------------------------------------------
def save_wal(wal: ServerWriteAheadLog, path: str) -> None:
    """Persist a WAL as JSON-lines: one header line, one line per record.

    The record-per-line layout mirrors how an appending log hits disk: a
    crash mid-append leaves at most one truncated final line, which
    :func:`load_wal` detects and drops (the torn tail).  Delta snapshots
    accumulated in memory ride in the header here (this is the full
    rewrite a *full* checkpoint triggers); between rewrites the disk
    layer appends each new delta as its own ``{"delta": ...}`` line.
    """
    header = wal.to_obj()
    records = header.pop("records")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_wal(path: str) -> ServerWriteAheadLog:
    """Load a WAL saved by :func:`save_wal`, tolerating a torn tail.

    A crash mid-append can leave the *final* line truncated or garbled.
    A torn record was never acknowledged to anyone (the append had not
    completed, so the op was neither broadcast nor quorum certified) and
    a torn delta line loses no history at all (the records it would have
    truncated are still on the earlier lines), so either is safe to
    drop: recovery logs a warning, bumps the ``wal_torn_tail_dropped``
    counter, and resumes from the previous line.  Corruption anywhere
    *before* the final line is not a torn tail — it means lost
    acknowledged history — and raises :class:`ProtocolError`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line.strip()]
    if not lines:
        raise ProtocolError(f"WAL file {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError as error:
        raise ProtocolError(f"WAL header in {path} is corrupt: {error}")
    records: List[Dict[str, Any]] = []
    deltas: List[Dict[str, Any]] = [
        dict(d) for d in (header.get("deltas") or [])
    ]
    torn: Optional[str] = None
    for index, line in enumerate(lines[1:], start=1):
        final = index == len(lines) - 1
        try:
            obj = json.loads(line)
            if isinstance(obj, dict) and "delta" in obj:
                delta = _validate_wal_delta(obj["delta"])
                deltas.append(delta)
                floor = int(delta["floor"])
                records = [
                    r for r in records if int(r["serial"]) > floor
                ]
            else:
                records.append(_validate_wal_record(obj))
        except (ValueError, ProtocolError) as error:
            if not final:
                raise ProtocolError(
                    f"WAL record {index} in {path} is corrupt mid-log "
                    f"(not a torn tail): {error}"
                )
            torn = str(error)
    if torn is not None:
        warnings.warn(
            f"dropping torn final WAL record in {path}: {torn}",
            RuntimeWarning,
            stacklevel=2,
        )
        get_obs().wal_torn_tail_dropped.inc()
    header["records"] = records
    header["deltas"] = deltas
    header["next_serial"] = (
        int(records[-1]["serial"]) + 1
        if records
        else _post_snapshot_serial(header)
    )
    return ServerWriteAheadLog.from_obj(header)


def _post_snapshot_serial(header: Dict[str, Any]) -> int:
    """First serial after the header's compaction state (1 if none)."""
    deltas = header.get("deltas") or []
    if deltas:
        return int(deltas[-1]["upto"]) + 1
    snapshot = header.get("snapshot")
    if not snapshot:
        return 1
    serials = [int(serial) for _opid, serial in snapshot["serials"]]
    base = int(snapshot.get("base", 0))
    return max(serials, default=base) + 1
