"""The CSCW Jupiter protocol (Section 5; Xu, Sun & Li, CSCW'14).

For a system with ``n`` clients the protocol maintains ``2n`` 2D
state-spaces: one ``DSS_ci`` per client and, at the server, one ``DSS_si``
per client.  The server transforms an incoming operation against its
global-dimension suffix (``L1``, Lemma 5.1), executes ``o{L1}``, records it
in every other client's server-side space, and propagates the
**transformed** operation — the optimisation that eliminates redundant OTs
at the clients and, per Section 7, obscured the similarity among replicas
that the CSS protocol makes explicit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.ordering import ServerOrderOracle
from repro.jupiter.two_dim import Dimension, TwoDimStateSpace
from repro.model.schedule import OpSpec


class CscwClient(BaseClient):
    """A CSCW client with its 2D state-space ``DSS_ci``."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id)
        self.space = TwoDimStateSpace(initial_document)

    @property
    def document(self) -> ListDocument:
        return self.space.document

    # ------------------------------------------------------------------
    # Local processing (Section 5.2.1)
    # ------------------------------------------------------------------
    def generate(self, spec: OpSpec) -> GenerateResult:
        operation = self._operation_from_spec(spec, self.space.final_key)
        self.space.append_at_final(operation, Dimension.LOCAL)
        return GenerateResult(
            operation=operation,
            returned=self.read(),
            outgoing=ClientOperation(operation),
        )

    # ------------------------------------------------------------------
    # Remote processing (Section 5.2.3)
    # ------------------------------------------------------------------
    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, ServerOperation):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        if payload.origin == self.replica_id:
            # The CSCW server of the paper does not message the generator;
            # our uniform broadcast includes it, and CSCW clients simply
            # ignore the echo.
            return ReceiveResult(executed=None, returned=self.read())
        executed = self.space.integrate(payload.operation, Dimension.GLOBAL)
        return ReceiveResult(executed=executed, returned=self.read())


class CscwServer(BaseServer):
    """The CSCW server with one ``DSS_si`` per client (Section 5.2.2)."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self.spaces: Dict[ReplicaId, TwoDimStateSpace] = {
            client: TwoDimStateSpace(initial_document) for client in clients
        }
        # The server document (footnote 6) mirrors the final state of any
        # DSS; we track it explicitly since the spaces are per-client.
        self._document = (initial_document or ListDocument()).copy()

    @property
    def document(self) -> ListDocument:
        return self._document

    def space_for(self, client: ReplicaId) -> TwoDimStateSpace:
        return self.spaces[client]

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        if sender not in self.spaces:
            raise ProtocolError(f"server: unknown client {sender}")
        operation = payload.operation
        serial = self.oracle.assign(operation.opid)
        prefix = self.oracle.serialized_before(serial)

        # Steps 1-3: integrate along the local dimension of DSS_s,sender,
        # transforming against the global suffix L1, and execute o{L1}.
        transformed = self.spaces[sender].integrate(operation, Dimension.LOCAL)
        transformed.apply(self._document)

        # Step 4: record o{L1} at the end of the global dimension of every
        # other client's space (its context is the current server state).
        for client in self.clients:
            if client != sender:
                self.spaces[client].append_at_final(transformed, Dimension.GLOBAL)

        # Step 5: propagate o{L1}; the echo to the generator is ignored by
        # CSCW clients but keeps broadcast behaviour uniform across
        # protocols (and carries the serial for the record).
        broadcast = ServerOperation(
            operation=transformed, origin=sender, serial=serial, prefix=prefix
        )
        return [(client, broadcast) for client in self.clients]
