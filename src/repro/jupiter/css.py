"""The CSS (Compact State-Space) Jupiter protocol (Section 6).

Every replica — the server and each client — maintains a single n-ary
ordered state-space and processes *all* operations through the same
uniform rule (Section 6.2): find the matching state, save the operation
along the transition of the right order, transform it along the leftmost
transitions to the final state (Algorithm 1), execute the result.

The server serialises operations and redirects the **original** forms to
the other clients (footnote 7), plus an echo to the generator that carries
only ordering metadata (the serial number); the generator performs no OT
on its echo.  Proposition 6.6 — all replicas that processed the same
operations have the *same* state-space — is checked in the test-suite by
comparing the structures these objects build.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.ids import OpId, ReplicaId, SeqGenerator
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.messages import ClientOperation, ServerOperation
from repro.jupiter.nary import NaryStateSpace
from repro.jupiter.ordering import ClientOrderOracle, ServerOrderOracle
from repro.model.schedule import OpSpec
from repro.obs import get_obs


class CssClient(BaseClient):
    """A CSS client: one n-ary ordered state-space, uniform processing.

    With ``gc=True`` the client prunes state-space states that can no
    longer be matching states: the context of any future remote operation
    from origin ``cj`` contains everything ``cj`` had processed when it
    last spoke (learned from the contexts of its broadcast operations),
    so the meet of those known states over all other clients is a safe
    pruning floor.  This bounds the §10 metadata overhead for active
    systems; a silent client pins the floor, which the GC ablation
    benchmark demonstrates.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
        gc: bool = False,
        peers: Optional[List[ReplicaId]] = None,
        *,
        strict_cp1: bool = False,
    ) -> None:
        super().__init__(replica_id)
        self.oracle = ClientOrderOracle(replica_id)
        self.space = NaryStateSpace(
            self.oracle, initial_document, strict_cp1=strict_cp1
        )
        self._pending: List = []  # own operations awaiting their echo
        self._gc = gc
        if gc and peers is None:
            raise ProtocolError(
                "gc=True requires the peer roster: a client never heard "
                "from can still send an operation with the empty context"
            )
        self._peers = [p for p in (peers or []) if p != replica_id]
        self._known: dict = {}  # origin -> its last known state
        self.pruned_states = 0

    @property
    def document(self) -> ListDocument:
        return self.space.document

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Snapshot / restore seams (used by repro.jupiter.persistence)
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """The sequence number the next generated operation will carry."""
        return self._seq.current

    def pending_opids(self) -> Tuple[OpId, ...]:
        """Own operations awaiting their server echo, in send order."""
        return tuple(self._pending)

    def restore_session(
        self, pending: Sequence[OpId], next_seq: int
    ) -> None:
        """Reinstall the send-side state a snapshot captured.

        ``pending`` is the echo-await queue and ``next_seq`` the sequence
        counter position; together with the state-space and the oracle's
        recorded serials they make a restored client byte-equivalent to
        the snapshotted one.
        """
        self._pending = list(pending)
        self._seq = SeqGenerator(self.replica_id, start=int(next_seq))

    # ------------------------------------------------------------------
    # Local processing (Section 5.2.1 — identical in CSS, see the Remark
    # after the uniform processing rule)
    # ------------------------------------------------------------------
    def generate(self, spec: OpSpec) -> GenerateResult:
        operation = self._operation_from_spec(spec, self.space.final_key)
        executed = self.space.integrate(operation)
        assert executed == operation, "local operations need no transforming"
        self._pending.append(operation.opid)
        return GenerateResult(
            operation=operation,
            returned=self.read(),
            outgoing=ClientOperation(operation),
        )

    # ------------------------------------------------------------------
    # Remote processing (uniform rule, Section 6.2)
    # ------------------------------------------------------------------
    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, ServerOperation):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        self.oracle.record(payload.operation.opid, payload.serial)
        if payload.origin == self.replica_id:
            # Echo of our own operation: ordering metadata only.
            if not self._pending or self._pending[0] != payload.operation.opid:
                raise ProtocolError(
                    f"{self.replica_id}: echo for {payload.operation.opid} "
                    f"does not match pending queue {self._pending}"
                )
            self._pending.pop(0)
            return ReceiveResult(executed=None, returned=self.read())
        # FIFO cross-check (Section 6.2): none of our pending operations
        # can have been serialised before this one.
        for pending in self._pending:
            if pending in payload.prefix:
                raise ProtocolError(
                    f"{self.replica_id}: pending {pending} appears in the "
                    f"prefix of {payload.operation.opid}; FIFO violated"
                )
        executed = self.space.integrate(payload.operation)
        if self._gc:
            self._known[payload.origin] = payload.operation.resulting_state
            self._collect_garbage()
        return ReceiveResult(executed=executed, returned=self.read())

    def rebase_to_serial(self, floor_serial: int) -> int:
        """Active-window GC: prune *and rebase* below a serial floor.

        ``floor_serial`` must satisfy the net runtime's safe-floor rule
        (every operation this client may still receive or hold pending
        has a context containing all of serials 1..floor); the server
        only advertises floors with that property.  Returns the number
        of pruned states.
        """
        base = self.oracle.base
        if floor_serial <= base:
            return 0
        floor = self.oracle.opids_between(base, floor_serial)
        pruned = self.space.rebase_below(floor)
        self.oracle.trim_below(floor_serial)
        self.pruned_states += pruned
        return pruned

    def _collect_garbage(self) -> None:
        """Prune states below the meet of everyone's known progress.

        Only meaningful once every other client has been heard from —
        until then an unheard client could still send an operation with
        the empty context, so nothing can be discarded.
        """
        if any(peer not in self._known for peer in self._peers):
            return
        floor = None
        for peer in self._peers:
            state = self._known[peer]
            floor = state if floor is None else floor & state
        if floor:
            self.pruned_states += self.space.prune_below(floor)


class CssServer(BaseServer):
    """The CSS server: serialise, integrate, redirect originals.

    With ``gc=True`` the server prunes its state-space below the meet of
    every client's last-known state (taken from the contexts of the
    operations they send) — see :class:`CssClient` for the reasoning.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
        gc: bool = False,
        *,
        strict_cp1: bool = False,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self.space = NaryStateSpace(
            self.oracle, initial_document, strict_cp1=strict_cp1
        )
        self._gc = gc
        self._known: dict = {}
        self.pruned_states = 0
        self._obs = get_obs()

    @property
    def document(self) -> ListDocument:
        return self.space.document

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, ClientOperation):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        operation = payload.operation
        serial = self.oracle.assign(operation.opid)
        prefix = self.oracle.serialized_before(serial)
        self.space.integrate(operation)
        if self._gc:
            self._known[sender] = operation.resulting_state
            self._collect_garbage()
        broadcast = ServerOperation(
            operation=operation, origin=sender, serial=serial, prefix=prefix
        )
        if obs.enabled:
            obs.ops_serialised.inc()
            obs.serialise_duration.observe(time.perf_counter() - started)
        return [(client, broadcast) for client in self.clients]

    @property
    def base(self) -> int:
        """Serial floor of the active window (0 = untrimmed)."""
        return self.oracle.base

    def rebase_to_serial(self, floor_serial: int) -> int:
        """Active-window GC: prune *and rebase* below a serial floor.

        Safe when every operation still in flight towards this server
        (and every retained serialised operation past the floor) has a
        context containing serials 1..floor — the net runtime's
        pin-clamped fixpoint computes exactly such a floor.  Returns the
        number of pruned states.
        """
        base = self.oracle.base
        if floor_serial <= base:
            return 0
        floor = self.oracle.opids_between(base, floor_serial)
        pruned = self.space.rebase_below(floor)
        self.oracle.trim_below(floor_serial)
        self.pruned_states += pruned
        return pruned

    def _collect_garbage(self) -> None:
        if any(client not in self._known for client in self.clients):
            return
        floor = None
        for client in self.clients:
            state = self._known[client]
            floor = state if floor is None else floor & state
        if floor:
            self.pruned_states += self.space.prune_below(floor)
