"""dCSS — the CSS protocol in a decentralised setting (§10 future work).

The paper closes by proposing to "extend the CSS protocol to a
distributed setting, by integrating the compact n-ary ordered state-space
with a distributed scheme to totally order operations".  This module
implements that extension:

* there is **no server**: peers broadcast operations to each other over
  FIFO channels;
* the total order ``⇒`` is the Lamport order ``(clock, site)`` — unique,
  total, and consistent with causality, so it can play the role the
  server's serialisation order plays in CSS;
* each peer holds one n-ary ordered state-space and processes operations
  with the same uniform Algorithm-1 rule as CSS.  Local operations
  integrate immediately (optimistic replication); remote operations wait
  in a hold-back queue until they are **stable** — no operation with a
  smaller Lamport timestamp can still arrive — and then integrate in
  exact total order.  Stability is tracked TIBOT-style from the clocks
  carried by operations and lightweight acknowledgements.

The correctness story mirrors CSS: every peer sees remote operations in
total order with its own pending operations interleaved, which is
precisely the situation of a CSS *client*; Proposition 6.6's induction
carries over, and the property tests verify compactness, convergence and
the weak list specification on random peer-to-peer executions.

Cost note: stability needs to hear from every peer, so quiescent peers
must acknowledge (here: one ack broadcast per remote operation
processed).  That is the classic latency/traffic price of removing the
server, and the dcss benchmark measures it against CSS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId, SeqGenerator
from repro.common.priority import priority_of
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import OrderingError, ProtocolError
from repro.jupiter.nary import NaryStateSpace
from repro.model.schedule import OpSpec
from repro.ot.operations import Operation, delete as make_delete, insert as make_insert

#: A Lamport timestamp: (clock, site); site breaks ties via priority.
Timestamp = Tuple[int, ReplicaId]


@dataclass(frozen=True)
class PeerOperation:
    """Broadcast of one original operation with its Lamport timestamp."""

    operation: Operation
    timestamp: Timestamp
    origin: ReplicaId

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"PeerOperation({self.operation} @ {self.timestamp})"


@dataclass(frozen=True)
class PeerAck:
    """A clock announcement: ``origin``'s Lamport clock reached ``clock``."""

    origin: ReplicaId
    clock: int


class LamportOrderOracle:
    """Total order on operations from their Lamport timestamps."""

    def __init__(self) -> None:
        self._timestamps: Dict[OpId, Timestamp] = {}

    def record(self, opid: OpId, timestamp: Timestamp) -> None:
        existing = self._timestamps.get(opid)
        if existing is not None and existing != timestamp:
            raise OrderingError(
                f"two timestamps for {opid}: {existing} and {timestamp}"
            )
        self._timestamps[opid] = timestamp

    def timestamp_of(self, opid: OpId) -> Timestamp:
        return self._timestamps[opid]

    def sort_key(self, timestamp: Timestamp) -> Tuple[int, object]:
        clock, site = timestamp
        return (clock, priority_of(site))

    def before(self, first: OpId, second: OpId) -> bool:
        try:
            first_ts = self._timestamps[first]
            second_ts = self._timestamps[second]
        except KeyError as missing:
            raise OrderingError(
                f"no timestamp recorded for {missing}"
            ) from None
        return self.sort_key(first_ts) < self.sort_key(second_ts)


@dataclass(frozen=True)
class PeerGenerateResult:
    """Outcome of a peer generating one user operation."""

    operation: Operation
    returned: Tuple[Element, ...]
    outgoing: List[Tuple[ReplicaId, Any]]


@dataclass(frozen=True)
class PeerReceiveResult:
    """Outcome of a peer processing one incoming message.

    ``integrated`` lists ``(broadcast, executed_form)`` pairs for the
    operations that became stable during this call (possibly several at
    once, possibly none — an operation may sit in the hold-back queue
    until later acknowledgements arrive); ``outgoing`` carries this
    peer's own acknowledgement broadcasts.

    Formally, delivery of a held-back operation *happens at integration
    time*: the hold-back queue belongs to the network layer, so the
    harness records the ``receive`` event when the operation integrates,
    keeping the derived visibility relation aligned with what the replica
    actually processed (Definition 4.5).
    """

    integrated: List[Tuple["PeerOperation", Operation]]
    returned: Tuple[Element, ...]
    outgoing: List[Tuple[ReplicaId, Any]]


class DcssPeer:
    """One dCSS peer: a compact state-space plus a stability queue."""

    def __init__(
        self,
        replica_id: ReplicaId,
        peers: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
        *,
        strict_cp1: bool = False,
    ) -> None:
        self.replica_id = replica_id
        self.peers = [p for p in peers if p != replica_id]
        self.oracle = LamportOrderOracle()
        self.space = NaryStateSpace(
            self.oracle, initial_document, strict_cp1=strict_cp1
        )
        self._seq = SeqGenerator(replica_id)
        self._clock = 0
        self._seen_clock: Dict[ReplicaId, int] = {p: 0 for p in self.peers}
        self._holdback: List[PeerOperation] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def document(self) -> ListDocument:
        return self.space.document

    @property
    def clock(self) -> int:
        return self._clock

    @property
    def holdback_size(self) -> int:
        return len(self._holdback)

    def read(self) -> Tuple[Element, ...]:
        return tuple(self.document.read())

    # ------------------------------------------------------------------
    # Local processing
    # ------------------------------------------------------------------
    def generate(self, spec: OpSpec) -> PeerGenerateResult:
        operation = self._operation_from_spec(spec)
        self._clock += 1
        timestamp: Timestamp = (self._clock, self.replica_id)
        self.oracle.record(operation.opid, timestamp)
        self.space.integrate(operation)
        broadcast = PeerOperation(operation, timestamp, self.replica_id)
        return PeerGenerateResult(
            operation=operation,
            returned=self.read(),
            outgoing=[(peer, broadcast) for peer in self.peers],
        )

    def _operation_from_spec(self, spec: OpSpec) -> Operation:
        context: FrozenSet[OpId] = self.space.final_key
        if spec.kind == "ins":
            if spec.position > len(self.document):
                raise ProtocolError(
                    f"{self.replica_id}: insert position {spec.position} "
                    "out of range"
                )
            return make_insert(
                self._seq.next_opid(), spec.value, spec.position, context
            )
        victim = self.document.element_at(spec.position)
        return make_delete(
            self._seq.next_opid(), victim, spec.position, context
        )

    # ------------------------------------------------------------------
    # Remote processing
    # ------------------------------------------------------------------
    def receive(self, payload: Any) -> PeerReceiveResult:
        outgoing: List[Tuple[ReplicaId, Any]] = []
        if isinstance(payload, PeerOperation):
            if payload.origin == self.replica_id:
                raise ProtocolError(
                    f"{self.replica_id}: received its own broadcast"
                )
            self.oracle.record(payload.operation.opid, payload.timestamp)
            self._witness(payload.origin, payload.timestamp[0])
            self._holdback.append(payload)
            # Announce the bumped clock so others' stability advances even
            # if this peer never generates operations itself.
            ack = PeerAck(self.replica_id, self._clock)
            outgoing = [(peer, ack) for peer in self.peers]
        elif isinstance(payload, PeerAck):
            self._witness(payload.origin, payload.clock)
        else:
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        integrated = self._drain_stable()
        return PeerReceiveResult(
            integrated=integrated, returned=self.read(), outgoing=outgoing
        )

    def _witness(self, origin: ReplicaId, clock: int) -> None:
        if origin not in self._seen_clock:
            raise ProtocolError(
                f"{self.replica_id}: message from unknown peer {origin}"
            )
        if clock < self._seen_clock[origin]:
            raise ProtocolError(
                f"{self.replica_id}: clock of {origin} went backwards "
                f"({self._seen_clock[origin]} -> {clock}); FIFO violated"
            )
        self._seen_clock[origin] = clock
        self._clock = max(self._clock, clock) + 1

    def _stable(self, timestamp: Timestamp) -> bool:
        """No operation with a smaller timestamp can still arrive.

        Channels are FIFO and a peer's operation timestamps strictly
        exceed its clock at send time, so once every peer's announced
        clock reaches ``timestamp``'s clock, anything still in flight is
        ordered after it.
        """
        return all(
            seen >= timestamp[0] for seen in self._seen_clock.values()
        )

    def _drain_stable(self) -> List[Tuple[PeerOperation, Operation]]:
        integrated: List[Tuple[PeerOperation, Operation]] = []
        while True:
            ready = [
                entry
                for entry in self._holdback
                if self._stable(entry.timestamp)
            ]
            if not ready:
                return integrated
            entry = min(ready, key=lambda e: self.oracle.sort_key(e.timestamp))
            self._holdback.remove(entry)
            integrated.append((entry, self.space.integrate(entry.operation)))
