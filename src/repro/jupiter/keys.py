"""Hash-consed state keys for the state-space hot path.

A state key is the :class:`frozenset` of original operation ids processed
(Definition 4.5).  Algorithm 1 closes one CP1 square per leftmost-path
step, and every square used to build the corner key with a fresh
``frozenset`` union — an O(|key|) allocation plus an O(|key|) hash for
every square, which made integration superlinear in the total number of
operations processed.

:class:`KeyInterner` removes both costs without changing the key *type*:

* ``intern`` hash-conses keys — one canonical ``frozenset`` instance per
  distinct key content.  CPython caches a frozenset's hash inside the
  object after the first computation, so repeated hashing of a canonical
  key is O(1), and dictionary probes against a table keyed by canonical
  instances short-circuit on identity before ever comparing elements.
* ``extend`` memoises the single-op union ``key | {opid}`` — the only
  union shape the square construction needs.  Each distinct
  ``(key, opid)`` pair pays the O(|key|) union exactly once; every later
  square that reaches the same corner gets the canonical key back in
  O(1).

Interning is purely an in-memory representation: snapshots and the WAL
keep the plain sorted-frozenset wire form
(:mod:`repro.jupiter.persistence`), and restore re-interns keys as it
rebuilds the node table.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.common.ids import OpId, StateKey


class KeyInterner:
    """Hash-consing table for state keys plus a memoised single-op union.

    One interner belongs to one state-space: keys from different replicas
    are still compared structurally (they are ordinary frozensets), so
    cross-replica signature comparisons are unaffected.
    """

    __slots__ = ("_canon", "_extend")

    def __init__(self) -> None:
        self._canon: Dict[StateKey, StateKey] = {}
        self._extend: Dict[Tuple[StateKey, OpId], StateKey] = {}

    def intern(self, key: Iterable[OpId]) -> StateKey:
        """The canonical instance for ``key``'s content."""
        if type(key) is not frozenset:
            key = frozenset(key)
        canonical = self._canon.get(key)
        if canonical is None:
            # First sighting: this instance becomes the canonical one
            # (its hash is now cached inside the frozenset object).
            self._canon[key] = canonical = key
        return canonical

    def extend(self, key: StateKey, opid: OpId) -> StateKey:
        """The canonical instance of ``key | {opid}``, memoised."""
        pair = (key, opid)
        extended = self._extend.get(pair)
        if extended is None:
            extended = self.intern(key | {opid})
            self._extend[pair] = extended
        return extended

    def forget(self, keys: Iterable[StateKey]) -> None:
        """Drop interned keys (after a GC prune) so the tables stay
        proportional to the *live* state-space, not its whole history."""
        doomed = set(keys)
        if not doomed:
            return
        for key in doomed:
            self._canon.pop(key, None)
        self._extend = {
            pair: result
            for pair, result in self._extend.items()
            if pair[0] not in doomed and result not in doomed
        }

    def __len__(self) -> int:
        return len(self._canon)

    @property
    def extend_cache_size(self) -> int:
        return len(self._extend)
