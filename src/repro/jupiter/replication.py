"""Quorum replication for the server write-ahead log.

The Jupiter protocol is star-shaped: one server assigns the total serial
order (dense 1..n), so :class:`~repro.jupiter.persistence.ServerWriteAheadLog`
only survives a *restart* — a dead server machine still takes the
document down.  This module replicates the log across ``2f + 1`` server
replicas in the primary-backup style of Viewstamped Replication (see
"Vive la Différence: Paxos vs. Viewstamped Replication vs. Zab"):

* The **primary** of the current view assigns serials and ships each
  record to the backups.  An operation is **committed** — and only then
  acknowledged to its origin client and broadcast to everyone — once a
  quorum of ``f + 1`` replicas (primary included) has durably appended
  it.  A committed operation therefore survives any ``f`` simultaneous
  replica failures: every election quorum intersects its write quorum.
* A **view change** is deterministic: the next view's primary is
  ``roster[view % len(roster)]`` (skipping dead replicas), it adopts the
  longest quorum-certified log prefix — the candidate log with the
  maximal ``(last_epoch, last_serial)`` among a quorum of survivors —
  re-proposes the uncommitted suffix under the new **epoch** (stamped
  into every record and frame, so anything a deposed primary still has
  in flight is rejected as stale), and installs the adopted log on every
  surviving backup (the VSR ``start-view`` message).
* **Compaction is clamped to the commit floor**: the primary never
  truncates a record that is not yet quorum-certified, because the
  uncommitted suffix is exactly what a view change must re-propose (and
  what :meth:`~repro.jupiter.persistence.ServerWriteAheadLog.broadcasts_for`
  may still have to rebuild for a lagging consumer).

:class:`ReplicatedWal` is the in-process composition — one object holds
every replica's log, which is what the simulator (and the unit tests and
failover benchmark) drive; the module-level helpers
(:func:`quorum_size`, :func:`primary_for`, :func:`next_view`,
:func:`elect`) are the pure election rules the networked runtime
(:mod:`repro.net.server`) applies to logs it can only see over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import ReplicaId
from repro.errors import ProtocolError
from repro.jupiter.css import CssServer
from repro.jupiter.persistence import ServerWriteAheadLog
from repro.obs import get_obs


def quorum_size(replicas: int) -> int:
    """``f + 1`` for a roster of ``2f + 1`` (majority for any size)."""
    return replicas // 2 + 1


def primary_for(view: int, roster: Sequence[ReplicaId]) -> ReplicaId:
    """The deterministic primary of ``view``: round-robin over the roster."""
    return roster[view % len(roster)]


def next_view(
    view: int, roster: Sequence[ReplicaId], alive: Sequence[ReplicaId]
) -> int:
    """The lowest view above ``view`` whose designated primary is alive."""
    living = set(alive)
    if not living:
        raise ProtocolError("cannot advance the view: no replica is alive")
    candidate = view + 1
    while primary_for(candidate, roster) not in living:
        candidate += 1
    return candidate


def elect(candidates: Dict[ReplicaId, Tuple[int, int]]) -> ReplicaId:
    """The replica whose log wins adoption.

    ``candidates`` maps replica id to ``(last_epoch, last_serial)``.  The
    longest quorum-certified prefix lives in the log with the maximal
    ``(last_epoch, last_serial)`` — epoch dominates, because a record
    re-proposed under a later epoch supersedes any same-serial record a
    stale replica may still hold.  Ties break to the lexicographically
    smallest replica id so every observer elects the same log.
    """
    if not candidates:
        raise ProtocolError("cannot elect a log from zero candidates")
    return min(
        candidates,
        key=lambda rid: (-candidates[rid][0], -candidates[rid][1], rid),
    )


def committed_origin_ack(
    log: "ServerWriteAheadLog", committed: int, origin: ReplicaId
) -> int:
    """How many of ``origin``'s operations sit at or under the commit floor.

    This — not the session receiver's cumulative receipt — is the
    acknowledgement a replicated primary may send to a client: an op
    acked with this counter is on ``f + 1`` disks and survives any view
    change.  Works on any log whose uncommitted suffix is retained
    (which the commit-floor compaction clamp guarantees).
    """
    uncommitted = sum(
        1
        for record in log.records
        if int(record["serial"]) > committed and record["origin"] == origin
    )
    return log.origin_counts().get(origin, 0) - uncommitted


@dataclass
class ViewChange:
    """The outcome of one deterministic view change."""

    view: int
    epoch: int
    primary: ReplicaId
    #: replica whose log was adopted (may be the new primary itself)
    adopted_from: ReplicaId
    #: highest serial in the adopted log
    adopted_last: int
    #: adopted-but-uncommitted records, re-stamped with the new epoch
    reproposed: List[Dict[str, Any]] = field(default_factory=list)
    #: records only the dead primary held — proposals the crash lost
    #: (never acknowledged to anyone: acks are gated on the commit floor)
    lost: List[Dict[str, Any]] = field(default_factory=list)


def _clone_log(log: ServerWriteAheadLog) -> ServerWriteAheadLog:
    return ServerWriteAheadLog.from_obj(log.to_obj())


class ReplicatedWal:
    """A quorum-replicated write-ahead log, all replicas in one process.

    The serial-assignment rules of the underlying
    :class:`ServerWriteAheadLog` are unchanged — the primary's log *is*
    a plain WAL, and recovery/broadcast-rebuild go through it.  What this
    class adds is the replication state machine around it: per-replica
    ack tracking, the quorum commit floor, liveness, epochs, and the
    view-change/rejoin transitions.

    Durable appends survive their replica's death (the disk outlives the
    process), so the commit floor counts *all* recorded acks, not just
    currently-alive replicas.
    """

    def __init__(
        self,
        roster: Sequence[ReplicaId],
        clients: Sequence[ReplicaId],
        snapshot_every: int = 8,
        initial_text: str = "",
    ) -> None:
        if len(roster) < 1:
            raise ProtocolError("replica roster must not be empty")
        if len(set(roster)) != len(roster):
            raise ProtocolError(f"duplicate replica ids in roster {roster}")
        self.roster = list(roster)
        self.clients = list(clients)
        self.view = 0
        #: epochs equal view numbers: each view change bumps the epoch,
        #: and every record/frame carries the epoch it was issued under.
        self.epoch = 0
        self.logs: Dict[ReplicaId, ServerWriteAheadLog] = {
            rid: ServerWriteAheadLog(
                rid,
                clients,
                snapshot_every=snapshot_every,
                initial_text=initial_text,
            )
            for rid in self.roster
        }
        self.alive: Dict[ReplicaId, bool] = {rid: True for rid in self.roster}
        #: highest serial each replica has durably appended (and, for
        #: backups, acknowledged back to the primary)
        self.acked: Dict[ReplicaId, int] = {rid: 0 for rid in self.roster}
        #: quorum commit floor: highest serial certified by f+1 replicas
        self.committed = 0
        self.view_changes = 0
        self.stale_rejected = 0
        self._obs = get_obs()
        self._obs.repl_commit_quorum.set(self.quorum)

    # -- roster ---------------------------------------------------------
    @property
    def quorum(self) -> int:
        return quorum_size(len(self.roster))

    @property
    def primary(self) -> ReplicaId:
        return primary_for(self.view, self.roster)

    @property
    def primary_log(self) -> ServerWriteAheadLog:
        return self.logs[self.primary]

    def alive_replicas(self) -> List[ReplicaId]:
        return [rid for rid in self.roster if self.alive[rid]]

    @property
    def last_proposed(self) -> int:
        """Highest serial the current primary has assigned."""
        return self.primary_log.last_serial

    # -- primary write path ---------------------------------------------
    def propose(self, origin: ReplicaId, operation) -> Dict[str, Any]:
        """Assign the next serial and append to the primary's log.

        Returns the record for the caller to ship to each alive backup
        (the caller owns transport and its latencies).  The primary's own
        durable append counts toward the quorum immediately.
        """
        serial = self.primary_log.last_serial + 1
        log = self.primary_log
        log.append(serial, origin, operation, epoch=self.epoch)
        self.acked[self.primary] = serial
        return log.records[-1]

    def backup_append(
        self, replica: ReplicaId, record: Dict[str, Any], epoch: int
    ) -> bool:
        """Durably append one shipped record on a backup.

        Returns ``False`` — the record is discarded — when it was shipped
        under a stale epoch (a deposed primary's leftover) or the backup
        is down.  The caller sends an ack to the primary only on ``True``.
        """
        if epoch != self.epoch:
            self.stale_rejected += 1
            self._obs.repl_stale_rejected.inc()
            return False
        if not self.alive[replica]:
            return False
        log = self.logs[replica]
        serial = int(record["serial"])
        if serial <= log.last_serial:
            return True  # duplicate ship (e.g. re-proposal overlap): ack it
        # Verbatim record append: a backup stores the bytes the primary
        # certified.  It must not decode them — compact-context records
        # need the primary's order oracle, which only recovery rebuilds.
        log.append_record(dict(record))
        self._obs.repl_appends.inc()
        return True

    def acknowledge(self, replica: ReplicaId, serial: int, epoch: int) -> int:
        """Record a backup's durable-append ack; return newly committed.

        The return value is the number of serials the ack newly pushed
        under the commit floor (0 when the floor did not move) — the
        caller acknowledges/broadcasts exactly those operations, in
        serial order.
        """
        if epoch != self.epoch:
            self.stale_rejected += 1
            self._obs.repl_stale_rejected.inc()
            return 0
        if serial > self.acked.get(replica, 0):
            self.acked[replica] = serial
        floor = sorted(self.acked.values(), reverse=True)[self.quorum - 1]
        newly = max(0, floor - self.committed)
        if newly:
            self.committed = floor
            self._obs.repl_commit_floor.set(floor)
        return newly

    # -- liveness and view changes ---------------------------------------
    def crash(self, replica: ReplicaId) -> bool:
        """Mark a replica dead; ``True`` when it was the primary (the
        caller must then run :meth:`view_change`)."""
        if replica not in self.alive:
            raise ProtocolError(f"unknown replica {replica!r}")
        self.alive[replica] = False
        return replica == self.primary

    def view_change(self) -> ViewChange:
        """Elect the next view after a primary failure.

        Deterministic: the next view's primary is the round-robin
        successor that is alive; it adopts the best log among the
        surviving quorum, re-stamps the uncommitted suffix with the new
        epoch, and (in this in-process composition) installs the adopted
        log on itself.  The caller ships :meth:`start_view_payload` to
        each alive backup and feeds the acks through
        :meth:`install_view` / :meth:`acknowledge`.
        """
        survivors = self.alive_replicas()
        if len(survivors) < self.quorum:
            raise ProtocolError(
                f"view change impossible: {len(survivors)} replicas alive, "
                f"quorum is {self.quorum}"
            )
        old_primary = self.primary
        self.view = next_view(self.view, self.roster, survivors)
        self.epoch = self.view
        candidates = {
            rid: (self.logs[rid].last_epoch, self.logs[rid].last_serial)
            for rid in survivors
        }
        winner = elect(candidates)
        adopted = _clone_log(self.logs[winner])
        adopted_last = adopted.last_serial
        if adopted_last < self.committed:
            raise ProtocolError(
                "quorum intersection violated: the adopted log ends at "
                f"serial {adopted_last} but {self.committed} is committed"
            )
        # Re-stamp the uncommitted suffix under the new epoch: these are
        # the re-proposed records; anything the dead primary alone held
        # is lost (and was never acknowledged).
        reproposed: List[Dict[str, Any]] = []
        records = []
        for record in adopted.records:
            if int(record["serial"]) > self.committed:
                record = {**record, "epoch": self.epoch}
                reproposed.append(record)
            records.append(record)
        adopted.records = records
        if reproposed:
            adopted.last_epoch = self.epoch
        lost = [
            record
            for record in self.logs[old_primary].records
            if int(record["serial"]) > adopted_last
        ]
        new_primary = self.primary
        adopted.replica_id = new_primary
        self.logs[new_primary] = adopted
        # Acks from the previous view stay valid only up to the commit
        # floor: a stale replica may hold a divergent uncommitted tail,
        # which the start-view install replaces.
        self.acked = {
            rid: min(count, self.committed)
            for rid, count in self.acked.items()
        }
        self.acked[new_primary] = adopted_last
        self.view_changes += 1
        self._obs.view_changes.inc()
        self._obs.trace(
            "repl.view_change",
            view=self.view,
            primary=new_primary,
            adopted_from=winner,
            adopted_last=adopted_last,
            reproposed=len(reproposed),
            lost=len(lost),
        )
        return ViewChange(
            view=self.view,
            epoch=self.epoch,
            primary=new_primary,
            adopted_from=winner,
            adopted_last=adopted_last,
            reproposed=reproposed,
            lost=lost,
        )

    def start_view_payload(self) -> Dict[str, Any]:
        """The VSR start-view message: the primary's full log state."""
        return self.primary_log.to_obj()

    def install_view(
        self, replica: ReplicaId, payload: Dict[str, Any], epoch: int
    ) -> Optional[int]:
        """A backup adopts the new view's log; returns its ack serial.

        ``None`` means the install was stale (a newer view superseded it
        in flight) or the replica is down — no ack should be sent.
        """
        if epoch != self.epoch or not self.alive[replica]:
            self.stale_rejected += 1
            self._obs.repl_stale_rejected.inc()
            return None
        log = ServerWriteAheadLog.from_obj(payload)
        log.replica_id = replica
        self.logs[replica] = log
        self._obs.repl_appends.inc(len(log.records))
        return log.last_serial

    def restore(self, replica: ReplicaId) -> None:
        """A dead replica rejoins as a backup via state transfer.

        The rejoining replica adopts a clone of the current primary's
        log (it may have been the primary of a long-gone view; its stale
        tail is discarded wholesale) and its durable append immediately
        counts toward future quorums.
        """
        if self.alive[replica]:
            raise ProtocolError(f"replica {replica!r} is already alive")
        log = _clone_log(self.primary_log)
        log.replica_id = replica
        self.logs[replica] = log
        self.alive[replica] = True
        self.acked[replica] = log.last_serial
        self._obs.trace(
            "repl.rejoin", replica=replica, at_serial=log.last_serial
        )

    # -- committed-prefix views ------------------------------------------
    def committed_ack(self, origin: ReplicaId) -> int:
        """How many of ``origin``'s operations are quorum-committed.

        This — not the session receiver's cumulative receipt — is the
        acknowledgement the primary may send to a client: an op acked
        with this counter is on f+1 disks and survives any view change.
        """
        return committed_origin_ack(self.primary_log, self.committed, origin)

    def committed_log(self) -> ServerWriteAheadLog:
        """A clone of the primary's log truncated to the commit floor.

        This is the log a failover recovery may replay: everything in it
        is quorum-certified, so the rebuilt server matches what every
        client could have observed.
        """
        log = _clone_log(self.primary_log)
        log.truncate_from(self.committed + 1)
        return log

    def compact(
        self, server: CssServer, retain_after: Optional[int] = None
    ) -> int:
        """Compact the primary's log, clamped to the commit floor.

        An uncommitted record must never be truncated: it is exactly what
        the next view change re-proposes.  The caller's ``retain_after``
        (the client-cursor low-water mark) is therefore tightened to
        ``min(retain_after, committed)``.
        """
        floor = self.committed
        if retain_after is not None:
            floor = min(floor, int(retain_after))
        return self.primary_log.compact(server, retain_after=floor)
