"""Total-order oracles used to order sibling transitions (Section 6.1).

The children of a state in the n-ary ordered state-space are ordered by
the server's total order ``⇒`` on the original operations.  How a replica
*knows* that order differs by role:

* the **server** assigns serial numbers itself, so every operation it has
  ever seen has a known serial;
* a **client** learns serials from the server broadcasts.  Its own pending
  operations (generated locally, echo not yet received) have no serial
  yet, but FIFO channels make the comparison decidable anyway: if a remote
  operation arrives while a local operation is still pending, the server
  must have serialised the remote one first — had the local operation been
  serialised earlier, its echo would already have arrived (Section 6.2's
  reasoning about operations being "aware" of each other at the server).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.ids import OpId
from repro.errors import OrderingError


class ServerOrderOracle:
    """Total order at the server: serials it assigned itself."""

    def __init__(self) -> None:
        self._serial_by_opid: Dict[OpId, int] = {}
        self._by_serial: List[OpId] = []  # index i holds serial i + 1
        self._next_serial = 1
        # Incrementally grown prefix: (serial, ids serialised before it).
        self._prefix_cache: Tuple[int, frozenset] = (1, frozenset())

    @property
    def last_serial(self) -> int:
        """The highest serial assigned so far (0 before the first)."""
        return self._next_serial - 1

    def serial_items(self) -> List[Tuple[OpId, int]]:
        """Every (opid, serial) pair, sorted by serial.

        The public seam snapshots read instead of the internal mapping:
        sorting makes the emitted order canonical, so the same replica
        always serialises to byte-identical JSON.
        """
        return sorted(self._serial_by_opid.items(), key=lambda item: item[1])

    def assign(self, opid: OpId) -> int:
        """Serialise ``opid``: give it the next serial number."""
        if opid in self._serial_by_opid:
            raise OrderingError(f"operation {opid} serialised twice")
        serial = self._next_serial
        self._serial_by_opid[opid] = serial
        self._by_serial.append(opid)
        self._next_serial += 1
        return serial

    def serial_of(self, opid: OpId) -> int:
        return self._serial_by_opid[opid]

    def known(self, opid: OpId) -> bool:
        return opid in self._serial_by_opid

    def serialized_before(self, serial: int) -> frozenset:
        """Ids of all operations with a smaller serial (message prefix).

        The common caller asks for the prefix of the serial it just
        assigned, so the answer is grown incrementally from the last one
        (one element added per assignment) instead of rescanning every
        assignment ever made.
        """
        cached_serial, cached = self._prefix_cache
        if serial == cached_serial:
            return cached
        if cached_serial < serial <= self._next_serial:
            # Fully determined and append-only, so safe to cache.
            grown = cached.union(self._by_serial[cached_serial - 1 : serial - 1])
            self._prefix_cache = (serial, grown)
            return grown
        return frozenset(self._by_serial[: serial - 1])

    def before(self, first: OpId, second: OpId) -> bool:
        """``first ⇒ second`` in the server total order."""
        try:
            return self._serial_by_opid[first] < self._serial_by_opid[second]
        except KeyError as missing:
            raise OrderingError(
                f"server asked to order unserialised operation {missing}"
            ) from None


class ClientOrderOracle:
    """Total order as known at a client.

    ``record(opid, serial)`` is called for every server broadcast
    (including the echo of the client's own operations).  ``before``
    resolves pending-vs-serialised comparisons with the FIFO argument
    above; two pending operations are never siblings (they are causally
    ordered at their common generator), so asking about them is an error.
    """

    def __init__(self, replica: str) -> None:
        self._replica = replica
        self._serial_by_opid: Dict[OpId, int] = {}

    def serial_items(self) -> List[Tuple[OpId, int]]:
        """Every (opid, serial) pair learned so far, sorted by serial.

        See :meth:`ServerOrderOracle.serial_items` — the canonical order
        snapshots serialise.
        """
        return sorted(self._serial_by_opid.items(), key=lambda item: item[1])

    def record(self, opid: OpId, serial: int) -> None:
        existing = self._serial_by_opid.get(opid)
        if existing is not None and existing != serial:
            raise OrderingError(
                f"{self._replica} saw two serials for {opid}: "
                f"{existing} and {serial}"
            )
        self._serial_by_opid[opid] = serial

    def serial_of(self, opid: OpId) -> Optional[int]:
        return self._serial_by_opid.get(opid)

    def before(self, first: OpId, second: OpId) -> bool:
        first_serial = self._serial_by_opid.get(first)
        second_serial = self._serial_by_opid.get(second)
        if first_serial is not None and second_serial is not None:
            return first_serial < second_serial
        if first_serial is not None and second_serial is None:
            # ``second`` is pending here: the server cannot have
            # serialised it before ``first`` or its echo would have
            # arrived first (FIFO).
            return True
        if first_serial is None and second_serial is not None:
            return False
        raise OrderingError(
            f"{self._replica} asked to order two pending operations "
            f"{first} and {second}; pending operations are causally "
            "ordered and can never be sibling transitions"
        )
