"""Total-order oracles used to order sibling transitions (Section 6.1).

The children of a state in the n-ary ordered state-space are ordered by
the server's total order ``⇒`` on the original operations.  How a replica
*knows* that order differs by role:

* the **server** assigns serial numbers itself, so every operation it has
  ever seen has a known serial;
* a **client** learns serials from the server broadcasts.  Its own pending
  operations (generated locally, echo not yet received) have no serial
  yet, but FIFO channels make the comparison decidable anyway: if a remote
  operation arrives while a local operation is still pending, the server
  must have serialised the remote one first — had the local operation been
  serialised earlier, its echo would already have arrived (Section 6.2's
  reasoning about operations being "aware" of each other at the server).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.ids import OpId
from repro.errors import OrderingError


class ServerOrderOracle:
    """Total order at the server: serials it assigned itself.

    ``start`` seats the oracle at a non-zero position: a server restored
    from a checkpoint taken after active-window GC only knows the serials
    past the checkpoint's rebase base, so its oracle begins there instead
    of at serial 1.  ``base`` is the *trim floor* (see :meth:`trim_below`):
    the serial at and below which the prefix has been garbage-collected —
    :meth:`serialized_before` answers relative to it.
    """

    def __init__(self, start: int = 0) -> None:
        self._serial_by_opid: Dict[OpId, int] = {}
        # index i holds serial offset + i + 1
        self._by_serial: List[OpId] = []
        self._offset = int(start)
        self._base = int(start)
        self._next_serial = self._offset + 1
        # Incrementally grown prefix: (serial, ids serialised before it
        # and after the trim floor).
        self._prefix_cache: Tuple[int, frozenset] = (
            self._next_serial,
            frozenset(),
        )

    @property
    def last_serial(self) -> int:
        """The highest serial assigned so far (0 before the first)."""
        return self._next_serial - 1

    @property
    def base(self) -> int:
        """Serial floor of the active window (0 = nothing trimmed)."""
        return self._base

    def serial_items(self, after: int = 0) -> List[Tuple[OpId, int]]:
        """Every (opid, serial) pair with serial > ``after``, by serial.

        The public seam snapshots read instead of the internal mapping.
        ``self._by_serial`` is append-only in assignment order, so the
        canonical (byte-identical JSON) serial order is a slice, not a
        sort — snapshots of a GC-trimmed server pass
        ``after=oracle.base`` and the cost is O(active window), where a
        full-mapping sort would grow with total history on every
        compaction.
        """
        low = max(int(after), self._offset)
        return [
            (opid, low + 1 + index)
            for index, opid in enumerate(self._by_serial[low - self._offset:])
        ]

    def opid_of(self, serial: int) -> OpId:
        """The operation serialised at ``serial`` (must be retained)."""
        index = serial - 1 - self._offset
        if not 0 <= index < len(self._by_serial):
            raise OrderingError(
                f"serial {serial} outside the retained window "
                f"({self._offset + 1}..{self.last_serial})"
            )
        return self._by_serial[index]

    def opids_between(self, low: int, high: int) -> frozenset:
        """Ids of the operations serialised in ``(low, high]``."""
        if high <= low:
            return frozenset()
        if low < self._offset or high > self.last_serial:
            raise OrderingError(
                f"serial range ({low}, {high}] outside the retained "
                f"window ({self._offset}..{self.last_serial})"
            )
        return frozenset(
            self._by_serial[low - self._offset : high - self._offset]
        )

    def trim_below(self, serial: int) -> None:
        """Move the prefix floor up to ``serial`` (acked-prefix GC).

        After trimming, :meth:`serialized_before` answers only with the
        operations *inside* the active window — exactly the prefix a
        replica whose state-space was rebased at the same floor can
        still name — and the serial→opid log drops the trimmed prefix
        outright.  Nothing may ask below the floor afterwards: v1
        sessions (the only readers of absolute history) are refused
        once ``base > 0``, every retained WAL record's context floor is
        at or above the base (the GC fixpoint), and the rebased
        state-space names only window operations.  Keeping the log
        would leave memory — and cyclic-GC pause times — growing with
        total history instead of the active window.
        """
        if serial <= self._base:
            return
        if serial > self.last_serial:
            raise OrderingError(
                f"cannot trim below unassigned serial {serial}"
            )
        self._base = serial
        self._prefix_cache = (serial + 1, frozenset())
        drop = serial - self._offset
        if drop > 0:
            for opid in self._by_serial[:drop]:
                del self._serial_by_opid[opid]
            del self._by_serial[:drop]
            self._offset = serial

    def assign(self, opid: OpId) -> int:
        """Serialise ``opid``: give it the next serial number."""
        if opid in self._serial_by_opid:
            raise OrderingError(f"operation {opid} serialised twice")
        serial = self._next_serial
        self._serial_by_opid[opid] = serial
        self._by_serial.append(opid)
        self._next_serial += 1
        return serial

    def serial_of(self, opid: OpId) -> int:
        return self._serial_by_opid[opid]

    def known(self, opid: OpId) -> bool:
        return opid in self._serial_by_opid

    def serialized_before(self, serial: int) -> frozenset:
        """Ids of the operations in ``(base, serial)`` (message prefix).

        The common caller asks for the prefix of the serial it just
        assigned, so the answer is grown incrementally from the last one
        (one element added per assignment) instead of rescanning every
        assignment ever made.  With an untrimmed oracle (``base`` 0,
        the simulated runtime) this is the full prefix; after
        :meth:`trim_below` it is the active-window suffix of it.
        """
        if serial <= self._base + 1:
            return frozenset()
        cached_serial, cached = self._prefix_cache
        if serial == cached_serial:
            return cached
        if cached_serial < serial <= self._next_serial:
            # Fully determined and append-only, so safe to cache.
            grown = cached.union(
                self._by_serial[
                    cached_serial - 1 - self._offset : serial - 1 - self._offset
                ]
            )
            self._prefix_cache = (serial, grown)
            return grown
        low = max(self._base, self._offset)
        return frozenset(
            self._by_serial[low - self._offset : serial - 1 - self._offset]
        )

    def before(self, first: OpId, second: OpId) -> bool:
        """``first ⇒ second`` in the server total order."""
        try:
            return self._serial_by_opid[first] < self._serial_by_opid[second]
        except KeyError as missing:
            raise OrderingError(
                f"server asked to order unserialised operation {missing}"
            ) from None


class ClientOrderOracle:
    """Total order as known at a client.

    ``record(opid, serial)`` is called for every server broadcast
    (including the echo of the client's own operations).  ``before``
    resolves pending-vs-serialised comparisons with the FIFO argument
    above; two pending operations are never siblings (they are causally
    ordered at their common generator), so asking about them is an error.
    """

    def __init__(self, replica: str) -> None:
        self._replica = replica
        self._serial_by_opid: Dict[OpId, int] = {}
        self._opid_by_serial: Dict[int, OpId] = {}
        self._base = 0

    @property
    def base(self) -> int:
        """Serial floor of the active window (0 = nothing trimmed)."""
        return self._base

    def serial_items(self) -> List[Tuple[OpId, int]]:
        """Every (opid, serial) pair learned so far, sorted by serial.

        See :meth:`ServerOrderOracle.serial_items` — the canonical order
        snapshots serialise.
        """
        return sorted(self._serial_by_opid.items(), key=lambda item: item[1])

    def record(self, opid: OpId, serial: int) -> None:
        existing = self._serial_by_opid.get(opid)
        if existing is not None and existing != serial:
            raise OrderingError(
                f"{self._replica} saw two serials for {opid}: "
                f"{existing} and {serial}"
            )
        self._serial_by_opid[opid] = serial
        self._opid_by_serial[serial] = opid

    def opid_of(self, serial: int) -> OpId:
        """The operation this client learned was serialised at ``serial``."""
        try:
            return self._opid_by_serial[serial]
        except KeyError:
            raise OrderingError(
                f"{self._replica} has not learned serial {serial}"
            ) from None

    def opids_between(self, low: int, high: int) -> frozenset:
        """Ids of the operations serialised in ``(low, high]``.

        Unlike the server's dense log, a client may only ask about
        serials it has actually learned; a gap raises
        :class:`~repro.errors.OrderingError`.
        """
        return frozenset(
            self.opid_of(serial) for serial in range(low + 1, high + 1)
        )

    def trim_below(self, serial: int) -> None:
        """Record that serials ``<= serial`` left the active window.

        Serials a client learned are dense (broadcasts release in
        order), so the trimmed prefix is dropped from both mappings —
        the mirror's memory tracks the active window, not total
        history.  Entries that were never learned (a state-transferred
        session starts past the floor) are simply absent.
        """
        if serial <= self._base:
            return
        for trimmed in range(self._base + 1, serial + 1):
            opid = self._opid_by_serial.pop(trimmed, None)
            if opid is not None:
                self._serial_by_opid.pop(opid, None)
        self._base = serial

    def serial_of(self, opid: OpId) -> Optional[int]:
        return self._serial_by_opid.get(opid)

    def before(self, first: OpId, second: OpId) -> bool:
        first_serial = self._serial_by_opid.get(first)
        second_serial = self._serial_by_opid.get(second)
        if first_serial is not None and second_serial is not None:
            return first_serial < second_serial
        if first_serial is not None and second_serial is None:
            # ``second`` is pending here: the server cannot have
            # serialised it before ``first`` or its echo would have
            # arrived first (FIFO).
            return True
        if first_serial is None and second_serial is not None:
            return False
        raise OrderingError(
            f"{self._replica} asked to order two pending operations "
            f"{first} and {second}; pending operations are causally "
            "ordered and can never be sibling transitions"
        )
