"""Wire payloads exchanged between Jupiter clients and the server.

Channels are FIFO in both directions (Section 4.4).  Two payload shapes
cover all protocol variants:

* :class:`ClientOperation` — a client propagates a freshly generated
  original operation to the server;
* :class:`ServerOperation` — the server broadcasts a serialised operation.
  In the CSS protocol the embedded operation is the *original* one (the
  paper's footnote 7); in the CSCW and classic protocols it is the
  server-transformed form ``o{L1}``.  The broadcast also goes back to the
  generating client, which treats it purely as an acknowledgement carrying
  the serialisation index — the metadata-only substitution documented in
  DESIGN.md that lets CSS clients order sibling transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.ot.operations import Operation


@dataclass(frozen=True)
class ClientOperation:
    """A client-to-server message carrying one original operation."""

    operation: Operation

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ClientOperation({self.operation})"


@dataclass(frozen=True)
class ServerOperation:
    """A server-to-client broadcast of one serialised operation.

    Attributes:
        operation: the operation (original for CSS, ``o{L1}`` otherwise).
        origin: the client that generated the operation.
        serial: the serialisation index — the Jupiter total order
            (Definition 4.3) is exactly the order of serials.
        prefix: ids of the operations serialised strictly before this one;
            carried for cross-checking the FIFO reasoning in Section 6.2
            (a receiver's pending local operation can never appear here).
    """

    operation: Operation
    origin: ReplicaId
    serial: int
    prefix: FrozenSet[OpId]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ServerOperation(#{self.serial} {self.operation})"


@dataclass(frozen=True)
class ResyncRequest:
    """A consumer asks the server for the broadcasts it is missing.

    ``delivered`` is the number of server messages the consumer has on
    record for its server-to-client channel; every message after that
    point (up to the server's current serial) must be re-shipped.  Two
    recovery flows use it, both part of the crash-recovery control plane
    built on the reliable-session layer (:mod:`repro.jupiter.session`):

    * a restarted *client* reports its checkpoint's consumption cursor
      and the server re-ships from its delivery log;
    * after a *server* restart, each client reports its live consumption
      cursor and the recovered server answers from the replayed
      write-ahead log
      (:meth:`~repro.jupiter.persistence.ServerWriteAheadLog.broadcasts_for`).
    """

    client: ReplicaId
    delivered: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ResyncRequest({self.client}, delivered={self.delivered})"


@dataclass(frozen=True)
class ResyncResponse:
    """The server's answer: the missed broadcasts in serial order.

    For Jupiter protocols the payloads are :class:`ServerOperation`\\ s,
    so the tuple is ordered by ``serial`` — the index the recovering
    client replays them through (footnote 7's originals for CSS).
    """

    client: ReplicaId
    payloads: Tuple[Any, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ResyncResponse({self.client}, {len(self.payloads)} ops)"
