"""State-vector Jupiter — the original UIST'95 wire format.

Nichols et al.'s two-way synchronisation protocol does not ship operation
*contexts*; each endpoint of a connection keeps a state vector
``(my_sent, other_received)`` and every message carries the sender's
vector.  The receiver discards acknowledged entries from its outgoing
queue (those the sender had already seen) and transforms the incoming
operation against the rest.

The multi-client system is, as in the Jupiter paper, a star of
independent two-way links: the server runs one :class:`SyncEndpoint` per
client plus the serialisation order.  Functionally this coincides with
:mod:`repro.jupiter.classic` (Theorem 7.1 extends to it, and the tests
replay identical schedules across all of them); the value of this module
is wire-format fidelity — counters on the wire, no contexts — which is
how every deployed Jupiter descendant actually works.

Internally operations still carry contexts (our ``transform`` refuses to
work blind), but they are *derived locally* from the counters, never
transmitted: each endpoint reconstructs the context an incoming
operation must have from its own log, asserting the original algorithm's
correctness rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import OpId, ReplicaId
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.jupiter.base import BaseClient, BaseServer, GenerateResult, ReceiveResult
from repro.jupiter.ordering import ServerOrderOracle
from repro.model.schedule import OpSpec
from repro.ot.operations import Operation
from repro.ot.sequences import transform_against_sequence


@dataclass(frozen=True)
class VectorMessage:
    """One operation plus the sender's state vector.

    ``sent`` counts operations the sender has sent on this connection
    *before* this one; ``received`` counts operations of the receiver
    the sender had processed when it sent it.  This is the entire wire
    metadata of the original protocol.
    """

    operation: Operation  # context stripped before sending (see below)
    sent: int
    received: int
    origin: ReplicaId
    serial: Optional[int] = None  # server-assigned, for the record


def _strip(operation: Operation) -> Operation:
    """Remove the context before the operation goes on the wire."""
    return operation.with_context(frozenset())


class SyncEndpoint:
    """One side of a two-way Jupiter link (the UIST'95 algorithm)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._sent = 0  # ops we sent on this link
        self._received = 0  # ops of the peer we processed
        # Outgoing queue: (index of the op among ours, operation in the
        # form matching the state after everything we had processed).
        self._outgoing: List[Tuple[int, Operation]] = []
        # Everything this endpoint has processed, as original op ids, to
        # reconstruct contexts locally.
        self._processed: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, operation: Operation) -> VectorMessage:
        """Register a locally generated operation and build its message."""
        message = VectorMessage(
            operation=_strip(operation),
            sent=self._sent,
            received=self._received,
            origin=self.name,
        )
        self._outgoing.append((self._sent, operation))
        self._sent += 1
        self._processed = self._processed | {operation.opid}
        return message

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, message: VectorMessage) -> Operation:
        """Process an incoming message; return the executable operation.

        Implements the classic three steps: discard acknowledged outgoing
        entries, reconstruct the incoming operation's context from our
        own log, transform it against the unacknowledged rest (updating
        the queue with the shifted forms).
        """
        if message.received > self._sent:
            raise ProtocolError(
                f"{self.name}: peer claims to have seen {message.received} "
                f"of our operations but we only sent {self._sent}"
            )
        # 1. Everything the peer had seen is stable: drop it.
        self._outgoing = [
            (index, op)
            for index, op in self._outgoing
            if index >= message.received
        ]
        # 2. The incoming operation was generated after everything the
        #    peer had processed: all of our history except the pending
        #    queue, plus the peer operations we have processed.
        pending_ids = frozenset(op.opid for _, op in self._outgoing)
        context = self._processed - pending_ids
        incoming = message.operation.with_context(context)
        # 3. Transform against the pending queue.
        executable, shifted = transform_against_sequence(
            incoming, [op for _, op in self._outgoing]
        )
        self._outgoing = [
            (index, op)
            for (index, _), op in zip(self._outgoing, shifted)
        ]
        self._received += 1
        self._processed = self._processed | {incoming.opid}
        return executable

    @property
    def pending(self) -> int:
        return len(self._outgoing)

    @property
    def state_vector(self) -> Tuple[int, int]:
        return (self._sent, self._received)


class VectorClient(BaseClient):
    """A Jupiter client speaking the state-vector wire format."""

    def __init__(
        self,
        replica_id: ReplicaId,
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id)
        self._document = (initial_document or ListDocument()).copy()
        self._endpoint = SyncEndpoint(replica_id)
        self._context: frozenset = frozenset()

    @property
    def document(self) -> ListDocument:
        return self._document

    @property
    def pending_count(self) -> int:
        return self._endpoint.pending

    @property
    def state_vector(self) -> Tuple[int, int]:
        return self._endpoint.state_vector

    def generate(self, spec: OpSpec) -> GenerateResult:
        operation = self._operation_from_spec(spec, self._context)
        operation.apply(self._document)
        self._context = self._context | {operation.opid}
        message = self._endpoint.send(operation)
        return GenerateResult(
            operation=operation, returned=self.read(), outgoing=message
        )

    def receive(self, payload: Any) -> ReceiveResult:
        if not isinstance(payload, VectorMessage):
            raise ProtocolError(
                f"{self.replica_id}: unexpected payload {payload!r}"
            )
        if payload.origin == self.replica_id:
            raise ProtocolError(
                f"{self.replica_id}: the state-vector server never echoes"
            )
        executable = self._endpoint.receive(payload)
        executable.apply(self._document)
        self._context = self._context | {executable.opid}
        return ReceiveResult(executed=executable, returned=self.read())


class VectorServer(BaseServer):
    """The star of two-way links plus the serialisation order."""

    def __init__(
        self,
        replica_id: ReplicaId,
        clients: List[ReplicaId],
        initial_document: Optional[ListDocument] = None,
    ) -> None:
        super().__init__(replica_id, clients)
        self.oracle = ServerOrderOracle()
        self._document = (initial_document or ListDocument()).copy()
        self._endpoints: Dict[ReplicaId, SyncEndpoint] = {
            client: SyncEndpoint(f"s/{client}") for client in clients
        }
        self._context: frozenset = frozenset()

    @property
    def document(self) -> ListDocument:
        return self._document

    def endpoint_for(self, client: ReplicaId) -> SyncEndpoint:
        return self._endpoints[client]

    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        if not isinstance(payload, VectorMessage):
            raise ProtocolError(f"server: unexpected payload {payload!r}")
        endpoint = self._endpoints.get(sender)
        if endpoint is None:
            raise ProtocolError(f"server: unknown client {sender}")
        serial = self.oracle.assign(payload.operation.opid)
        executable = endpoint.receive(payload)
        executable.apply(self._document)
        self._context = self._context | {executable.opid}
        outgoing: List[Tuple[ReplicaId, Any]] = []
        for client in self.clients:
            if client == sender:
                continue
            message = self._endpoints[client].send(executable)
            outgoing.append(
                (
                    client,
                    VectorMessage(
                        operation=message.operation,
                        sent=message.sent,
                        received=message.received,
                        origin=sender,
                        serial=serial,
                    ),
                )
            )
        return outgoing
