"""Jupiter protocols: CSS, CSCW, classic buffer-based, broken, and dCSS.

* :mod:`repro.jupiter.nary` — the n-ary ordered state-space and
  Algorithm 1 (Section 6.1–6.2);
* :mod:`repro.jupiter.two_dim` — the 2D state-spaces (DSS) of the CSCW
  protocol (Section 5.1);
* :mod:`repro.jupiter.css` — the CSS protocol (Section 6);
* :mod:`repro.jupiter.cscw` — the CSCW protocol (Section 5);
* :mod:`repro.jupiter.classic` — the optimised buffer implementation in
  the style of the original Jupiter system (no explicit state-spaces);
* :mod:`repro.jupiter.broken` — a deliberately incorrect OT protocol
  used as the running counterexample (Example 8.1 / Figure 8);
* :mod:`repro.jupiter.dcss` + :mod:`repro.jupiter.peer_cluster` — the
  decentralised CSS extension sketched in the paper's §10 future work
  (Lamport-order serialisation, no server);
* :mod:`repro.jupiter.cluster` — schedule-driven execution of a
  client/server system with FIFO channels, recording executions.
"""

from repro.jupiter.broken import BrokenClient, BrokenServer
from repro.jupiter.classic import ClassicClient, ClassicServer
from repro.jupiter.cluster import Cluster, make_cluster
from repro.jupiter.cscw import CscwClient, CscwServer
from repro.jupiter.css import CssClient, CssServer
from repro.jupiter.dcss import DcssPeer, LamportOrderOracle, PeerAck, PeerOperation
from repro.jupiter.nary import NaryStateSpace
from repro.jupiter.ordering import ClientOrderOracle, ServerOrderOracle
from repro.jupiter.peer_cluster import PeerCluster
from repro.jupiter.two_dim import Dimension, TwoDimStateSpace

__all__ = [
    "BrokenClient",
    "BrokenServer",
    "ClassicClient",
    "ClassicServer",
    "Cluster",
    "make_cluster",
    "CscwClient",
    "CscwServer",
    "CssClient",
    "CssServer",
    "DcssPeer",
    "LamportOrderOracle",
    "PeerAck",
    "PeerOperation",
    "PeerCluster",
    "NaryStateSpace",
    "ClientOrderOracle",
    "ServerOrderOracle",
    "Dimension",
    "TwoDimStateSpace",
]
