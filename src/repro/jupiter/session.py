"""Reliable sessions: exactly-once FIFO delivery over a lossy channel.

Every protocol in this repository (``ClassicClient``/``CscwClient``/
``CssClient`` and the server halves) assumes the paper's network model:
reliable exactly-once FIFO channels (Section 4.4).  This module rebuilds
that abstraction on top of a channel that may drop, duplicate and reorder
frames — without touching protocol internals:

* a :class:`SessionSender` stamps each outgoing protocol message with a
  per-channel monotone sequence number and keeps it retransmittable until
  a cumulative acknowledgement covers it;
* a :class:`SessionReceiver` suppresses duplicates, buffers out-of-order
  arrivals and releases frames to the protocol strictly in sequence
  order, acknowledging cumulatively;
* a :class:`RetransmitPolicy` turns attempt counts into timeout-driven
  resends with exponential backoff and seeded jitter (deterministic, so
  simulated runs replay exactly).

Crash recovery adds a control-plane handshake: a restarted client that
restored an older checkpoint re-requests the operations it had already
consumed but lost (:class:`~repro.jupiter.messages.ResyncRequest` /
``ResyncResponse``, built by :func:`resync_payloads` from the server-side
delivery log, ordered by ``ServerOperation.serial``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.ids import ReplicaId
from repro.errors import ProtocolError
from repro.jupiter.messages import ResyncRequest, ResyncResponse
from repro.obs import get_obs

#: A directed channel, e.g. ``("c1", "s")``.
Channel = Tuple[ReplicaId, ReplicaId]


class SessionSender:
    """Sender half of one directed channel.

    Sequence numbers start at 1 and are dense; ``acked`` is the highest
    *cumulatively* acknowledged sequence number, so the retransmittable
    window is exactly ``acked + 1 .. next_seq - 1``.
    """

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.next_seq = 1
        self.acked = 0
        self._obs = get_obs()

    def send(self) -> int:
        """Allocate the sequence number for the next outgoing frame."""
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def ack(self, cumulative: int) -> None:
        """Process a cumulative acknowledgement (idempotent, monotone)."""
        if cumulative >= self.next_seq:
            raise ProtocolError(
                f"{self.channel}: ack {cumulative} beyond last sent "
                f"{self.next_seq - 1}"
            )
        self.acked = max(self.acked, cumulative)
        self._obs.session_acks.inc()

    def unacked(self) -> range:
        """Sequence numbers still awaiting acknowledgement."""
        return range(self.acked + 1, self.next_seq)

    @property
    def outstanding(self) -> int:
        return self.next_seq - 1 - self.acked

    # -- checkpointing --------------------------------------------------
    def state(self) -> Dict[str, int]:
        return {"next_seq": self.next_seq, "acked": self.acked}

    def restore(self, state: Dict[str, int]) -> None:
        self.next_seq = int(state["next_seq"])
        # Rolling ``acked`` back makes the sender re-offer frames the peer
        # already consumed; the peer's receiver suppresses them as
        # duplicates, so recovery errs on the safe side.
        self.acked = int(state["acked"])


class SessionReceiver:
    """Receiver half of one directed channel.

    ``expected`` is the next in-order sequence number; anything below it
    is a duplicate (suppressed), anything above it is parked in the
    reorder buffer until the gap fills.  :meth:`receive` returns how many
    frames became releasable *in order* — the caller hands exactly that
    many queued protocol messages to the replica, which is what restores
    exactly-once FIFO semantics.
    """

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.expected = 1
        self.buffer: set = set()
        self.duplicates = 0
        self.buffered = 0
        self._obs = get_obs()

    def receive(self, seq: int) -> int:
        """Accept frame ``seq``; return the number of frames released."""
        if seq < 1:
            raise ProtocolError(f"{self.channel}: invalid sequence {seq}")
        if seq < self.expected or seq in self.buffer:
            self.duplicates += 1
            self._obs.session_duplicates.inc()
            return 0
        if seq > self.expected:
            self.buffer.add(seq)
            self.buffered += 1
            self._obs.session_gap_parks.inc()
            return 0
        released = 1
        self.expected += 1
        while self.expected in self.buffer:
            self.buffer.remove(self.expected)
            self.expected += 1
            released += 1
        return released

    @property
    def cumulative_ack(self) -> int:
        """The acknowledgement to send: highest in-order frame consumed."""
        return self.expected - 1

    @property
    def released_total(self) -> int:
        return self.expected - 1

    def drop_reorder_buffer(self) -> None:
        """Forget parked out-of-order frames (lost volatile state)."""
        self.buffer.clear()

    def fast_forward(self, consumed: int) -> None:
        """Resume a fresh receiver as if ``consumed`` frames were released.

        Server crash recovery rebuilds the server's receiver for each
        client channel from the write-ahead log: the log knows how many
        operations each origin had serialised, which is exactly how many
        frames that channel had consumed.  The reorder buffer stays empty
        — parked frames died with the process and the peers' senders
        still hold them unacknowledged, so retransmission re-delivers.
        """
        if consumed < 0:
            raise ProtocolError(
                f"{self.channel}: cannot fast-forward to {consumed} consumed"
            )
        if self.buffer:
            raise ProtocolError(
                f"{self.channel}: fast_forward on a receiver with parked "
                "frames; it is a recovery primitive for fresh receivers"
            )
        self.expected = consumed + 1


@dataclass
class RetransmitPolicy:
    """Exponential backoff with seeded jitter for retransmission timers.

    The timeout for attempt ``n`` (1-based) is ``base * factor**(n-1)``
    capped at ``cap``, inflated by up to ``jitter`` of itself from a
    dedicated RNG — deterministic per seed, so a fault-injected run is a
    pure function of its seeds.
    """

    base: float = 0.25
    factor: float = 2.0
    cap: float = 8.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1.0 or self.cap < self.base:
            raise ProtocolError(
                f"invalid retransmit policy base={self.base} "
                f"factor={self.factor} cap={self.cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ProtocolError(f"jitter {self.jitter} not in [0, 1]")
        self._rng = random.Random(self.seed)

    def timeout(self, attempt: int) -> float:
        """Timeout before retransmission number ``attempt`` (1-based)."""
        raw = min(self.base * self.factor ** (attempt - 1), self.cap)
        return raw * (1.0 + self.jitter * self._rng.random())


def resync_payloads(
    request: ResyncRequest, delivered_log: Sequence[Any]
) -> ResyncResponse:
    """Answer a restarted client's resync request from the delivery log.

    ``delivered_log`` is the ordered list of payloads the client had
    consumed before crashing (for Jupiter protocols these are
    ``ServerOperation``s, so the order is the serial order); the client
    restored a checkpoint that had only consumed the first
    ``request.delivered`` of them, so everything after that index is
    re-shipped.  Frames the client had *not* yet consumed stay with the
    session layer: the sender still holds them unacknowledged and normal
    retransmission delivers them after the restart.
    """
    if not 0 <= request.delivered <= len(delivered_log):
        raise ProtocolError(
            f"resync for {request.client}: checkpoint claims "
            f"{request.delivered} delivered but the log has "
            f"{len(delivered_log)}"
        )
    return ResyncResponse(
        client=request.client,
        payloads=tuple(delivered_log[request.delivered:]),
    )
