"""Replica interfaces shared by every protocol implementation.

A *client* turns user :class:`~repro.model.schedule.OpSpec` requests into
operations (executing them locally at once — optimistic replication) and
processes server messages; a *server* serialises client operations and
broadcasts them.  The :class:`~repro.jupiter.cluster.Cluster` drives these
interfaces from a :class:`~repro.model.schedule.Schedule` and records the
resulting execution, so protocols never touch the network or the recorder
directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.ids import OpId, ReplicaId, SeqGenerator
from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.errors import ProtocolError
from repro.model.schedule import OpSpec
from repro.ot.operations import Operation, delete, insert


@dataclass(frozen=True)
class GenerateResult:
    """Outcome of a client generating one user operation."""

    operation: Operation  # the original operation (org form)
    returned: Tuple[Element, ...]  # the list after local execution
    outgoing: Any  # payload to send to the server


@dataclass(frozen=True)
class ReceiveResult:
    """Outcome of a client processing one server message."""

    executed: Optional[Operation]  # transformed op applied, None for acks
    returned: Tuple[Element, ...]  # the list after processing


class BaseClient(abc.ABC):
    """Common client behaviour: spec-to-operation and local execution."""

    def __init__(self, replica_id: ReplicaId) -> None:
        self.replica_id = replica_id
        self._seq = SeqGenerator(replica_id)

    # ------------------------------------------------------------------
    # Document access (implementations expose their current document)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def document(self) -> ListDocument:
        """The client's current list document."""

    def read(self) -> Tuple[Element, ...]:
        """The paper's ``Read``: the current list contents."""
        return tuple(self.document.read())

    # ------------------------------------------------------------------
    # Operation construction
    # ------------------------------------------------------------------
    def _fresh_opid(self) -> OpId:
        return self._seq.next_opid()

    def _operation_from_spec(self, spec: OpSpec, context) -> Operation:
        """Materialise an :class:`OpSpec` against the current document."""
        document = self.document
        if spec.kind == "ins":
            if spec.position > len(document):
                raise ProtocolError(
                    f"{self.replica_id}: insert position {spec.position} "
                    f"beyond document of length {len(document)}"
                )
            return insert(self._fresh_opid(), spec.value, spec.position, context)
        victim = document.element_at(spec.position)
        return delete(self._fresh_opid(), victim, spec.position, context)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def generate(self, spec: OpSpec) -> GenerateResult:
        """Generate, locally execute, and package one user operation."""

    @abc.abstractmethod
    def receive(self, payload: Any) -> ReceiveResult:
        """Process one message from the server."""


class BaseServer(abc.ABC):
    """Common server behaviour."""

    def __init__(self, replica_id: ReplicaId, clients: Sequence[ReplicaId]) -> None:
        self.replica_id = replica_id
        self.clients = list(clients)

    @property
    @abc.abstractmethod
    def document(self) -> ListDocument:
        """The server's current list document (footnote 6 of the paper)."""

    def read(self) -> Tuple[Element, ...]:
        return tuple(self.document.read())

    @abc.abstractmethod
    def receive(
        self, sender: ReplicaId, payload: Any
    ) -> List[Tuple[ReplicaId, Any]]:
        """Process one client message; return (recipient, payload) pairs."""
