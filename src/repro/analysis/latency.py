"""Propagation-latency statistics for simulated runs.

Optimistic replication makes local edits instantaneous; what users of a
collaborative editor actually experience from *other* users is the
propagation latency — the simulated time from an operation's generation
to its application at each remote replica.  These helpers summarise that
distribution (mean / percentiles), which the latency benchmarks sweep
across network models and offline windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.runner import SimulationResult


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (simulated seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f}s p50={self.p50:.3f}s "
            f"p95={self.p95:.3f}s p99={self.p99:.3f}s max={self.maximum:.3f}s"
        )


def percentile(sample: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    if not sample:
        raise ValueError("empty sample")
    ordered = sorted(sample)
    rank = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[rank]


def summarise(sample: Sequence[float]) -> LatencyStats:
    if not sample:
        raise ValueError("empty latency sample")
    return LatencyStats(
        count=len(sample),
        mean=sum(sample) / len(sample),
        p50=percentile(sample, 0.50),
        p95=percentile(sample, 0.95),
        p99=percentile(sample, 0.99),
        maximum=max(sample),
    )


def propagation_stats(result: SimulationResult) -> LatencyStats:
    """Latency summary over every (operation, remote replica) pair."""
    sample: List[float] = [
        delay
        for pairs in result.propagation_latencies().values()
        for _, delay in pairs
    ]
    return summarise(sample)


def staleness_per_operation(result: SimulationResult) -> List[float]:
    """Per-operation worst-case delay: when the *last* replica saw it."""
    return [
        max(delay for _, delay in pairs)
        for pairs in result.propagation_latencies().values()
        if pairs
    ]
