"""Executable versions of the paper's structural theorems.

* Proposition 6.6 (compactness): all CSS replicas that processed the same
  operations hold the *same* n-ary ordered state-space;
* Proposition 7.2: the server's CSS space equals the union of the
  server-side 2D spaces of the CSCW protocol;
* Proposition 7.4: each CSCW client's DSS is contained in the
  corresponding CSS client's space;
* Theorem 7.1: replica behaviours coincide across protocols under the
  same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.jupiter.cluster import Cluster
from repro.model.schedule import Schedule


@dataclass
class EquivalenceReport:
    """Outcome of one cross-protocol comparison."""

    schedule_steps: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"equivalent over {self.schedule_steps} schedule steps"
        return "NOT equivalent:\n" + "\n".join(
            f"  - {failure}" for failure in self.failures
        )


def compare_protocols(
    schedule: Schedule,
    clusters: Dict[str, Cluster],
) -> EquivalenceReport:
    """Theorem 7.1: same schedule, same per-replica behaviours.

    ``clusters`` maps protocol names to clusters that already ran
    ``schedule``.  Behaviours are compared as (action, document) sequences
    per replica — Definition 2.5's alternation of events and states, with
    states shown through the documents they induce.
    """
    report = EquivalenceReport(schedule_steps=len(schedule))
    names = sorted(clusters)
    reference_name = names[0]
    reference = clusters[reference_name]

    def behaviour(cluster: Cluster):
        return {
            replica: [(entry.action, entry.document) for entry in entries]
            for replica, entries in cluster.behaviors.items()
        }

    expected = behaviour(reference)
    for name in names[1:]:
        actual = behaviour(clusters[name])
        if set(actual) != set(expected):
            report.failures.append(
                f"{name}: replica sets differ from {reference_name}"
            )
            continue
        for replica in expected:
            if actual[replica] != expected[replica]:
                report.failures.append(
                    f"{name}: behaviour of {replica} differs from "
                    f"{reference_name} "
                    f"({actual[replica][-1:]} vs {expected[replica][-1:]})"
                )
    return report


def check_css_compactness(cluster: Cluster) -> List[str]:
    """Proposition 6.6 on a quiescent CSS cluster.

    Returns human-readable failures (empty list = the proposition holds).
    """
    failures: List[str] = []
    server_space = getattr(cluster.server, "space", None)
    if server_space is None:
        return ["cluster is not running the CSS protocol"]
    for name, client in cluster.clients.items():
        if not client.space.same_structure(server_space):
            failures.append(
                f"client {name}'s state-space differs from the server's"
            )
    return failures


def check_dss_subset_of_css(
    cscw_cluster: Cluster, css_cluster: Cluster
) -> List[str]:
    """Proposition 7.4: ``DSS_ci ⊆ CSS_ci`` under the same schedule."""
    failures: List[str] = []
    for name, cscw_client in cscw_cluster.clients.items():
        css_client = css_cluster.clients.get(name)
        if css_client is None:
            failures.append(f"CSS cluster lacks client {name}")
            continue
        if not css_client.space.contains_structure(cscw_client.space):
            failures.append(f"DSS of {name} is not contained in its CSS space")
    return failures


def check_css_equals_union_of_dss(
    cscw_cluster: Cluster, css_cluster: Cluster
) -> List[str]:
    """Proposition 7.2: ``CSS_s = ⋃_i DSS_si`` under the same schedule.

    Union is taken over states and (unordered) transitions of the
    server-side 2D spaces; the CSS server space must have exactly those
    states and transitions.
    """
    failures: List[str] = []
    css_space = getattr(css_cluster.server, "space", None)
    dss_spaces = getattr(cscw_cluster.server, "spaces", None)
    if css_space is None or dss_spaces is None:
        return ["clusters are not CSS / CSCW respectively"]

    union_states = set()
    union_edges = set()
    for space in dss_spaces.values():
        signature = space.signature()
        union_states.update(signature)
        for key, edges in signature.items():
            for edge in edges:
                union_edges.add((key, edge))

    css_signature = css_space.signature()
    css_states = set(css_signature)
    css_edges = {
        (key, edge) for key, edges in css_signature.items() for edge in edges
    }
    if css_states != union_states:
        missing = union_states - css_states
        extra = css_states - union_states
        failures.append(
            f"state sets differ: union-only={len(missing)}, "
            f"css-only={len(extra)}"
        )
    if css_edges != union_edges:
        missing = union_edges - css_edges
        extra = css_edges - union_edges
        failures.append(
            f"transition sets differ: union-only={len(missing)}, "
            f"css-only={len(extra)}"
        )
    return failures


def final_documents_agree(clusters: Sequence[Cluster]) -> bool:
    """All clusters ended with identical per-replica documents."""
    documents = [cluster.documents() for cluster in clusters]
    return all(docs == documents[0] for docs in documents[1:])
