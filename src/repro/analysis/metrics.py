"""Per-run metrics: OT counts, state-space sizes, metadata overheads.

These quantify the paper's qualitative claims: the CSS protocol's single
n-ary state-space versus CSCW's ``2n`` 2D state-spaces (Proposition 6.6),
and the §10 future-work question about metadata overhead, which we extend
to the CRDT baselines (tombstones, identifier growth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.ids import ReplicaId
from repro.jupiter.cluster import Cluster


@dataclass
class ClusterMetrics:
    """Everything measurable about one finished cluster run."""

    protocol: str
    replicas: int = 0
    #: pairwise OTs performed, per replica (state-space protocols only).
    ot_counts: Dict[ReplicaId, int] = field(default_factory=dict)
    #: state-space nodes, per replica (CSS: one space; CSCW server: sum).
    space_nodes: Dict[ReplicaId, int] = field(default_factory=dict)
    #: state-space transitions, per replica.
    space_transitions: Dict[ReplicaId, int] = field(default_factory=dict)
    #: number of distinct state-space objects maintained, per replica.
    spaces_maintained: Dict[ReplicaId, int] = field(default_factory=dict)
    #: CRDT metadata units (tombstones / identifier components).
    crdt_metadata: Dict[ReplicaId, int] = field(default_factory=dict)
    document_length: int = 0

    @property
    def total_ot_count(self) -> int:
        return sum(self.ot_counts.values())

    @property
    def total_space_nodes(self) -> int:
        return sum(self.space_nodes.values())

    @property
    def total_spaces(self) -> int:
        return sum(self.spaces_maintained.values())

    @property
    def total_crdt_metadata(self) -> int:
        return sum(self.crdt_metadata.values())


def _space_stats(metrics: ClusterMetrics, replica: ReplicaId, spaces) -> None:
    metrics.spaces_maintained[replica] = len(spaces)
    metrics.ot_counts[replica] = sum(s.ot_count for s in spaces)
    metrics.space_nodes[replica] = sum(s.node_count() for s in spaces)
    metrics.space_transitions[replica] = sum(
        s.transition_count() for s in spaces
    )


def collect_metrics(cluster: Cluster, protocol: Optional[str] = None) -> ClusterMetrics:
    """Harvest metrics from a cluster after a run."""
    metrics = ClusterMetrics(protocol=protocol or type(cluster.server).__name__)
    replicas = [cluster.server, *cluster.clients.values()]
    metrics.replicas = len(replicas)
    metrics.document_length = len(cluster.server.document)

    for replica in replicas:
        name = replica.replica_id
        if hasattr(replica, "space"):
            _space_stats(metrics, name, [replica.space])
        elif hasattr(replica, "spaces"):
            _space_stats(metrics, name, list(replica.spaces.values()))
        if hasattr(replica, "crdt"):
            metrics.crdt_metadata[name] = replica.crdt.metadata_size()
    return metrics
