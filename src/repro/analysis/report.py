"""Programmatic experiment reports.

``build_report`` runs a configurable slice of the experiment suite and
renders a self-contained Markdown report — the automated counterpart of
the hand-written ``EXPERIMENTS.md``.  Exposed on the CLI as
``python -m repro report --out report.md``; handy for checking a code
change against the paper's claims in one command.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.equivalence import (
    check_css_compactness,
    check_css_equals_union_of_dss,
    check_dss_subset_of_css,
    compare_protocols,
)
from repro.analysis.latency import propagation_stats
from repro.analysis.metrics import collect_metrics
from repro.scenarios import figure1, figure2, figure6, figure7, figure8, run_scenario
from repro.sim.network import UniformLatency
from repro.sim.runner import SimulationRunner, replay
from repro.sim.trace import check_all_specs
from repro.sim.workload import WorkloadConfig

PROTOCOLS = ["css", "cscw", "classic", "rga", "logoot", "woot", "treedoc"]


def _figures_section() -> List[str]:
    lines = ["## Paper figures", ""]
    lines.append("| figure | expectation | outcome |")
    lines.append("|---|---|---|")
    checks = []

    cluster, execution = run_scenario(figure1())
    checks.append(
        (
            "Figure 1",
            "all replicas reach 'effect'",
            set(cluster.documents().values()) == {"effect"},
        )
    )
    cluster, _ = run_scenario(figure2())
    checks.append(
        (
            "Figures 2+4",
            "one shared state-space (Prop. 6.6)",
            not check_css_compactness(cluster),
        )
    )
    cluster, _ = run_scenario(figure6())
    checks.append(
        (
            "Figure 6",
            "richer schedule converges, Prop. 6.6 holds",
            len(set(cluster.documents().values())) == 1
            and not check_css_compactness(cluster),
        )
    )
    _, execution = run_scenario(figure7())
    report = check_all_specs(execution)
    checks.append(
        (
            "Figure 7",
            "weak ✓ / strong ✗ (Thm 8.1 + 8.2)",
            report.weak_list.ok and not report.strong_list.ok,
        )
    )
    cluster, execution = run_scenario(figure8())
    report = check_all_specs(execution, initial_text="abc")
    checks.append(
        (
            "Figure 8",
            "broken protocol diverges and is caught",
            len(set(cluster.documents().values())) > 1
            and not report.convergence.ok,
        )
    )
    for name, expectation, outcome in checks:
        verdict = "✓" if outcome else "**FAILED**"
        lines.append(f"| {name} | {expectation} | {verdict} |")
    lines.append("")
    return lines


def _comparison_section(operations: int, seed: int) -> List[str]:
    lines = ["## Protocol comparison", ""]
    lines.append(
        "| protocol | converged | weak | strong | OTs | spaces | nodes "
        "| metadata | propagation p95 |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|")
    config = WorkloadConfig(
        clients=3, operations=operations, insert_ratio=0.6, seed=seed
    )
    for protocol in PROTOCOLS:
        latency = UniformLatency(0.01, 0.4, seed=seed)
        result = SimulationRunner(protocol, config, latency).run()
        spec_report = check_all_specs(result.execution)
        metrics = collect_metrics(result.cluster, protocol)
        stats = propagation_stats(result)
        lines.append(
            f"| {protocol} | {result.converged} | {spec_report.weak_list.ok} "
            f"| {spec_report.strong_list.ok} | {metrics.total_ot_count} "
            f"| {metrics.total_spaces} | {metrics.total_space_nodes} "
            f"| {metrics.total_crdt_metadata} | {stats.p95:.3f}s |"
        )
    lines.append("")
    return lines


def _equivalence_section(operations: int, seed: int) -> List[str]:
    lines = ["## Equivalence theorems", ""]
    config = WorkloadConfig(clients=3, operations=operations, seed=seed)
    result = SimulationRunner(
        "css", config, UniformLatency(0.01, 0.4, seed=seed)
    ).run()
    clusters = {"css": result.cluster}
    for protocol in ("cscw", "classic"):
        clusters[protocol] = replay(
            protocol, result.schedule, config.client_names()
        )
    behaviour = compare_protocols(result.schedule, clusters)
    compact = check_css_compactness(result.cluster)
    subset = check_dss_subset_of_css(clusters["cscw"], result.cluster)
    union = check_css_equals_union_of_dss(clusters["cscw"], result.cluster)
    rows = [
        ("Theorem 7.1 (behaviours identical)", behaviour.ok),
        ("Proposition 6.6 (compactness)", not compact),
        ("Proposition 7.4 (DSS ⊆ CSS)", not subset),
        ("Proposition 7.2 (CSS = ⋃ DSS)", not union),
    ]
    lines.append("| claim | holds |")
    lines.append("|---|---|")
    for claim, holds in rows:
        lines.append(f"| {claim} | {'✓' if holds else '**FAILED**'} |")
    lines.append("")
    return lines


def build_report(
    operations: int = 30, seed: int = 0, title: Optional[str] = None
) -> str:
    """Run the report suite and return the Markdown text."""
    lines = [f"# {title or 'Jupiter reproduction report'}", ""]
    lines.append(
        f"Workload: 3 clients, {operations} operations, seed {seed}."
    )
    lines.append("")
    lines.extend(_figures_section())
    lines.extend(_comparison_section(operations, seed))
    lines.extend(_equivalence_section(operations, seed))
    return "\n".join(lines)


def report_is_clean(markdown: str) -> bool:
    """Whether a built report contains no failed checks."""
    return "**FAILED**" not in markdown
