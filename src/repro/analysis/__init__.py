"""Measurement and comparison utilities used by tests and benchmarks."""

from repro.analysis.equivalence import (
    EquivalenceReport,
    check_css_compactness,
    check_css_equals_union_of_dss,
    check_dss_subset_of_css,
    compare_protocols,
    final_documents_agree,
)
from repro.analysis.latency import (
    LatencyStats,
    percentile,
    propagation_stats,
    staleness_per_operation,
    summarise,
)
from repro.analysis.metrics import ClusterMetrics, collect_metrics
from repro.analysis.render import (
    render_behavior,
    render_documents,
    render_nary_space,
    to_dot,
)

__all__ = [
    "EquivalenceReport",
    "check_css_compactness",
    "check_css_equals_union_of_dss",
    "check_dss_subset_of_css",
    "compare_protocols",
    "final_documents_agree",
    "LatencyStats",
    "percentile",
    "propagation_stats",
    "staleness_per_operation",
    "summarise",
    "ClusterMetrics",
    "collect_metrics",
    "render_behavior",
    "render_documents",
    "render_nary_space",
    "to_dot",
]
