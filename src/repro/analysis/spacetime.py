"""ASCII space-time diagrams of executions (the paper's Figure 2).

A schedule is depicted as a "space-time diagram" (Definition 4.7): one
column per replica, time flowing downward, with generation, send, receive
and read events marked per replica.  This module renders a recorded
:class:`~repro.model.execution.Execution` in that style, so the harness
can print the *schedule* figures of the paper next to the state-space
figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.ids import ReplicaId
from repro.model.events import DoEvent, ReceiveEvent, SendEvent
from repro.model.execution import Execution

_COLUMN_WIDTH = 14


def _cell(text: str) -> str:
    if len(text) > _COLUMN_WIDTH - 1:
        text = text[: _COLUMN_WIDTH - 2] + "…"
    return text.ljust(_COLUMN_WIDTH)


def _label(event) -> Optional[str]:
    if isinstance(event, DoEvent):
        if event.is_read:
            return f"read {event.returned_string()!r}"
        return f"do {event.operation}"
    if isinstance(event, SendEvent):
        return f"send>{event.message.recipient}"
    if isinstance(event, ReceiveEvent):
        return f"recv<{event.message.sender}"
    return None


def render_spacetime(
    execution: Execution,
    replicas: Optional[Sequence[ReplicaId]] = None,
    include_sends: bool = False,
    include_reads: bool = False,
) -> str:
    """One row per rendered event, columns per replica, time downward.

    By default only the *interesting* rows are shown — operation
    generations and message receipts — which matches what the paper's
    Figure 2 depicts; sends and reads can be included for debugging.
    """
    columns: List[ReplicaId] = list(replicas or execution.replicas())
    index: Dict[ReplicaId, int] = {name: i for i, name in enumerate(columns)}

    header = "".join(_cell(name) for name in columns)
    ruler = "".join(_cell("|") for _ in columns)
    rows = [header, ruler]
    for event in execution:
        if event.replica not in index:
            continue
        if isinstance(event, SendEvent) and not include_sends:
            continue
        if (
            isinstance(event, DoEvent)
            and event.is_read
            and not include_reads
        ):
            continue
        label = _label(event)
        if label is None:
            continue
        cells = ["|"] * len(columns)
        cells[index[event.replica]] = label
        rows.append("".join(_cell(cell) for cell in cells))
    return "\n".join(rows)


def spacetime_summary(execution: Execution) -> Dict[ReplicaId, Dict[str, int]]:
    """Event counts per replica, for quick schedule characterisation."""
    summary: Dict[ReplicaId, Dict[str, int]] = {}
    for event in execution:
        bucket = summary.setdefault(
            event.replica, {"do": 0, "send": 0, "receive": 0}
        )
        if isinstance(event, DoEvent):
            bucket["do"] += 1
        elif isinstance(event, SendEvent):
            bucket["send"] += 1
        elif isinstance(event, ReceiveEvent):
            bucket["receive"] += 1
    return summary
