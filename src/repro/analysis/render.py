"""ASCII rendering of state-spaces and replica behaviours.

The paper communicates the CSS protocol through pictures of n-ary ordered
state-spaces (Figures 3, 4, 6, 7); these helpers print the same artifacts
so the scenario benchmarks can regenerate the figures textually.
"""

from __future__ import annotations

from typing import List

from repro.common.ids import format_opid_set
from repro.jupiter.cluster import Cluster
from repro.jupiter.state_space import BaseStateSpace


def render_nary_space(space: BaseStateSpace, title: str = "") -> str:
    """One line per state: key, document, and ordered child transitions.

    States are sorted by depth (key size) then key, mirroring how the
    paper's figures grow downward from ``σ0 = {0}``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    for key in sorted(space.states(), key=lambda k: (len(k), sorted(k))):
        node = space.node(key)
        children = ", ".join(
            f"{t.operation}" for t in node.children
        )
        lines.append(
            f"  {format_opid_set(key):<30} "
            f"w={node.document.as_string()!r:<12} "
            f"children=[{children}]"
        )
    return "\n".join(lines)


def render_behavior(cluster: Cluster, replica: str) -> str:
    """A replica's behaviour as ``action(document)`` steps — the paths
    through the shared state-space shown by Figure 4's thick lines."""
    entries = cluster.behaviors.get(replica, [])
    steps = [f"{entry.action}->{entry.document!r}" for entry in entries]
    return f"{replica}: " + " ; ".join(steps)


def render_documents(cluster: Cluster) -> str:
    """Final documents at every replica, one per line."""
    return "\n".join(
        f"  {name}: {doc!r}" for name, doc in sorted(cluster.documents().items())
    )


def to_dot(space: BaseStateSpace, name: str = "state_space") -> str:
    """Graphviz DOT rendering of a state-space.

    Nodes are states (labelled with their key and document); edges are
    transitions labelled with operations, numbered by sibling order so
    the n-ary ordering is visible in the drawing.  Paste the output into
    any Graphviz viewer; no external dependency is needed to produce it.
    """

    def node_id(key) -> str:
        if not key:
            return "s0"
        return "s_" + "_".join(
            f"{opid.replica}{opid.seq}" for opid in sorted(key)
        )

    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for key in sorted(space.states(), key=lambda k: (len(k), sorted(k))):
        node = space.node(key)
        label = (
            f"{format_opid_set(key)}\\n"
            f"w={node.document.as_string()!r}"
        ).replace('"', '\\"')
        lines.append(f'  {node_id(key)} [label="{label}"];')
    for key in space.states():
        node = space.node(key)
        for order, transition in enumerate(node.children, start=1):
            label = str(transition.operation).replace('"', '\\"')
            lines.append(
                f"  {node_id(transition.source)} -> "
                f'{node_id(transition.target)} [label="{order}: {label}"];'
            )
    lines.append("}")
    return "\n".join(lines)
