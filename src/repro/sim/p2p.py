"""Discrete-event simulation of the decentralised CSS protocol.

Same shape as :mod:`repro.sim.runner` but over a full mesh: peers
generate operations at Poisson arrival times and every message (operation
broadcasts *and* stability acknowledgements) travels through a FIFO
channel with model-supplied latency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.ids import ReplicaId
from repro.errors import SimulationError
from repro.jupiter.peer_cluster import PeerCluster
from repro.model.execution import Execution
from repro.sim.network import FifoChannelTimer, FixedLatency, LatencyModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@dataclass
class P2PSimulationResult:
    """Everything one simulated peer-to-peer run produces."""

    cluster: PeerCluster
    execution: Execution
    duration: float
    messages_delivered: int

    def documents(self) -> Dict[ReplicaId, str]:
        return self.cluster.documents()

    @property
    def converged(self) -> bool:
        return self.cluster.converged()


class P2PSimulationRunner:
    """Run dCSS under one workload and latency model."""

    def __init__(
        self,
        workload: Optional[WorkloadConfig] = None,
        latency: Optional[LatencyModel] = None,
        initial_text: str = "",
        observe_after_receive: bool = True,
        final_reads: bool = True,
    ) -> None:
        self.workload = workload or WorkloadConfig()
        self.latency = latency or FixedLatency()
        self.initial_text = initial_text
        self.observe_after_receive = observe_after_receive
        self.final_reads = final_reads

    def run(self) -> P2PSimulationResult:
        peers = self.workload.client_names()
        cluster = PeerCluster(
            peers,
            initial_text=self.initial_text,
            observe_after_receive=self.observe_after_receive,
        )
        generator = WorkloadGenerator(self.workload)
        timer = FifoChannelTimer()
        counter = itertools.count()
        heap: List[Tuple[float, int, Tuple]] = []

        for time, peer in generator.generation_times():
            heapq.heappush(heap, (time, next(counter), ("gen", peer)))

        def queue_new_messages(sender_hint: Optional[str], now: float) -> None:
            """Schedule deliveries for any message newly put on a channel."""
            for (sender, recipient), channel in cluster._channels.items():
                backlog = scheduled.get((sender, recipient), 0)
                for _ in range(len(channel) - backlog):
                    arrival = timer.delivery_time(
                        self.latency, sender, recipient, now
                    )
                    heapq.heappush(
                        heap,
                        (arrival, next(counter), ("recv", recipient, sender)),
                    )
                scheduled[(sender, recipient)] = len(channel)

        scheduled: Dict[Tuple[str, str], int] = {}
        now = 0.0
        delivered = 0
        while heap:
            now, _, action = heapq.heappop(heap)
            if action[0] == "gen":
                peer = action[1]
                length = len(cluster.peers[peer].document)
                spec = generator.next_spec(peer, length)
                cluster.generate(peer, spec)
            elif action[0] == "recv":
                receiver, sender = action[1], action[2]
                cluster.deliver(receiver, sender)
                delivered += 1
                scheduled[(sender, receiver)] -= 1
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown action {action!r}")
            queue_new_messages(None, now)

        if cluster.in_flight():
            raise SimulationError("messages left in flight after event loop")
        stuck = {
            name: peer.holdback_size
            for name, peer in cluster.peers.items()
            if peer.holdback_size
        }
        if stuck:
            raise SimulationError(f"stability deadlock at quiescence: {stuck}")

        if self.final_reads:
            for peer in sorted(cluster.peers):
                cluster.read(peer)

        return P2PSimulationResult(
            cluster=cluster,
            execution=cluster.execution(),
            duration=now,
            messages_delivered=delivered,
        )
