"""From recorded executions to specification verdicts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.document.elements import Element
from repro.document.list_document import ListDocument
from repro.model.abstract import AbstractExecution, abstract_from_execution
from repro.model.execution import Execution
from repro.specs.convergence import check_convergence
from repro.specs.report import CheckResult
from repro.specs.strong_list import check_strong_list
from repro.specs.weak_list import check_weak_list


@dataclass
class SpecReport:
    """All three list-specification verdicts for one execution."""

    convergence: CheckResult
    weak_list: CheckResult
    strong_list: CheckResult

    @property
    def ok_for_jupiter(self) -> bool:
        """What Theorems 6.7 + 8.2 predict for any Jupiter execution.

        Convergence and the weak list specification must hold; the strong
        list specification may or may not (Theorem 8.1 exhibits schedules
        where it fails, but many executions satisfy it anyway).
        """
        return self.convergence.ok and self.weak_list.ok

    def summary(self) -> str:
        return "\n".join(
            result.summary()
            for result in (self.convergence, self.weak_list, self.strong_list)
        )


def initial_elements_of(initial_text: str) -> Tuple[Element, ...]:
    """The shared initial-document elements for a given starting text.

    Must mirror :func:`repro.jupiter.cluster.make_cluster`'s construction
    so the spec checkers see the same element identities the replicas use.
    """
    if not initial_text:
        return ()
    return tuple(ListDocument.from_string(initial_text).read())


def check_all_specs(
    execution: Execution,
    initial_text: str = "",
    abstract: Optional[AbstractExecution] = None,
) -> SpecReport:
    """Derive the abstract execution (vis := causality) and check it."""
    if abstract is None:
        abstract = abstract_from_execution(execution)
    initial = initial_elements_of(initial_text)
    return SpecReport(
        convergence=check_convergence(abstract),
        weak_list=check_weak_list(abstract, initial_elements=initial),
        strong_list=check_strong_list(abstract, initial_elements=initial),
    )
