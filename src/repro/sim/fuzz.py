"""Randomised end-to-end fuzzing of protocols against the specifications.

One fuzz case = a random protocol configuration (client count, workload
shape, network) driven to quiescence and checked against every
specification the protocol is supposed to satisfy.  The CLI exposes this
as ``python -m repro fuzz``; the test-suite uses it for smoke coverage
and the checkers' sensitivity is exercised by including the broken
protocol (whose divergences must be *caught*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.network import FixedLatency, UniformLatency
from repro.sim.runner import SimulationRunner
from repro.sim.trace import check_all_specs
from repro.sim.workload import WorkloadConfig

#: What each protocol guarantees; the fuzzer fails a case when a
#: guaranteed property is violated, and *also* when the broken protocol
#: diverges without any checker noticing (checker sensitivity).
GUARANTEES: Dict[str, Dict[str, bool]] = {
    "css": {"convergence": True, "weak": True, "strong": False},
    "css-gc": {"convergence": True, "weak": True, "strong": False},
    "cscw": {"convergence": True, "weak": True, "strong": False},
    "classic": {"convergence": True, "weak": True, "strong": False},
    "vector": {"convergence": True, "weak": True, "strong": False},
    "rga": {"convergence": True, "weak": True, "strong": True},
    "logoot": {"convergence": True, "weak": True, "strong": True},
    "woot": {"convergence": True, "weak": True, "strong": True},
    "treedoc": {"convergence": True, "weak": True, "strong": True},
    "broken": {"convergence": False, "weak": False, "strong": False},
}


@dataclass
class FuzzCase:
    """One randomly drawn configuration."""

    protocol: str
    workload: WorkloadConfig
    latency_seed: int

    def describe(self) -> str:
        w = self.workload
        return (
            f"{self.protocol} clients={w.clients} ops={w.operations} "
            f"ins={w.insert_ratio} pos={w.positions} seed={w.seed} "
            f"lat={self.latency_seed}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz session."""

    cases: int = 0
    failures: List[str] = field(default_factory=list)
    broken_divergences_caught: int = 0
    strong_violations_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases, {len(self.failures)} failure(s), "
            f"{self.broken_divergences_caught} broken-protocol divergences "
            f"caught, {self.strong_violations_seen} Jupiter strong-list "
            "violations observed (Theorem 8.1 in the wild)"
        ]
        lines.extend(f"  FAIL {failure}" for failure in self.failures)
        return "\n".join(lines)


def draw_case(rng: random.Random, protocols: Optional[List[str]] = None) -> FuzzCase:
    pool = protocols or list(GUARANTEES)
    return FuzzCase(
        protocol=rng.choice(pool),
        workload=WorkloadConfig(
            clients=rng.randint(2, 5),
            operations=rng.randint(5, 40),
            insert_ratio=rng.choice([0.5, 0.7, 0.9, 1.0]),
            positions=rng.choice(["uniform", "append", "hotspot"]),
            seed=rng.randrange(1 << 30),
        ),
        latency_seed=rng.randrange(1 << 30),
    )


def run_case(case: FuzzCase, report: FuzzReport) -> None:
    """Execute one case and fold the verdicts into ``report``."""
    report.cases += 1
    latency = (
        FixedLatency(0.002)
        if case.latency_seed % 3 == 0
        else UniformLatency(0.01, 0.6, seed=case.latency_seed)
    )
    try:
        result = SimulationRunner(
            case.protocol, case.workload, latency
        ).run()
        spec_report = check_all_specs(result.execution)
    except Exception as error:  # noqa: BLE001 - fuzzing boundary
        report.failures.append(f"{case.describe()}: crashed: {error!r}")
        return

    guarantees = GUARANTEES[case.protocol]
    if guarantees["convergence"] and not result.converged:
        report.failures.append(f"{case.describe()}: documents diverged")
    if guarantees["convergence"] and not spec_report.convergence.ok:
        report.failures.append(f"{case.describe()}: Acp violated")
    if guarantees["weak"] and not spec_report.weak_list.ok:
        report.failures.append(f"{case.describe()}: Aweak violated")
    if guarantees["strong"] and not spec_report.strong_list.ok:
        report.failures.append(f"{case.describe()}: Astrong violated")
    if guarantees["convergence"] and not guarantees["strong"]:
        if not spec_report.strong_list.ok:
            report.strong_violations_seen += 1

    if case.protocol == "broken" and not result.converged:
        # Divergence happened: at least one checker must have noticed.
        if spec_report.convergence.ok and spec_report.weak_list.ok:
            report.failures.append(
                f"{case.describe()}: broken protocol diverged but no "
                "checker flagged it"
            )
        else:
            report.broken_divergences_caught += 1


def fuzz(
    cases: int = 25,
    seed: int = 0,
    protocols: Optional[List[str]] = None,
) -> FuzzReport:
    """Run ``cases`` random configurations; deterministic per ``seed``."""
    rng = random.Random(seed)
    report = FuzzReport()
    for _ in range(cases):
        run_case(draw_case(rng, protocols), report)
    return report
