"""Randomised end-to-end fuzzing of protocols against the specifications.

One fuzz case = a random protocol configuration (client count, workload
shape, network) driven to quiescence and checked against every
specification the protocol is supposed to satisfy.  The CLI exposes this
as ``python -m repro fuzz``; the test-suite uses it for smoke coverage
and the checkers' sensitivity is exercised by including the broken
protocol (whose divergences must be *caught*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.faults import FaultPlan
from repro.sim.network import FixedLatency, UniformLatency
from repro.sim.runner import SimulationRunner, replay
from repro.sim.trace import check_all_specs
from repro.sim.workload import WorkloadConfig

#: What each protocol guarantees; the fuzzer fails a case when a
#: guaranteed property is violated, and *also* when the broken protocol
#: diverges without any checker noticing (checker sensitivity).
GUARANTEES: Dict[str, Dict[str, bool]] = {
    "css": {"convergence": True, "weak": True, "strong": False},
    "css-gc": {"convergence": True, "weak": True, "strong": False},
    "cscw": {"convergence": True, "weak": True, "strong": False},
    "classic": {"convergence": True, "weak": True, "strong": False},
    "vector": {"convergence": True, "weak": True, "strong": False},
    "rga": {"convergence": True, "weak": True, "strong": True},
    "logoot": {"convergence": True, "weak": True, "strong": True},
    "woot": {"convergence": True, "weak": True, "strong": True},
    "treedoc": {"convergence": True, "weak": True, "strong": True},
    "broken": {"convergence": False, "weak": False, "strong": False},
}


@dataclass
class FuzzCase:
    """One randomly drawn configuration."""

    protocol: str
    workload: WorkloadConfig
    latency_seed: int

    def describe(self) -> str:
        w = self.workload
        return (
            f"{self.protocol} clients={w.clients} ops={w.operations} "
            f"ins={w.insert_ratio} pos={w.positions} seed={w.seed} "
            f"lat={self.latency_seed}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz session."""

    cases: int = 0
    failures: List[str] = field(default_factory=list)
    broken_divergences_caught: int = 0
    strong_violations_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases, {len(self.failures)} failure(s), "
            f"{self.broken_divergences_caught} broken-protocol divergences "
            f"caught, {self.strong_violations_seen} Jupiter strong-list "
            "violations observed (Theorem 8.1 in the wild)"
        ]
        lines.extend(f"  FAIL {failure}" for failure in self.failures)
        return "\n".join(lines)


def draw_case(rng: random.Random, protocols: Optional[List[str]] = None) -> FuzzCase:
    pool = protocols or list(GUARANTEES)
    return FuzzCase(
        protocol=rng.choice(pool),
        workload=WorkloadConfig(
            clients=rng.randint(2, 5),
            operations=rng.randint(5, 40),
            insert_ratio=rng.choice([0.5, 0.7, 0.9, 1.0]),
            positions=rng.choice(["uniform", "append", "hotspot"]),
            seed=rng.randrange(1 << 30),
        ),
        latency_seed=rng.randrange(1 << 30),
    )


def run_case(case: FuzzCase, report: FuzzReport) -> None:
    """Execute one case and fold the verdicts into ``report``."""
    report.cases += 1
    latency = (
        FixedLatency(0.002)
        if case.latency_seed % 3 == 0
        else UniformLatency(0.01, 0.6, seed=case.latency_seed)
    )
    try:
        result = SimulationRunner(
            case.protocol, case.workload, latency
        ).run()
        spec_report = check_all_specs(result.execution)
    except Exception as error:  # noqa: BLE001 - fuzzing boundary
        report.failures.append(f"{case.describe()}: crashed: {error!r}")
        return

    guarantees = GUARANTEES[case.protocol]
    if guarantees["convergence"] and not result.converged:
        report.failures.append(f"{case.describe()}: documents diverged")
    if guarantees["convergence"] and not spec_report.convergence.ok:
        report.failures.append(f"{case.describe()}: Acp violated")
    if guarantees["weak"] and not spec_report.weak_list.ok:
        report.failures.append(f"{case.describe()}: Aweak violated")
    if guarantees["strong"] and not spec_report.strong_list.ok:
        report.failures.append(f"{case.describe()}: Astrong violated")
    if guarantees["convergence"] and not guarantees["strong"]:
        if not spec_report.strong_list.ok:
            report.strong_violations_seen += 1

    if case.protocol == "broken" and not result.converged:
        # Divergence happened: at least one checker must have noticed.
        if spec_report.convergence.ok and spec_report.weak_list.ok:
            report.failures.append(
                f"{case.describe()}: broken protocol diverged but no "
                "checker flagged it"
            )
        else:
            report.broken_divergences_caught += 1


def fuzz(
    cases: int = 25,
    seed: int = 0,
    protocols: Optional[List[str]] = None,
) -> FuzzReport:
    """Run ``cases`` random configurations; deterministic per ``seed``."""
    rng = random.Random(seed)
    report = FuzzReport()
    for _ in range(cases):
        run_case(draw_case(rng, protocols), report)
    return report


# ----------------------------------------------------------------------
# Chaos sweeps: sampled fault plans against one protocol
# ----------------------------------------------------------------------
@dataclass
class ChaosCase:
    """Outcome of one fault-injected run."""

    seed: int
    drop: float
    duplicate: float
    delay: float
    crashes: int
    converged: bool
    #: ``None`` when the fault-free replay cross-check was skipped.
    replay_ok: Optional[bool]
    retransmissions: int
    frames_dropped: int
    duplicates_suppressed: int
    resynced_ops: int
    duration: float
    server_crashes: int = 0
    wal_appends: int = 0
    view_changes: int = 0
    failover_latencies: List[float] = field(default_factory=list)

    def row(self) -> str:
        return (
            f"{self.seed:>6} {self.drop:>5.2f} {self.duplicate:>4.2f} "
            f"{self.delay:>5.2f} {self.crashes:>7} {self.server_crashes:>6} "
            f"{str(self.converged):<10} "
            f"{'-' if self.replay_ok is None else str(self.replay_ok):<7} "
            f"{self.retransmissions:>7} {self.frames_dropped:>8} "
            f"{self.duplicates_suppressed:>7} {self.resynced_ops:>7} "
            f"{self.wal_appends:>7} {self.view_changes:>5} {self.duration:>9.2f}"
        )


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos sweep."""

    protocol: str
    cases: List[ChaosCase] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    HEADER = (
        f"{'seed':>6} {'drop':>5} {'dup':>4} {'delay':>5} {'crashes':>7} "
        f"{'scrash':>6} {'converged':<10} {'replay':<7} {'retrans':>7} "
        f"{'dropped':>8} {'dedup':>7} {'resync':>7} {'wal':>7} "
        f"{'views':>5} {'duration':>9}"
    )

    def failover_latencies(self) -> List[float]:
        """Every observed failover latency across the sweep's cases."""
        return [
            latency
            for case in self.cases
            for latency in case.failover_latencies
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def table(self) -> str:
        return "\n".join([self.HEADER, *(case.row() for case in self.cases)])

    def summary(self) -> str:
        total_retrans = sum(c.retransmissions for c in self.cases)
        total_resync = sum(c.resynced_ops for c in self.cases)
        lines = [
            f"chaos[{self.protocol}]: {len(self.cases)} fault plans, "
            f"{len(self.failures)} failure(s), {total_retrans} "
            f"retransmissions, {total_resync} resynced ops"
        ]
        lines.extend(f"  FAIL {failure}" for failure in self.failures)
        return "\n".join(lines)


def chaos_sweep(
    protocol: str = "css",
    plans: int = 10,
    seed: int = 0,
    workload: Optional[WorkloadConfig] = None,
    max_drop: float = 0.3,
    check_replay: bool = True,
    server_crash: bool = False,
    replicas: int = 0,
    primary_kills: int = 1,
) -> ChaosReport:
    """Run ``plans`` sampled fault plans against one protocol.

    Each plan draws lossy-channel probabilities plus (for CSS, the
    protocol with snapshot-based recovery) at least one crash/restore;
    with ``server_crash`` every plan additionally crashes and recovers
    the *server* from its write-ahead log.  Every run must reach
    quiescence and converge; with ``check_replay`` the recorded
    exactly-once schedule is additionally replayed on a fault-free
    cluster whose per-replica behaviours must match — for a crashed
    client that is precisely the "recovery behaves like an uncrashed
    replica" guarantee.  After a server crash the sweep also checks that
    the recovered serialisation order is the dense sequence ``1..n``.

    With ``replicas`` (a 2f+1 roster size) every plan instead replicates
    the write-ahead log and kills the *primary* ``primary_kills`` times
    mid-run (``FaultPlan.sample_failover``); a view change must elect a
    successor each time.  On top of the convergence/replay checks, the
    sweep asserts that **no acknowledged operation is ever lost**: every
    generated operation holds exactly one serial in the surviving log —
    a bijection between generations and the dense serial order.
    """
    if server_crash and protocol != "css":
        raise SimulationError(
            "--server-crash requires the css protocol: server recovery "
            "replays the write-ahead log through a CssServer"
        )
    if replicas and protocol != "css":
        raise SimulationError(
            "--kill-primary requires the css protocol: failover recovery "
            "replays the replicated write-ahead log through a CssServer"
        )
    base = workload or WorkloadConfig(clients=3, operations=18)
    report = ChaosReport(protocol=protocol)
    for index in range(plans):
        case_seed = seed + index
        config = WorkloadConfig(
            clients=base.clients,
            operations=base.operations,
            insert_ratio=base.insert_ratio,
            positions=base.positions,
            rate_per_client=base.rate_per_client,
            seed=case_seed,
        )
        duration_hint = config.operations / (
            config.clients * config.rate_per_client
        )
        if replicas:
            plan = FaultPlan.sample_failover(
                case_seed,
                config.client_names(),
                duration_hint=max(duration_hint, 1.0),
                max_drop=max_drop,
                replicas=replicas,
                kills=primary_kills,
            )
        else:
            plan = FaultPlan.sample(
                case_seed,
                config.client_names(),
                duration_hint=max(duration_hint, 1.0),
                max_drop=max_drop,
                crashes=protocol == "css",
                server_crash=server_crash,
            )
        latency = UniformLatency(0.01, 0.3, seed=case_seed)
        label = (
            f"plan seed={case_seed} drop={plan.default.drop:.2f} "
            f"crashes={len(plan.crashes)} "
            f"server-crashes={len(plan.server_crashes)}"
        )
        try:
            result = SimulationRunner(
                protocol, config, latency, faults=plan
            ).run()
        except Exception as error:  # noqa: BLE001 - chaos boundary
            report.failures.append(f"{label}: crashed: {error!r}")
            continue
        replay_ok: Optional[bool] = None
        if check_replay:
            twin = replay(protocol, result.schedule, config.client_names())
            replay_ok = (
                twin.behaviors == result.cluster.behaviors
                and twin.documents() == result.documents()
            )
        stats = result.fault_stats
        report.cases.append(
            ChaosCase(
                seed=case_seed,
                drop=plan.default.drop,
                duplicate=plan.default.duplicate,
                delay=plan.default.delay,
                crashes=len(plan.crashes),
                converged=result.converged,
                replay_ok=replay_ok,
                retransmissions=stats.retransmissions,
                frames_dropped=stats.frames_dropped,
                duplicates_suppressed=stats.duplicates_suppressed,
                resynced_ops=stats.resynced_ops,
                duration=result.duration,
                server_crashes=stats.server_crashes,
                wal_appends=stats.wal_appends,
                view_changes=stats.view_changes,
                failover_latencies=list(stats.failover_latencies),
            )
        )
        if not result.converged:
            report.failures.append(f"{label}: documents diverged")
        if replay_ok is False:
            report.failures.append(
                f"{label}: behaviours differ from fault-free replay"
            )
        if plan.server_crashes:
            oracle = result.cluster.server.oracle
            serials = [serial for _opid, serial in oracle.serial_items()]
            if serials != list(range(1, len(serials) + 1)):
                report.failures.append(
                    f"{label}: recovered serials not dense 1..n: {serials}"
                )
        if replicas:
            if stats.view_changes < len(plan.server_crashes):
                report.failures.append(
                    f"{label}: {len(plan.server_crashes)} primary kills "
                    f"but only {stats.view_changes} view changes"
                )
            oracle = result.cluster.server.oracle
            serialised = {opid for opid, _serial in oracle.serial_items()}
            generated = set(result.generated_at)
            lost = generated - serialised
            if lost:
                report.failures.append(
                    f"{label}: acknowledged operations lost to failover: "
                    f"{sorted(lost)}"
                )
            phantom = serialised - generated
            if phantom:
                report.failures.append(
                    f"{label}: serialised operations never generated: "
                    f"{sorted(phantom)}"
                )
    return report
