"""The simulation event loop.

Drives a protocol cluster through a random workload in simulated time:
operation generations fire at their Poisson arrival times, messages travel
through FIFO channels with model-supplied latencies, and every step is
appended to a :class:`~repro.model.schedule.Schedule` so the exact same
interleaving can be replayed against a different protocol (the setup of
every Theorem 7.1 equivalence experiment).

Two network regimes share the loop's skeleton:

* **Reliable** (default, ``faults=None``): the paper's exactly-once FIFO
  channels, realised by :class:`~repro.sim.network.FifoChannelTimer`.
  This path is byte-identical to the original runner — fault machinery is
  never imported, so replay determinism of existing experiments is
  untouched.
* **Faulty** (``faults=FaultPlan(...)``): frames cross a lossy network
  that drops, duplicates and delays them, and replicas may crash and
  restart.  A reliable-session layer (:mod:`repro.jupiter.session`) with
  per-channel sequence numbers, cumulative acks and backoff-driven
  retransmission rebuilds exactly-once FIFO delivery for the protocol
  machines, and crashed CSS clients recover from
  :mod:`repro.jupiter.persistence` checkpoints plus a serial-indexed
  resync.  The *server* itself may crash too: it appends every operation
  it serialises to a write-ahead log before broadcasting
  (:class:`~repro.jupiter.persistence.ServerWriteAheadLog`), and on
  restore it replays snapshot + log suffix, re-enters under a new epoch
  (its in-flight frames and acks died with the old incarnation), rebuilds
  its session endpoints from the log, and answers each client's
  :class:`~repro.jupiter.messages.ResyncRequest` from the replayed
  records — resuming serial assignment exactly where the log left off.
  The recorded :class:`Schedule` contains each protocol-level step
  exactly once, so it replays on a fault-free cluster — which is how the
  chaos harness checks Theorem 7.1 under faults.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import SERVER_ID, ReplicaId
from repro.errors import SimulationError
from repro.jupiter.cluster import Cluster, make_cluster
from repro.model.execution import Execution
from repro.model.schedule import (
    ClientReceive,
    Generate,
    Read,
    Schedule,
    ServerReceive,
    Step,
)
from repro.sim.network import FifoChannelTimer, FixedLatency, LatencyModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@dataclass
class SimulationResult:
    """Everything one simulated run produces."""

    cluster: Cluster
    execution: Execution
    schedule: Schedule
    duration: float  # simulated seconds until quiescence
    messages_delivered: int
    #: simulated time each operation was generated, by OpId.
    generated_at: Dict = field(default_factory=dict)
    #: simulated time each (opid, replica) pair saw the operation applied.
    applied_at: Dict = field(default_factory=dict)
    #: transport counters of a fault-injected run; ``None`` on the
    #: reliable path (see :class:`repro.sim.faults.FaultStats`).
    fault_stats: Optional[Any] = None

    def documents(self) -> Dict[ReplicaId, str]:
        return self.cluster.documents()

    @property
    def converged(self) -> bool:
        return len(set(self.documents().values())) == 1

    def propagation_latencies(self) -> Dict:
        """Per-operation time from generation to remote application.

        Maps each OpId to the list of (replica, delay) pairs for every
        *remote* replica that applied it — the user-facing "how stale can
        another user's screen be" metric of optimistic replication.
        """
        latencies: Dict = {}
        for (opid, replica), when in self.applied_at.items():
            start = self.generated_at.get(opid)
            if start is None:
                continue
            latencies.setdefault(opid, []).append((replica, when - start))
        return latencies


class SimulationRunner:
    """Run one protocol under one workload and latency model.

    ``faults`` installs a :class:`~repro.sim.faults.FaultPlan`; ``rto``
    overrides the retransmission policy the faulty path uses.  Both are
    ignored (and never imported) on the reliable path.
    """

    def __init__(
        self,
        protocol: str = "css",
        workload: Optional[WorkloadConfig] = None,
        latency: Optional[LatencyModel] = None,
        initial_text: str = "",
        observe_after_receive: bool = True,
        final_reads: bool = True,
        faults: Optional[Any] = None,
        rto: Optional[Any] = None,
    ) -> None:
        self.protocol = protocol
        self.workload = workload or WorkloadConfig()
        self.latency = latency or FixedLatency()
        self.initial_text = initial_text
        self.observe_after_receive = observe_after_receive
        self.final_reads = final_reads
        self.faults = faults
        self.rto = rto

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        if self.faults is not None:
            return _FaultyRun(self).run()
        clients = self.workload.client_names()
        cluster = make_cluster(
            self.protocol,
            clients,
            initial_text=self.initial_text,
            observe_after_receive=self.observe_after_receive,
        )
        generator = WorkloadGenerator(self.workload)
        timer = FifoChannelTimer()
        steps: List[Step] = []
        counter = itertools.count()
        heap: List[Tuple[float, int, Tuple]] = []

        for time, client in generator.generation_times():
            heapq.heappush(heap, (time, next(counter), ("gen", client)))

        now = 0.0
        delivered = 0
        generated_at: dict = {}
        applied_at: dict = {}
        while heap:
            now, _, action = heapq.heappop(heap)
            kind = action[0]
            if kind == "gen":
                client = action[1]
                length = len(cluster.clients[client].document)
                spec = generator.next_spec(client, length)
                cluster.generate(client, spec)
                generated_at[cluster.behaviors[client][-1].opid] = now
                steps.append(Generate(client, spec))
                arrival = timer.delivery_time(
                    self.latency, client, SERVER_ID, now
                )
                heapq.heappush(
                    heap, (arrival, next(counter), ("srv", client))
                )
            elif kind == "srv":
                client = action[1]
                before = {
                    name: cluster.pending_to_client(name) for name in clients
                }
                cluster.server_receive(client)
                steps.append(ServerReceive(client))
                for name in clients:
                    newly_queued = cluster.pending_to_client(name) - before[name]
                    for _ in range(newly_queued):
                        arrival = timer.delivery_time(
                            self.latency, SERVER_ID, name, now
                        )
                        heapq.heappush(
                            heap, (arrival, next(counter), ("cli", name))
                        )
            elif kind == "cli":
                client = action[1]
                cluster.client_receive(client)
                steps.append(ClientReceive(client))
                delivered += 1
                last = cluster.behaviors[client][-1]
                if last.action == "apply" and last.opid is not None:
                    applied_at[(last.opid, client)] = now
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown simulation action {action!r}")

        if cluster.in_flight():
            raise SimulationError(
                f"{cluster.in_flight()} messages still in flight after the "
                "event loop drained; FIFO timing is broken"
            )

        if self.final_reads:
            for replica in [*sorted(cluster.clients), SERVER_ID]:
                cluster.read(replica)
                steps.append(Read(replica))

        return SimulationResult(
            cluster=cluster,
            execution=cluster.recorder.finish(),
            schedule=Schedule(steps),
            duration=now,
            messages_delivered=delivered,
            generated_at=generated_at,
            applied_at=applied_at,
        )


class _FaultyRun:
    """One fault-injected run: lossy frames + reliable sessions + crashes.

    Physical *frames* reference protocol messages by per-channel sequence
    number; the cluster's FIFO queues double as the sender-side message
    buffers (a frame's payload is popped exactly when the session layer
    releases its sequence number, which happens strictly in order).  The
    recorded schedule therefore contains each protocol step exactly once,
    in an order a fault-free cluster can replay.
    """

    #: epsilon used when deferring a retransmission behind an in-flight ack.
    _EPS = 1e-9

    def __init__(self, runner: SimulationRunner) -> None:
        from repro.jupiter.session import (
            RetransmitPolicy,
            SessionReceiver,
            SessionSender,
        )
        from repro.sim.faults import FaultStats

        from repro.obs import get_obs

        self.runner = runner
        self.latency = runner.latency
        self._obs = get_obs()
        self.plan = runner.faults.fresh()
        self.clients = runner.workload.client_names()
        self._validate()
        self.cluster = make_cluster(
            runner.protocol,
            self.clients,
            initial_text=runner.initial_text,
            observe_after_receive=runner.observe_after_receive,
        )
        self.policy = runner.rto or RetransmitPolicy(seed=self.plan.seed)
        self.stats = FaultStats()
        self.steps: List[Step] = []
        self.counter = itertools.count()
        self.heap: List[Tuple[float, int, Tuple]] = []
        self.generated_at: dict = {}
        self.applied_at: dict = {}
        self.delivered = 0
        self.progress_time = 0.0

        channels = [(name, SERVER_ID) for name in self.clients]
        channels += [(SERVER_ID, name) for name in self.clients]
        self.senders = {ch: SessionSender(ch) for ch in channels}
        self.receivers = {ch: SessionReceiver(ch) for ch in channels}
        #: payloads consumed per server-to-client channel, in release
        #: (= serial) order — the log crash resync re-ships from.
        self.released: Dict[ReplicaId, List[Any]] = {
            name: [] for name in self.clients
        }
        #: sender epoch per replica.  A client's epoch bumps on restore so
        #: retransmission chains from a previous incarnation die off; the
        #: *server's* epoch bumps on crash, which additionally kills its
        #: in-flight frames and acks (they reference a dead incarnation —
        #: see :meth:`_on_frame`).
        self.epochs: Dict[ReplicaId, int] = {
            name: 0 for name in [*self.clients, SERVER_ID]
        }
        self.crashed: set = set()
        self.checkpoints: Dict[ReplicaId, dict] = {}
        self.wal = None
        self.group = None
        if self.plan.replicas:
            from repro.jupiter.replication import ReplicatedWal

            # Quorum-replicated durability: the logical server SERVER_ID
            # is *served by* whichever roster member is the current view's
            # primary.  Schedule/behaviour bookkeeping keeps SERVER_ID —
            # the replica group is the durability substrate underneath.
            self.group = ReplicatedWal(
                [f"{SERVER_ID}{i}" for i in range(self.plan.replicas)],
                self.clients,
                snapshot_every=self.plan.snapshot_every,
                initial_text=runner.initial_text,
            )
            #: replication traffic is FIFO per replica pair: replicas talk
            #: TCP in a deployment, so the lossy-channel adversary applies
            #: to the client-server edges only, not the replica backbone.
            self.repl_timer = FifoChannelTimer()
            #: per-origin proposal/commit cursors; their difference is the
            #: peek index of the origin's next queued-but-uncommitted op.
            self.proposed_from: Dict[ReplicaId, int] = {
                name: 0 for name in self.clients
            }
            self.popped_from: Dict[ReplicaId, int] = {
                name: 0 for name in self.clients
            }
            self.commits_done = 0
            self._failover_from: Optional[float] = None
            self._failover_target = 0
            self._outage_replica: Dict[float, ReplicaId] = {}
        elif self.plan.wal_enabled:
            from repro.jupiter.persistence import ServerWriteAheadLog

            self.wal = ServerWriteAheadLog(
                SERVER_ID,
                self.clients,
                snapshot_every=self.plan.snapshot_every,
                initial_text=runner.initial_text,
            )
        self.applies_since: Dict[ReplicaId, int] = {}
        self.deferred_gens: Dict[ReplicaId, int] = {
            name: 0 for name in self.clients
        }
        #: FIFO timer reused for the ack path: cumulative acks arrive in
        #: order, and its per-channel last-delivery state lets the
        #: retransmission timer wait out an ack already in flight.
        self.ack_timer = FifoChannelTimer()
        self.pending_gens = 0
        self.pending_lifecycle = 0

    def _validate(self) -> None:
        if self.plan.crashes and self.runner.protocol != "css":
            raise SimulationError(
                "crash/restore requires the css protocol: recovery restores "
                "repro.jupiter.persistence snapshots, which exist for CSS "
                "replicas only (use FaultPlan.without_crashes() otherwise)"
            )
        if self.plan.wal_enabled and self.runner.protocol != "css":
            raise SimulationError(
                "the server write-ahead log (and therefore server "
                "crash/restore) requires the css protocol: recovery "
                "replays the log through a CssServer"
            )
        roster = set(self.clients)
        for crash in self.plan.crashes:
            if crash.client not in roster:
                raise SimulationError(
                    f"fault plan crashes unknown client {crash.client!r}"
                )

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        generator = WorkloadGenerator(self.runner.workload)
        for time, client in generator.generation_times():
            self._push(time, ("gen", client))
            self.pending_gens += 1
        for crash in self.plan.crashes:
            self._push(crash.at, ("crash", crash.client))
            self._push(crash.restore_at, ("restore", crash.client))
            self.pending_lifecycle += 2
        for crash in self.plan.server_crashes:
            self._push(crash.at, ("scrash", crash))
            self._push(crash.restore_at, ("srestore", crash))
            self.pending_lifecycle += 2
        for client in self.plan.crashed_clients():
            self._checkpoint(client)

        now = 0.0
        while self.heap:
            now, _, event = heapq.heappop(self.heap)
            kind = event[0]
            if kind == "gen":
                self._on_generate(event[1], generator, now)
            elif kind == "frame":
                self._on_frame(event[1], event[2], event[3], event[4], now)
            elif kind == "ack":
                self._on_ack(event[1], event[2], event[3], event[4], now)
            elif kind == "rto":
                self._on_rto(event[1], event[2], event[3], event[4], event[5], now)
            elif kind == "crash":
                self._on_crash(event[1], now)
            elif kind == "restore":
                self._on_restore(event[1], now)
            elif kind == "scrash":
                self._on_server_crash(event[1], now)
            elif kind == "srestore":
                self._on_server_restore(event[1], now)
            elif kind == "repl":
                self._on_repl(event[1], event[2], event[3], now)
            elif kind == "rack":
                self._on_repl_ack(event[1], event[2], event[3], now)
            elif kind == "svw":
                self._on_start_view(event[1], event[2], event[3], now)
            elif kind == "sview":
                self._on_view_change(now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown simulation event {event!r}")
            if self._quiescent():
                break

        if self.cluster.in_flight() or not self._quiescent():
            raise SimulationError(
                f"{self.cluster.in_flight()} messages still in flight after "
                "the faulty event loop drained; the session layer failed to "
                "reconstruct reliable delivery"
            )

        if self.runner.final_reads:
            for replica in [*sorted(self.cluster.clients), SERVER_ID]:
                self.cluster.read(replica)
                self.steps.append(Read(replica))

        if self.wal is not None:
            self.stats.wal_appends = self.wal.appends
            self.stats.wal_compactions = self.wal.compactions
            self.stats.wal_records_truncated = self.wal.records_truncated
        if self.group is not None:
            log = self.group.primary_log
            self.stats.wal_appends = log.appends
            self.stats.wal_compactions = log.compactions
            self.stats.wal_records_truncated = log.records_truncated
            self.stats.view_changes = self.group.view_changes
            self.stats.repl_stale_rejected = self.group.stale_rejected
            if self.commits_done != self.group.committed:
                raise SimulationError(
                    f"run ended with {self.group.committed} committed "
                    f"serials but only {self.commits_done} delivered to "
                    "the server"
                )

        return SimulationResult(
            cluster=self.cluster,
            execution=self.cluster.recorder.finish(),
            schedule=Schedule(self.steps),
            duration=self.progress_time,
            messages_delivered=self.delivered,
            generated_at=self.generated_at,
            applied_at=self.applied_at,
            fault_stats=self.stats,
        )

    def _quiescent(self) -> bool:
        """All traffic delivered, acknowledged, and no lifecycle pending.

        Pending retransmission timers for acknowledged frames are *not*
        progress — they fire as no-ops — so quiescence is decided from
        protocol and session state, not from heap emptiness.
        """
        if self.pending_gens or self.pending_lifecycle:
            return False
        if self.cluster.in_flight():
            return False
        return all(s.outstanding == 0 for s in self.senders.values())

    def _push(self, time: float, event: Tuple) -> None:
        heapq.heappush(self.heap, (time, next(self.counter), event))

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_generate(self, client: ReplicaId, generator, now: float) -> None:
        if client in self.crashed:
            # The user cannot type into a crashed editor: the keystroke
            # happens once the client is back.
            self.deferred_gens[client] += 1
            self.stats.deferred_generations += 1
            return
        self.pending_gens -= 1
        self.progress_time = now
        length = len(self.cluster.clients[client].document)
        spec = generator.next_spec(client, length)
        self.cluster.generate(client, spec)
        self.generated_at[self.cluster.behaviors[client][-1].opid] = now
        self.steps.append(Generate(client, spec))
        seq = self.senders[(client, SERVER_ID)].send()
        self._transmit((client, SERVER_ID), seq, now, attempt=1)
        if client in self.checkpoints:
            # Write-ahead persistence: a generated operation survives any
            # later crash, so recovery never loses serialised history.
            self._checkpoint(client)

    def _on_frame(
        self,
        sender: ReplicaId,
        recipient: ReplicaId,
        seq: int,
        sent_epoch: int,
        now: float,
    ) -> None:
        if sender == SERVER_ID and sent_epoch != self.epochs[SERVER_ID]:
            # An in-flight frame from a dead server incarnation: the crash
            # loses it (ISSUE semantics).  Client-origin frames carry no
            # such fate — a restored client *resumes* its sender state, so
            # its old frames are ordinary duplicates, not stale ones.
            self.stats.frames_lost_in_flight += 1
            return
        if recipient in self.crashed:
            self.stats.frames_lost_to_crash += 1
            return
        receiver = self.receivers[(sender, recipient)]
        duplicates = receiver.duplicates
        buffered = receiver.buffered
        released = receiver.receive(seq)
        self.stats.duplicates_suppressed += receiver.duplicates - duplicates
        self.stats.out_of_order_buffered += receiver.buffered - buffered
        for _ in range(released):
            if recipient != SERVER_ID:
                self._deliver_to_client(recipient, now)
            elif self.group is not None:
                self._propose_from(sender, now)
            else:
                self._deliver_to_server(sender, now)
        # Always (re-)acknowledge cumulatively — a duplicate frame means a
        # previous ack was probably lost.  With a replica group the
        # server's ack is gated on the quorum commit floor: an op is only
        # acknowledged once it can no longer be lost to a primary crash.
        ack_value = receiver.cumulative_ack
        if self.group is not None and recipient == SERVER_ID:
            ack_value = self.group.committed_ack(sender)
        self._send_ack((sender, recipient), ack_value, now)

    def _deliver_to_server(self, client: ReplicaId, now: float) -> None:
        self.progress_time = now
        before = {
            name: self.cluster.pending_to_client(name) for name in self.clients
        }
        message = self.cluster.server_receive(client)
        self.steps.append(ServerReceive(client))
        if self.wal is not None:
            # Write-ahead: the serialised operation hits the log before any
            # broadcast frame hits the wire (the _transmit calls below), so
            # a crash can never lose an operation the world has seen.
            self.wal.append(
                self.cluster.server.oracle.last_serial,
                client,
                message.payload.operation,
            )
            if self.wal.should_compact():
                self.wal.compact(
                    self.cluster.server, retain_after=self._retain_floor()
                )
        elif self.group is not None:
            # Replicated mode: the record was logged at proposal time and
            # this delivery *is* the commit.  Compaction clamps to the
            # commit floor inside the group.
            if self.group.primary_log.should_compact():
                self.group.compact(
                    self.cluster.server, retain_after=self._retain_floor()
                )
        for name in self.clients:
            newly_queued = self.cluster.pending_to_client(name) - before[name]
            for _ in range(newly_queued):
                seq = self.senders[(SERVER_ID, name)].send()
                self._transmit((SERVER_ID, name), seq, now, attempt=1)

    def _deliver_to_client(self, client: ReplicaId, now: float) -> None:
        self.progress_time = now
        message = self.cluster.client_receive(client)
        self.steps.append(ClientReceive(client))
        self.delivered += 1
        self.released[client].append(message.payload)
        last = self.cluster.behaviors[client][-1]
        if last.action == "apply" and last.opid is not None:
            self.applied_at[(last.opid, client)] = now
        if client in self.checkpoints:
            self.applies_since[client] = self.applies_since.get(client, 0) + 1
            if self.applies_since[client] >= self.plan.snapshot_every:
                self._checkpoint(client)

    # ------------------------------------------------------------------
    # Replicated durability: propose -> quorum certify -> commit/deliver
    # ------------------------------------------------------------------
    def _propose_from(self, origin: ReplicaId, now: float) -> None:
        """Assign a serial and ship the record to the backup quorum.

        The payload stays *queued* on the cluster's client-to-server
        channel — :meth:`_commit_pending` pops it only once the record is
        quorum-certified, so the recorded schedule (and the server's
        state, behaviours and broadcasts) never contains an operation a
        primary crash could still lose.
        """
        group = self.group
        index = self.proposed_from[origin] - self.popped_from[origin]
        payload = self.cluster.queued_payload_from(origin, index)
        record = group.propose(origin, payload.operation)
        self.proposed_from[origin] += 1
        primary = group.primary
        for rid in group.alive_replicas():
            if rid == primary:
                continue
            arrival = self.repl_timer.delivery_time(
                self.latency, primary, rid, now
            )
            self._push(arrival, ("repl", rid, record, group.epoch))

    def _on_repl(self, replica: ReplicaId, record, epoch: int, now: float) -> None:
        """One shipped record arrives at a backup; ack on durable append."""
        group = self.group
        if not group.backup_append(replica, record, epoch):
            return  # stale epoch or dead backup: no ack
        arrival = self.repl_timer.delivery_time(
            self.latency, replica, group.primary, now
        )
        serial = group.logs[replica].last_serial
        self._push(arrival, ("rack", replica, serial, epoch))

    def _on_repl_ack(
        self, replica: ReplicaId, serial: int, epoch: int, now: float
    ) -> None:
        if SERVER_ID in self.crashed:
            # The primary that would process this ack is dead.  The
            # backup's durable append stands regardless — the election
            # reads it straight from the log.
            self.stats.frames_lost_to_crash += 1
            return
        if self.group.acknowledge(replica, serial, epoch):
            self._commit_pending(now)
        self._finish_failover(now)

    def _commit_pending(self, now: float) -> None:
        """Deliver every newly quorum-certified serial to the server.

        Commit order is serial order; each commit pops the origin's
        queued payload (per-origin serial order equals queue order, so
        the front is always the right message), broadcasts the result,
        and releases the origin's gated session acknowledgement.
        """
        group = self.group
        while self.commits_done < group.committed:
            serial = self.commits_done + 1
            record = group.primary_log.record_at(serial)
            if record is None:
                raise SimulationError(
                    f"committed serial {serial} was compacted out of the "
                    "primary log before delivery; the commit-floor clamp "
                    "is broken"
                )
            origin = record["origin"]
            self._deliver_to_server(origin, now)
            assigned = self.cluster.server.oracle.last_serial
            if assigned != serial:
                raise SimulationError(
                    f"commit of serial {serial} was assigned {assigned}; "
                    "commit order diverges from proposal order"
                )
            self.commits_done += 1
            self.popped_from[origin] += 1
            self._send_ack(
                (origin, SERVER_ID), group.committed_ack(origin), now
            )

    def _on_view_change(self, now: float) -> None:
        """The failure detector fired: the next view's primary takes over.

        Deterministic VSR-style takeover: elect the best log among the
        surviving quorum, rebuild the logical server from its *committed*
        prefix (never from the dead process's memory), resume every
        client session from log-derived cursors, and install the adopted
        log on the surviving backups (start-view).  The adopted
        uncommitted suffix re-certifies under the new epoch via the
        install acks; anything only the dead primary held is gone — and
        was never acknowledged, because acks are gated on the floor.
        """
        from repro.jupiter.session import SessionReceiver, SessionSender

        self.pending_lifecycle -= 1
        self.progress_time = now
        group = self.group
        change = group.view_change()
        self._failover_target = change.adopted_last
        committed_log = group.committed_log()
        # The logical serialisation authority keeps its identity across
        # views; the roster member currently serving it is group.primary.
        committed_log.replica_id = SERVER_ID
        recovered = committed_log.recover()
        # The simulator can do what a deployment cannot: compare the
        # log-rebuilt server against the live committed state.
        if recovered.space.signature() != self.cluster.server.space.signature():
            raise SimulationError(
                "failover rebuilt a different state-space than the served "
                "committed prefix; the adopted log lost or reordered "
                "quorum-certified history"
            )
        serials = [s for _opid, s in recovered.oracle.serial_items()]
        if serials != list(range(1, self.commits_done + 1)):
            raise SimulationError(
                "failover-recovered serials are not the dense sequence "
                f"1..{self.commits_done}: {serials}"
            )
        self.cluster.replace_server(recovered)

        counts = group.primary_log.origin_counts()
        committed_counts = committed_log.origin_counts()
        for client in self.clients:
            # Client-to-server half: the old primary's receivers died
            # with it, but the adopted log knows how many frames each
            # origin had consumed (one proposed record each) — including
            # the uncommitted suffix, whose payloads are still queued.
            receiver = SessionReceiver((client, SERVER_ID))
            receiver.fast_forward(counts.get(client, 0))
            self.receivers[(client, SERVER_ID)] = receiver
            self.proposed_from[client] = counts.get(client, 0)
            self.popped_from[client] = committed_counts.get(client, 0)
            # Broadcast resync: the committed log must reproduce the
            # volatile send buffer exactly.
            delivered = len(self.released[client])
            payloads = committed_log.broadcasts_for(recovered, delivered)
            queued = self.cluster.queued_payloads_to(client)
            if tuple(payloads) != queued:
                raise SimulationError(
                    f"failover resync for {client} rebuilt {len(payloads)} "
                    f"broadcasts but the send buffer holds {len(queued)}; "
                    "the adopted log diverges from what was shipped"
                )
            self.stats.server_resynced_ops += len(payloads)
            # Server-to-client half: seq equals serial, so the new
            # primary resumes numbering after the last commit and
            # retransmits everything past the client's cursor under the
            # new epoch (bumped at crash time).
            sender = SessionSender((SERVER_ID, client))
            sender.restore(
                {"next_seq": self.commits_done + 1, "acked": delivered}
            )
            self.senders[(SERVER_ID, client)] = sender
            for seq in sender.unacked():
                self.stats.retransmissions += 1
                self._obs.session_retransmits.inc()
                self._transmit((SERVER_ID, client), seq, now, attempt=1)

        self.crashed.discard(SERVER_ID)
        payload = group.start_view_payload()
        for rid in group.alive_replicas():
            if rid == group.primary:
                continue
            arrival = self.repl_timer.delivery_time(
                self.latency, group.primary, rid, now
            )
            self._push(arrival, ("svw", rid, payload, group.epoch))
        self._finish_failover(now)

    def _on_start_view(
        self, replica: ReplicaId, payload, epoch: int, now: float
    ) -> None:
        """A backup installs the new view's adopted log and acks it."""
        group = self.group
        serial = group.install_view(replica, payload, epoch)
        if serial is None:
            return
        arrival = self.repl_timer.delivery_time(
            self.latency, replica, group.primary, now
        )
        self._push(arrival, ("rack", replica, serial, epoch))

    def _finish_failover(self, now: float) -> None:
        """Observe failover latency once the new view is fully certified."""
        if self._failover_from is None or SERVER_ID in self.crashed:
            return
        if self.group.committed >= self._failover_target:
            latency = now - self._failover_from
            self.stats.failover_latencies.append(latency)
            self._obs.failover_latency.observe(latency)
            self._obs.trace(
                "repl.failover", latency=latency, view=self.group.view
            )
            self._failover_from = None

    def _on_ack(
        self,
        sender: ReplicaId,
        recipient: ReplicaId,
        cumulative: int,
        sent_epoch: int,
        now: float,
    ) -> None:
        # ``sender``/``recipient`` name the *data* direction; the ack was
        # emitted by ``recipient`` and arrives at ``sender``.
        if recipient == SERVER_ID and sent_epoch != self.epochs[SERVER_ID]:
            self.stats.frames_lost_in_flight += 1
            return  # an ack from a dead server incarnation
        if sender in self.crashed:
            self.stats.frames_lost_to_crash += 1
            return
        self.senders[(sender, recipient)].ack(cumulative)

    def _on_rto(
        self,
        sender: ReplicaId,
        recipient: ReplicaId,
        seq: int,
        attempt: int,
        epoch: int,
        now: float,
    ) -> None:
        if epoch != self.epochs.get(sender, 0):
            return  # a previous incarnation's timer; recovery rearmed it
        if sender in self.crashed:
            return  # rearmed wholesale on restore
        session = self.senders[(sender, recipient)]
        if seq <= session.acked:
            return  # acknowledged in the meantime: timer is a no-op
        # An ack already in flight on the reverse path may cover this
        # frame; wait it out before burning a retransmission (this is the
        # FifoChannelTimer last-delivery reuse).
        reverse_arrival = self.ack_timer.last_delivery(recipient, sender)
        if reverse_arrival is not None and reverse_arrival > now:
            self._push(
                reverse_arrival + self._EPS,
                ("rto", sender, recipient, seq, attempt, epoch),
            )
            return
        self.stats.retransmissions += 1
        self._obs.session_retransmits.inc()
        self._transmit((sender, recipient), seq, now, attempt=attempt + 1)

    def _on_crash(self, client: ReplicaId, now: float) -> None:
        self.pending_lifecycle -= 1
        self.crashed.add(client)
        self.stats.crashes += 1

    def _on_restore(self, client: ReplicaId, now: float) -> None:
        from repro.jupiter.messages import ResyncRequest
        from repro.jupiter.persistence import restore_checkpoint
        from repro.jupiter.session import resync_payloads

        self.pending_lifecycle -= 1
        self.progress_time = now
        checkpoint = self.checkpoints[client]
        restored = restore_checkpoint(checkpoint)
        self.cluster.replace_client(
            client, restored, behaviors_keep=checkpoint["behaviors_len"]
        )
        # Control-plane resync: re-ship everything the client had consumed
        # after the checkpoint (serial-ordered; see ResyncRequest).
        request = ResyncRequest(client=client, delivered=checkpoint["delivered"])
        response = resync_payloads(request, self.released[client])
        for payload in response.payloads:
            self.cluster.resync_deliver(client, payload)
        self.stats.resynced_ops += len(response.payloads)
        # Receiver half: the reorder buffer was volatile; unreleased frames
        # are still unacknowledged at the server and will be retransmitted.
        self.receivers[(SERVER_ID, client)].drop_reorder_buffer()
        # Sender half: roll back to the checkpointed sequence state and
        # rearm retransmission for everything unacknowledged.
        sender = self.senders[(client, SERVER_ID)]
        sender.restore(checkpoint["session"])
        self.epochs[client] += 1
        for seq in sender.unacked():
            self.stats.retransmissions += 1
            self._obs.session_retransmits.inc()
            self._transmit((client, SERVER_ID), seq, now, attempt=1)
        self.crashed.discard(client)
        self.stats.restores += 1
        # Keystrokes queued while the editor was down happen now.
        while self.deferred_gens[client]:
            self.deferred_gens[client] -= 1
            self._push(now + self._EPS, ("gen", client))
        # The recovered state is durable: checkpoint it so a later crash
        # does not redo this resync.
        self._checkpoint(client)

    def _on_server_crash(self, spec, now: float) -> None:
        self.pending_lifecycle -= 1
        if self.group is not None:
            group = self.group
            target = spec.replica
            rid = (
                group.roster[target]
                if isinstance(target, int)
                else group.primary
            )
            self._outage_replica[spec.at] = rid
            was_primary = group.crash(rid)
            self.stats.server_crashes += 1
            if was_primary:
                # The serving endpoint is gone until the failure detector
                # fires and the successor takes over: client frames hit
                # the crash check, and the dead incarnation's in-flight
                # frames/acks/timers die with the epoch bump.
                self.crashed.add(SERVER_ID)
                self.epochs[SERVER_ID] += 1
                if self._failover_from is None:
                    self._failover_from = now
                self._push(now + self.plan.failover_delay, ("sview",))
                self.pending_lifecycle += 1
            return
        self.crashed.add(SERVER_ID)
        # The server's epoch bumps at *crash* time (a client's bumps at
        # restore): every frame and ack the dead incarnation still has in
        # flight is dropped on arrival (_on_frame/_on_ack), and its armed
        # retransmission timers die (the epoch test in _on_rto).  Client
        # retransmission timers keep firing into the void — their frames
        # hit the crash check until the server is back.
        self.epochs[SERVER_ID] += 1
        self.stats.server_crashes += 1

    def _on_server_restore(self, spec, now: float) -> None:
        from repro.jupiter.messages import ResyncRequest
        from repro.jupiter.session import SessionReceiver, SessionSender

        self.pending_lifecycle -= 1
        self.progress_time = now
        if self.group is not None:
            # A killed replica rejoins as a *backup* via state transfer
            # from the current primary, whatever role it held before; its
            # durable copy immediately counts toward future quorums.
            rid = self._outage_replica.pop(spec.at)
            self.group.restore(rid)
            self.stats.server_restores += 1
            if SERVER_ID not in self.crashed:
                newly = self.group.acknowledge(
                    rid, self.group.logs[rid].last_serial, self.group.epoch
                )
                if newly:
                    self._commit_pending(now)
                self._finish_failover(now)
            return
        crashed_server = self.cluster.server
        recovered = self.wal.recover()
        # The simulator can do what a deployment cannot: compare against
        # the crashed process's in-memory state.  The rebuilt state-space
        # must be structurally identical.
        if recovered.space.signature() != crashed_server.space.signature():
            raise SimulationError(
                "WAL recovery rebuilt a different state-space than the "
                "crashed server held; the log lost or reordered history"
            )
        serials = [serial for _opid, serial in recovered.oracle.serial_items()]
        if serials != list(range(1, self.wal.last_serial + 1)):
            raise SimulationError(
                "recovered server's serials are not the dense sequence "
                f"1..{self.wal.last_serial}: {serials}"
            )
        self.cluster.replace_server(recovered)
        self.crashed.discard(SERVER_ID)
        self.stats.server_restores += 1

        counts = self.wal.origin_counts()
        total = self.wal.last_serial
        for client in self.clients:
            # Client-to-server half: the receiver state was volatile, but
            # the log knows how many frames each origin had consumed (one
            # serialised operation each).  A fresh receiver fast-forwards
            # to that cursor; parked out-of-order frames died with the
            # process and the clients' senders retransmit them.
            receiver = SessionReceiver((client, SERVER_ID))
            receiver.fast_forward(counts.get(client, 0))
            self.receivers[(client, SERVER_ID)] = receiver
            # Control plane: the client reports its live consumption
            # cursor and the server answers from the replayed log.  The
            # rebuilt broadcasts must reproduce the volatile send buffer
            # exactly — same payloads, same serial order — so delivery
            # resumes from the original (identity-carrying) messages.
            request = ResyncRequest(
                client=client, delivered=len(self.released[client])
            )
            payloads = self.wal.broadcasts_for(recovered, request.delivered)
            queued = self.cluster.queued_payloads_to(client)
            if tuple(payloads) != queued:
                raise SimulationError(
                    f"WAL resync for {client} rebuilt {len(payloads)} "
                    f"broadcasts but the send buffer holds {len(queued)}; "
                    "the log diverges from what the server had shipped"
                )
            self.stats.server_resynced_ops += len(payloads)
            # Server-to-client half: frame seq equals serial on this
            # channel, so the sender resumes numbering at total + 1 with
            # everything past the client's cursor unacknowledged — and
            # retransmits it under the new epoch.
            sender = SessionSender((SERVER_ID, client))
            sender.restore({"next_seq": total + 1, "acked": request.delivered})
            self.senders[(SERVER_ID, client)] = sender
            for seq in sender.unacked():
                self.stats.retransmissions += 1
                self._obs.session_retransmits.inc()
                self._transmit((SERVER_ID, client), seq, now, attempt=1)

        # The recovered state is durable: compact so a later crash replays
        # from this snapshot instead of the whole history.
        self.wal.compact(recovered, retain_after=self._retain_floor())

    def _retain_floor(self) -> int:
        """Low-water mark for WAL compaction.

        :meth:`ServerWriteAheadLog.broadcasts_for` rebuilds re-shipments
        from *records*, so compaction must keep every record some client
        may still need: anything past the minimum consumption cursor.
        The cursors only grow, so records at or below the floor can never
        be requested by a future recovery.
        """
        log = self.group.primary_log if self.group is not None else self.wal
        return min(
            [log.last_serial]
            + [len(self.released[client]) for client in self.clients]
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _transmit(
        self,
        channel: Tuple[ReplicaId, ReplicaId],
        seq: int,
        now: float,
        attempt: int,
    ) -> None:
        """Put one frame on the lossy wire and arm its retransmit timer."""
        sender, recipient = channel
        decision = self.plan.decide(channel, now)
        self.stats.frames_sent += 1
        self.stats.frames_dropped += decision.dropped
        self.stats.frames_duplicated += decision.duplicated
        epoch = self.epochs.get(sender, 0)
        for extra in decision.extra_delays:
            arrival = now + self.latency.delay(sender, recipient, now) + extra
            self._push(arrival, ("frame", sender, recipient, seq, epoch))
        deadline = now + self.policy.timeout(attempt)
        self._push(deadline, ("rto", sender, recipient, seq, attempt, epoch))

    def _send_ack(
        self,
        channel: Tuple[ReplicaId, ReplicaId],
        cumulative: int,
        now: float,
    ) -> None:
        """Send a cumulative ack back across the lossy reverse channel."""
        sender, recipient = channel  # data direction; the ack flows back
        decision = self.plan.decide((recipient, sender), now)
        self.stats.acks_sent += 1
        self.stats.acks_dropped += decision.dropped
        epoch = self.epochs.get(recipient, 0)  # the ack's actual emitter
        for extra in decision.extra_delays:
            arrival = (
                self.ack_timer.delivery_time(self.latency, recipient, sender, now)
                + extra
            )
            self._push(arrival, ("ack", sender, recipient, cumulative, epoch))

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint(self, client: ReplicaId) -> None:
        from repro.jupiter.persistence import checkpoint_client

        # The resync cursor is the number of payloads the *replica* has
        # consumed, not the session receiver's released total: a checkpoint
        # cut mid-release-burst (the receiver releases a whole in-order run
        # before the event loop pops it message by message) would otherwise
        # claim messages the snapshot never integrated, and recovery would
        # skip them.
        self.checkpoints[client] = checkpoint_client(
            self.cluster.clients[client],
            session=self.senders[(client, SERVER_ID)].state(),
            behaviors_len=len(self.cluster.behaviors[client]),
            delivered=len(self.released[client]),
        )
        self.applies_since[client] = 0
        self.stats.checkpoints += 1


def replay(
    protocol: str,
    schedule: Schedule,
    clients: Sequence[ReplicaId],
    initial_text: str = "",
    observe_after_receive: bool = True,
) -> Cluster:
    """Run ``schedule`` (typically recorded by a runner) on ``protocol``."""
    cluster = make_cluster(
        protocol,
        clients,
        initial_text=initial_text,
        observe_after_receive=observe_after_receive,
    )
    cluster.run(schedule)
    return cluster
