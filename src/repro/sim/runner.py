"""The simulation event loop.

Drives a protocol cluster through a random workload in simulated time:
operation generations fire at their Poisson arrival times, messages travel
through FIFO channels with model-supplied latencies, and every step is
appended to a :class:`~repro.model.schedule.Schedule` so the exact same
interleaving can be replayed against a different protocol (the setup of
every Theorem 7.1 equivalence experiment).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.ids import SERVER_ID, ReplicaId
from repro.errors import SimulationError
from repro.jupiter.cluster import Cluster, make_cluster
from repro.model.execution import Execution
from repro.model.schedule import (
    ClientReceive,
    Generate,
    Read,
    Schedule,
    ServerReceive,
    Step,
)
from repro.sim.network import FifoChannelTimer, FixedLatency, LatencyModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@dataclass
class SimulationResult:
    """Everything one simulated run produces."""

    cluster: Cluster
    execution: Execution
    schedule: Schedule
    duration: float  # simulated seconds until quiescence
    messages_delivered: int
    #: simulated time each operation was generated, by OpId.
    generated_at: Dict = None  # type: ignore[assignment]
    #: simulated time each (opid, replica) pair saw the operation applied.
    applied_at: Dict = None  # type: ignore[assignment]

    def documents(self) -> Dict[ReplicaId, str]:
        return self.cluster.documents()

    @property
    def converged(self) -> bool:
        return len(set(self.documents().values())) == 1

    def propagation_latencies(self) -> Dict:
        """Per-operation time from generation to remote application.

        Maps each OpId to the list of (replica, delay) pairs for every
        *remote* replica that applied it — the user-facing "how stale can
        another user's screen be" metric of optimistic replication.
        """
        latencies: Dict = {}
        for (opid, replica), when in (self.applied_at or {}).items():
            start = (self.generated_at or {}).get(opid)
            if start is None:
                continue
            latencies.setdefault(opid, []).append((replica, when - start))
        return latencies


class SimulationRunner:
    """Run one protocol under one workload and latency model."""

    def __init__(
        self,
        protocol: str = "css",
        workload: Optional[WorkloadConfig] = None,
        latency: Optional[LatencyModel] = None,
        initial_text: str = "",
        observe_after_receive: bool = True,
        final_reads: bool = True,
    ) -> None:
        self.protocol = protocol
        self.workload = workload or WorkloadConfig()
        self.latency = latency or FixedLatency()
        self.initial_text = initial_text
        self.observe_after_receive = observe_after_receive
        self.final_reads = final_reads

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        clients = self.workload.client_names()
        cluster = make_cluster(
            self.protocol,
            clients,
            initial_text=self.initial_text,
            observe_after_receive=self.observe_after_receive,
        )
        generator = WorkloadGenerator(self.workload)
        timer = FifoChannelTimer()
        steps: List[Step] = []
        counter = itertools.count()
        heap: List[Tuple[float, int, Tuple]] = []

        for time, client in generator.generation_times():
            heapq.heappush(heap, (time, next(counter), ("gen", client)))

        now = 0.0
        delivered = 0
        generated_at: dict = {}
        applied_at: dict = {}
        while heap:
            now, _, action = heapq.heappop(heap)
            kind = action[0]
            if kind == "gen":
                client = action[1]
                length = len(cluster.clients[client].document)
                spec = generator.next_spec(client, length)
                cluster.generate(client, spec)
                generated_at[cluster.behaviors[client][-1].opid] = now
                steps.append(Generate(client, spec))
                arrival = timer.delivery_time(
                    self.latency, client, SERVER_ID, now
                )
                heapq.heappush(
                    heap, (arrival, next(counter), ("srv", client))
                )
            elif kind == "srv":
                client = action[1]
                before = {
                    name: cluster.pending_to_client(name) for name in clients
                }
                cluster.server_receive(client)
                steps.append(ServerReceive(client))
                for name in clients:
                    newly_queued = cluster.pending_to_client(name) - before[name]
                    for _ in range(newly_queued):
                        arrival = timer.delivery_time(
                            self.latency, SERVER_ID, name, now
                        )
                        heapq.heappush(
                            heap, (arrival, next(counter), ("cli", name))
                        )
            elif kind == "cli":
                client = action[1]
                cluster.client_receive(client)
                steps.append(ClientReceive(client))
                delivered += 1
                last = cluster.behaviors[client][-1]
                if last.action == "apply" and last.opid is not None:
                    applied_at[(last.opid, client)] = now
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown simulation action {action!r}")

        if cluster.in_flight():
            raise SimulationError(
                f"{cluster.in_flight()} messages still in flight after the "
                "event loop drained; FIFO timing is broken"
            )

        if self.final_reads:
            for replica in [*sorted(cluster.clients), SERVER_ID]:
                cluster.read(replica)
                steps.append(Read(replica))

        return SimulationResult(
            cluster=cluster,
            execution=cluster.recorder.finish(),
            schedule=Schedule(steps),
            duration=now,
            messages_delivered=delivered,
            generated_at=generated_at,
            applied_at=applied_at,
        )


def replay(
    protocol: str,
    schedule: Schedule,
    clients: Sequence[ReplicaId],
    initial_text: str = "",
    observe_after_receive: bool = True,
) -> Cluster:
    """Run ``schedule`` (typically recorded by a runner) on ``protocol``."""
    cluster = make_cluster(
        protocol,
        clients,
        initial_text=initial_text,
        observe_after_receive=observe_after_receive,
    )
    cluster.run(schedule)
    return cluster
