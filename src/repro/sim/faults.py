"""Deterministic fault injection for the simulated network.

The paper's correctness story (convergence, Theorem 6.7; behavioural
equivalence, Theorem 7.1) assumes reliable exactly-once FIFO channels
(Section 4.4).  A production transport has to *earn* that assumption over
a network that drops, duplicates and reorders packets and over clients
that crash and restart.  This module supplies the adversary:

* :class:`ChannelFaults` — per-directed-channel drop / duplicate /
  extra-delay probabilities;
* :class:`CrashSpec` — a crash/restore window for one client;
* :class:`FaultPlan` — a seeded, deterministic composition of the above.
  Every random decision is drawn from one dedicated RNG in event order,
  so the same plan replayed against the same workload produces the same
  run, byte for byte (the property the chaos harness and the ``repro
  chaos`` CLI rely on).

The plan is *advisory*: the event loop in
:class:`~repro.sim.runner.SimulationRunner` asks :meth:`FaultPlan.decide`
once per physical transmission and schedules the surviving copies.  When
no plan is installed the runner never imports this machinery — fault
injection is zero-cost when disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.ids import ReplicaId
from repro.errors import SimulationError

#: A directed channel, e.g. ``("c1", "s")`` or ``("s", "c2")``.
Channel = Tuple[ReplicaId, ReplicaId]

#: Sanity ceiling: a channel that drops *every* packet can never be made
#: reliable, so plans refuse drop probabilities at or above this bound.
MAX_DROP = 0.95


@dataclass(frozen=True)
class ChannelFaults:
    """Fault probabilities for one directed channel.

    ``drop``/``duplicate``/``delay`` are per-transmission probabilities;
    a delayed copy gets an extra latency drawn uniformly from
    ``delay_range`` on top of the latency model, which is what reorders
    packets relative to their send order.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_range: Tuple[float, float] = (0.05, 0.5)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} probability {value} not in [0, 1]")
        if self.drop >= MAX_DROP:
            raise SimulationError(
                f"drop probability {self.drop} >= {MAX_DROP}; such a channel "
                "can never be made reliable"
            )
        low, high = self.delay_range
        if low < 0 or high < low:
            raise SimulationError(f"invalid delay range {self.delay_range}")

    @property
    def quiet(self) -> bool:
        return self.drop == 0.0 and self.duplicate == 0.0 and self.delay == 0.0


@dataclass(frozen=True)
class CrashSpec:
    """One crash/restore window for a client.

    At ``at`` the client loses all volatile state (everything since its
    last checkpoint); at ``restore_at`` it restarts from that checkpoint
    and resyncs missed operations from the server.
    """

    client: ReplicaId
    at: float
    restore_at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"crash time {self.at} is negative")
        if self.restore_at <= self.at:
            raise SimulationError(
                f"restore time {self.restore_at} not after crash at {self.at}"
            )


@dataclass(frozen=True)
class FaultDecision:
    """Fate of one physical transmission: the extra delays of every copy
    that survives (empty means the transmission was dropped entirely)."""

    extra_delays: Tuple[float, ...]
    dropped: int
    duplicated: int


class FaultPlan:
    """A seeded, deterministic fault schedule for one simulated run.

    A plan is consumed by exactly one run: :meth:`decide` draws from an
    internal RNG in call order, so reusing a plan object across runs
    would entangle their randomness.  Use :meth:`fresh` to obtain an
    identically-seeded copy for another run.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[ChannelFaults] = None,
        channels: Optional[Dict[Channel, ChannelFaults]] = None,
        crashes: Sequence[CrashSpec] = (),
        snapshot_every: int = 3,
    ) -> None:
        if snapshot_every < 1:
            raise SimulationError("snapshot_every must be >= 1")
        self.seed = seed
        self.default = default or ChannelFaults()
        self.channels = dict(channels or {})
        self.crashes = sorted(crashes, key=lambda c: (c.at, c.client))
        self.snapshot_every = snapshot_every
        self._rng = random.Random(seed)
        self._validate_crashes()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def fresh(self) -> "FaultPlan":
        """An identically-configured plan with a rewound RNG."""
        return FaultPlan(
            seed=self.seed,
            default=self.default,
            channels=dict(self.channels),
            crashes=list(self.crashes),
            snapshot_every=self.snapshot_every,
        )

    def without_crashes(self) -> "FaultPlan":
        """The same network faults, but no client ever crashes.

        Crash recovery restores from :mod:`repro.jupiter.persistence`
        snapshots, which exist for the CSS protocol only; protocols
        without snapshot support run the lossy network with this variant.
        """
        return FaultPlan(
            seed=self.seed,
            default=self.default,
            channels=dict(self.channels),
            crashes=(),
            snapshot_every=self.snapshot_every,
        )

    @classmethod
    def sample(
        cls,
        seed: int,
        clients: Sequence[ReplicaId],
        duration_hint: float = 10.0,
        max_drop: float = 0.3,
        crashes: bool = True,
    ) -> "FaultPlan":
        """Draw a random plan: lossy channels plus >= 1 crash/restore.

        Deterministic per ``seed``; the chaos property harness samples one
        plan per seed and the ``repro chaos`` CLI sweeps a seed range.
        """
        rng = random.Random(seed)
        default = ChannelFaults(
            drop=rng.uniform(0.0, max_drop),
            duplicate=rng.uniform(0.0, 0.2),
            delay=rng.uniform(0.0, 0.3),
            delay_range=(0.02, rng.uniform(0.1, 1.0)),
        )
        crash_list: List[CrashSpec] = []
        if crashes and clients:
            for client in rng.sample(
                list(clients), k=rng.randint(1, min(2, len(clients)))
            ):
                at = rng.uniform(0.2, max(0.4, 0.8 * duration_hint))
                crash_list.append(
                    CrashSpec(
                        client=client,
                        at=at,
                        restore_at=at + rng.uniform(0.5, 3.0),
                    )
                )
        return cls(
            seed=seed,
            default=default,
            crashes=crash_list,
            snapshot_every=rng.randint(1, 4),
        )

    def shrunk(self) -> Iterator["FaultPlan"]:
        """Progressively simpler variants of this plan, for failure triage.

        When a chaos case fails, re-running these (same seed, fewer fault
        dimensions) pins down which ingredient breaks: first without
        duplication/delay, then without drops, then without crashes.
        """
        yield FaultPlan(
            seed=self.seed,
            default=replace(self.default, duplicate=0.0, delay=0.0),
            crashes=list(self.crashes),
            snapshot_every=self.snapshot_every,
        )
        yield FaultPlan(
            seed=self.seed,
            default=replace(self.default, drop=0.0),
            crashes=list(self.crashes),
            snapshot_every=self.snapshot_every,
        )
        yield self.without_crashes()
        yield FaultPlan(seed=self.seed)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def faults_for(self, channel: Channel) -> ChannelFaults:
        return self.channels.get(channel, self.default)

    def decide(self, channel: Channel, now: float) -> FaultDecision:
        """Fate of one transmission on ``channel`` at time ``now``."""
        faults = self.faults_for(channel)
        if faults.quiet:
            return FaultDecision(extra_delays=(0.0,), dropped=0, duplicated=0)
        rng = self._rng
        copies = 1
        if rng.random() < faults.duplicate:
            copies += 1
        surviving: List[float] = []
        for _ in range(copies):
            if rng.random() < faults.drop:
                continue
            extra = 0.0
            if rng.random() < faults.delay:
                extra = rng.uniform(*faults.delay_range)
            surviving.append(extra)
        return FaultDecision(
            extra_delays=tuple(surviving),
            dropped=copies - len(surviving),
            duplicated=copies - 1,
        )

    # ------------------------------------------------------------------
    # Crash bookkeeping
    # ------------------------------------------------------------------
    def crashes_for(self, client: ReplicaId) -> List[CrashSpec]:
        return [crash for crash in self.crashes if crash.client == client]

    def crashed_clients(self) -> List[ReplicaId]:
        return sorted({crash.client for crash in self.crashes})

    def _validate_crashes(self) -> None:
        by_client: Dict[ReplicaId, List[CrashSpec]] = {}
        for crash in self.crashes:
            by_client.setdefault(crash.client, []).append(crash)
        for client, windows in by_client.items():
            for earlier, later in zip(windows, windows[1:]):
                if later.at < earlier.restore_at:
                    raise SimulationError(
                        f"overlapping crash windows for {client}: "
                        f"{earlier} and {later}"
                    )


@dataclass
class FaultStats:
    """Counters one fault-injected run accumulates.

    ``frames_*`` count physical transmissions on the lossy network;
    ``duplicates_suppressed`` and ``out_of_order_buffered`` are the
    session layer's receiver-side work; ``retransmissions`` counts
    timeout-driven resends; the crash counters describe the recovery
    path (``resynced_ops`` = operations re-delivered from the server's
    serial index after a restore).
    """

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_lost_to_crash: int = 0
    acks_sent: int = 0
    acks_dropped: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    out_of_order_buffered: int = 0
    crashes: int = 0
    restores: int = 0
    checkpoints: int = 0
    resynced_ops: int = 0
    deferred_generations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))

    def summary(self) -> str:
        return (
            f"frames sent={self.frames_sent} dropped={self.frames_dropped} "
            f"duplicated={self.frames_duplicated} "
            f"lost-to-crash={self.frames_lost_to_crash}; "
            f"retransmissions={self.retransmissions} "
            f"dup-suppressed={self.duplicates_suppressed} "
            f"reorder-buffered={self.out_of_order_buffered}; "
            f"crashes={self.crashes} resynced-ops={self.resynced_ops}"
        )
