"""Deterministic fault injection for the simulated network.

The paper's correctness story (convergence, Theorem 6.7; behavioural
equivalence, Theorem 7.1) assumes reliable exactly-once FIFO channels
(Section 4.4).  A production transport has to *earn* that assumption over
a network that drops, duplicates and reorders packets and over clients
that crash and restart.  This module supplies the adversary:

* :class:`ChannelFaults` — per-directed-channel drop / duplicate /
  extra-delay probabilities;
* :class:`CrashSpec` — a crash/restore window for one client;
* :class:`ServerCrashSpec` — a crash/restore window for the *server*,
  the serialisation authority itself; recovery replays the write-ahead
  log of :class:`~repro.jupiter.persistence.ServerWriteAheadLog`;
* :class:`FaultPlan` — a seeded, deterministic composition of the above.
  Every random decision is drawn from one dedicated RNG in event order,
  so the same plan replayed against the same workload produces the same
  run, byte for byte (the property the chaos harness and the ``repro
  chaos`` CLI rely on).

The plan is *advisory*: the event loop in
:class:`~repro.sim.runner.SimulationRunner` asks :meth:`FaultPlan.decide`
once per physical transmission and schedules the surviving copies.  When
no plan is installed the runner never imports this machinery — fault
injection is zero-cost when disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.ids import ReplicaId
from repro.errors import SimulationError

#: A directed channel, e.g. ``("c1", "s")`` or ``("s", "c2")``.
Channel = Tuple[ReplicaId, ReplicaId]

#: Sanity ceiling: a channel that drops *every* packet can never be made
#: reliable, so plans refuse drop probabilities at or above this bound.
MAX_DROP = 0.95


@dataclass(frozen=True)
class ChannelFaults:
    """Fault probabilities for one directed channel.

    ``drop``/``duplicate``/``delay`` are per-transmission probabilities;
    a delayed copy gets an extra latency drawn uniformly from
    ``delay_range`` on top of the latency model, which is what reorders
    packets relative to their send order.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_range: Tuple[float, float] = (0.05, 0.5)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} probability {value} not in [0, 1]")
        if self.drop >= MAX_DROP:
            raise SimulationError(
                f"drop probability {self.drop} >= {MAX_DROP}; such a channel "
                "can never be made reliable"
            )
        low, high = self.delay_range
        if low < 0 or high < low:
            raise SimulationError(f"invalid delay range {self.delay_range}")

    @property
    def quiet(self) -> bool:
        return self.drop == 0.0 and self.duplicate == 0.0 and self.delay == 0.0


@dataclass(frozen=True)
class CrashSpec:
    """One crash/restore window for a client.

    At ``at`` the client loses all volatile state (everything since its
    last checkpoint); at ``restore_at`` it restarts from that checkpoint
    and resyncs missed operations from the server.
    """

    client: ReplicaId
    at: float
    restore_at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"crash time {self.at} is negative")
        if self.restore_at <= self.at:
            raise SimulationError(
                f"restore time {self.restore_at} not after crash at {self.at}"
            )


@dataclass(frozen=True)
class ServerCrashSpec:
    """One crash/restore window for the server (or one of its replicas).

    At ``at`` the server loses all volatile state — its state-space, its
    order oracle, its session endpoints, and every frame or ack it had in
    flight; at ``restore_at`` it recovers from the write-ahead log (latest
    snapshot + replayed suffix), re-enters under a new epoch, and answers
    each client's resync request from the replayed log.

    With a replicated plan (``FaultPlan(replicas=...)``) the window
    targets one member of the replica group instead:

    * ``replica=None`` or ``replica="primary"`` — kill whichever replica
      is the *primary* when ``at`` fires (the interesting case: the
      serialisation authority dies mid-broadcast and a view change must
      elect a successor);
    * ``replica=<int>`` — kill that roster index, primary or not (a
      backup kill exercises quorum commit with a degraded roster).

    At ``restore_at`` the killed replica rejoins as a *backup* via state
    transfer from the current primary, whatever role it held before.
    """

    at: float
    restore_at: float
    #: ``None``/"primary" = the current primary; int = roster index.
    replica: Optional[object] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"server crash time {self.at} is negative")
        if self.restore_at <= self.at:
            raise SimulationError(
                f"server restore time {self.restore_at} not after crash "
                f"at {self.at}"
            )
        if self.replica is not None and self.replica != "primary":
            if not isinstance(self.replica, int) or self.replica < 0:
                raise SimulationError(
                    f"replica target {self.replica!r} is neither 'primary' "
                    "nor a roster index"
                )


@dataclass(frozen=True)
class FaultDecision:
    """Fate of one physical transmission: the extra delays of every copy
    that survives (empty means the transmission was dropped entirely)."""

    extra_delays: Tuple[float, ...]
    dropped: int
    duplicated: int


class FaultPlan:
    """A seeded, deterministic fault schedule for one simulated run.

    A plan is consumed by exactly one run: :meth:`decide` draws from an
    internal RNG in call order, so reusing a plan object across runs
    would entangle their randomness.  Use :meth:`fresh` to obtain an
    identically-seeded copy for another run.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[ChannelFaults] = None,
        channels: Optional[Dict[Channel, ChannelFaults]] = None,
        crashes: Sequence[CrashSpec] = (),
        server_crashes: Sequence[ServerCrashSpec] = (),
        snapshot_every: int = 3,
        wal: Optional[bool] = None,
        replicas: int = 0,
        failover_delay: float = 0.25,
    ) -> None:
        if snapshot_every < 1:
            raise SimulationError("snapshot_every must be >= 1")
        self.seed = seed
        self.default = default or ChannelFaults()
        self.channels = dict(channels or {})
        self.crashes = sorted(crashes, key=lambda c: (c.at, c.client))
        self.server_crashes = sorted(server_crashes, key=lambda c: c.at)
        self.snapshot_every = snapshot_every
        #: ``None`` = automatic (the WAL runs exactly when the plan
        #: contains server crashes); an explicit bool forces it on (to
        #: measure durability overhead) or off.
        self.wal = wal
        #: 0 = the classic single server; >= 3 replicates the WAL across
        #: a 2f+1 quorum group with view-change failover.
        self.replicas = replicas
        #: detection timeout: a dead primary's successor takes over this
        #: long after the crash (the failure-detector latency).
        self.failover_delay = failover_delay
        if replicas:
            if replicas < 3:
                raise SimulationError(
                    f"a replica group needs at least 3 members (2f+1, "
                    f"f >= 1); got {replicas}"
                )
            if failover_delay <= 0:
                raise SimulationError(
                    f"failover delay {failover_delay} must be positive"
                )
        if wal is False and self.server_crashes:
            raise SimulationError(
                "server crashes require the write-ahead log: recovery "
                "replays it (drop wal=False or the ServerCrashSpecs)"
            )
        self._rng = random.Random(seed)
        self._validate_crashes()

    @property
    def wal_enabled(self) -> bool:
        """Whether the runner should maintain a server write-ahead log."""
        if self.wal is not None:
            return self.wal
        return bool(self.server_crashes) or self.replicas > 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def fresh(self) -> "FaultPlan":
        """An identically-configured plan with a rewound RNG."""
        return FaultPlan(
            seed=self.seed,
            default=self.default,
            channels=dict(self.channels),
            crashes=list(self.crashes),
            server_crashes=list(self.server_crashes),
            snapshot_every=self.snapshot_every,
            wal=self.wal,
            replicas=self.replicas,
            failover_delay=self.failover_delay,
        )

    def without_crashes(self) -> "FaultPlan":
        """The same network faults, but no replica ever crashes.

        Crash recovery restores from :mod:`repro.jupiter.persistence`
        snapshots, which exist for the CSS protocol only; protocols
        without snapshot support run the lossy network with this variant.
        """
        return FaultPlan(
            seed=self.seed,
            default=self.default,
            channels=dict(self.channels),
            crashes=(),
            server_crashes=(),
            snapshot_every=self.snapshot_every,
            wal=self.wal,
            replicas=self.replicas,
            failover_delay=self.failover_delay,
        )

    @classmethod
    def sample(
        cls,
        seed: int,
        clients: Sequence[ReplicaId],
        duration_hint: float = 10.0,
        max_drop: float = 0.3,
        crashes: bool = True,
        server_crash: bool = False,
    ) -> "FaultPlan":
        """Draw a random plan: lossy channels plus >= 1 crash/restore.

        Deterministic per ``seed``; the chaos property harness samples one
        plan per seed and the ``repro chaos`` CLI sweeps a seed range.
        With ``server_crash`` the plan additionally crashes the server
        once; client restores that would land inside the server's outage
        window are pushed past it (a client cannot resync from a dead
        server), keeping every sampled plan valid.
        """
        rng = random.Random(seed)
        default = ChannelFaults(
            drop=rng.uniform(0.0, max_drop),
            duplicate=rng.uniform(0.0, 0.2),
            delay=rng.uniform(0.0, 0.3),
            delay_range=(0.02, rng.uniform(0.1, 1.0)),
        )
        crash_list: List[CrashSpec] = []
        if crashes and clients:
            for client in rng.sample(
                list(clients), k=rng.randint(1, min(2, len(clients)))
            ):
                at = rng.uniform(0.2, max(0.4, 0.8 * duration_hint))
                crash_list.append(
                    CrashSpec(
                        client=client,
                        at=at,
                        restore_at=at + rng.uniform(0.5, 3.0),
                    )
                )
        server_list: List[ServerCrashSpec] = []
        if server_crash:
            at = rng.uniform(0.3, max(0.6, 0.7 * duration_hint))
            window = ServerCrashSpec(
                at=at, restore_at=at + rng.uniform(0.4, 2.0)
            )
            server_list.append(window)
            crash_list = [
                replace(
                    crash,
                    restore_at=window.restore_at + rng.uniform(0.1, 1.0),
                )
                if window.at <= crash.restore_at <= window.restore_at
                else crash
                for crash in crash_list
            ]
        return cls(
            seed=seed,
            default=default,
            crashes=crash_list,
            server_crashes=server_list,
            snapshot_every=rng.randint(1, 4),
        )

    @classmethod
    def sample_failover(
        cls,
        seed: int,
        clients: Sequence[ReplicaId],
        duration_hint: float = 10.0,
        max_drop: float = 0.3,
        replicas: int = 3,
        kills: int = 1,
    ) -> "FaultPlan":
        """Draw a random replicated plan with ``kills`` primary kills.

        Deterministic per ``seed``.  Each kill window targets whichever
        replica is the primary when the window opens, so a sequence of
        kills walks the view number forward — successive view changes
        with the log adopted across them.  Windows are laid out
        sequentially (one replica down at a time: the 2f+1 group keeps
        its quorum throughout) and each is long enough for the failover
        detection delay to elapse before the victim rejoins.
        """
        if kills < 1:
            raise SimulationError("sample_failover needs kills >= 1")
        rng = random.Random(seed)
        default = ChannelFaults(
            drop=rng.uniform(0.0, max_drop),
            duplicate=rng.uniform(0.0, 0.2),
            delay=rng.uniform(0.0, 0.3),
            delay_range=(0.02, rng.uniform(0.1, 1.0)),
        )
        failover_delay = rng.uniform(0.1, 0.4)
        span = max(duration_hint, 1.0)
        server_list: List[ServerCrashSpec] = []
        cursor = rng.uniform(0.2, 0.4 * span / kills)
        for _ in range(kills):
            outage = failover_delay + rng.uniform(0.3, 1.5)
            server_list.append(
                ServerCrashSpec(
                    at=cursor, restore_at=cursor + outage, replica="primary"
                )
            )
            cursor += outage + rng.uniform(0.2, max(0.4, span / kills))
        return cls(
            seed=seed,
            default=default,
            server_crashes=server_list,
            snapshot_every=rng.randint(1, 4),
            replicas=replicas,
            failover_delay=failover_delay,
        )

    def shrunk(self) -> Iterator["FaultPlan"]:
        """Progressively simpler variants of this plan, for failure triage.

        When a chaos case fails, re-running these (same seed, fewer fault
        dimensions) pins down which ingredient breaks: first without
        duplication/delay, then without drops, then (when present)
        without the server crash, then without any crashes.
        """
        yield FaultPlan(
            seed=self.seed,
            default=replace(self.default, duplicate=0.0, delay=0.0),
            crashes=list(self.crashes),
            server_crashes=list(self.server_crashes),
            snapshot_every=self.snapshot_every,
        )
        yield FaultPlan(
            seed=self.seed,
            default=replace(self.default, drop=0.0),
            crashes=list(self.crashes),
            server_crashes=list(self.server_crashes),
            snapshot_every=self.snapshot_every,
        )
        if self.server_crashes:
            yield FaultPlan(
                seed=self.seed,
                default=self.default,
                crashes=list(self.crashes),
                snapshot_every=self.snapshot_every,
            )
        yield self.without_crashes()
        yield FaultPlan(seed=self.seed)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def faults_for(self, channel: Channel) -> ChannelFaults:
        return self.channels.get(channel, self.default)

    def decide(self, channel: Channel, now: float) -> FaultDecision:
        """Fate of one transmission on ``channel`` at time ``now``."""
        faults = self.faults_for(channel)
        if faults.quiet:
            return FaultDecision(extra_delays=(0.0,), dropped=0, duplicated=0)
        rng = self._rng
        copies = 1
        if rng.random() < faults.duplicate:
            copies += 1
        surviving: List[float] = []
        for _ in range(copies):
            if rng.random() < faults.drop:
                continue
            extra = 0.0
            if rng.random() < faults.delay:
                extra = rng.uniform(*faults.delay_range)
            surviving.append(extra)
        return FaultDecision(
            extra_delays=tuple(surviving),
            dropped=copies - len(surviving),
            duplicated=copies - 1,
        )

    # ------------------------------------------------------------------
    # Crash bookkeeping
    # ------------------------------------------------------------------
    def crashes_for(self, client: ReplicaId) -> List[CrashSpec]:
        return [crash for crash in self.crashes if crash.client == client]

    def crashed_clients(self) -> List[ReplicaId]:
        return sorted({crash.client for crash in self.crashes})

    def _validate_crashes(self) -> None:
        by_client: Dict[ReplicaId, List[CrashSpec]] = {}
        for crash in self.crashes:
            by_client.setdefault(crash.client, []).append(crash)
        for client, windows in by_client.items():
            for earlier, later in zip(windows, windows[1:]):
                if later.at < earlier.restore_at:
                    raise SimulationError(
                        f"overlapping crash windows for {client}: "
                        f"{earlier} and {later}"
                    )
        for earlier, later in zip(self.server_crashes, self.server_crashes[1:]):
            if later.at < earlier.restore_at:
                raise SimulationError(
                    f"overlapping server crash windows: "
                    f"{earlier} and {later}"
                )
        for window in self.server_crashes:
            if window.replica is None:
                continue
            if not self.replicas:
                raise SimulationError(
                    f"server crash targets replica {window.replica!r} but "
                    "the plan has no replica group (set replicas=2f+1)"
                )
            if (
                isinstance(window.replica, int)
                and window.replica >= self.replicas
            ):
                raise SimulationError(
                    f"server crash targets replica {window.replica} but the "
                    f"roster has only {self.replicas} members"
                )
        for window in self.server_crashes:
            for crash in self.crashes:
                if window.at <= crash.restore_at <= window.restore_at:
                    raise SimulationError(
                        f"client {crash.client} restores at "
                        f"{crash.restore_at} while the server is down "
                        f"({window}); recovery needs the server to answer "
                        "its resync request"
                    )


@dataclass
class FaultStats:
    """Counters one fault-injected run accumulates.

    ``frames_*`` count physical transmissions on the lossy network;
    ``duplicates_suppressed`` and ``out_of_order_buffered`` are the
    session layer's receiver-side work; ``retransmissions`` counts
    timeout-driven resends; the crash counters describe the recovery
    path (``resynced_ops`` = operations re-delivered from the server's
    serial index after a restore).  The ``server_*`` and ``wal_*``
    counters describe the server durability subsystem:
    ``frames_lost_in_flight`` are frames/acks the crashing server had on
    the wire (they die with its epoch), ``server_resynced_ops`` are
    broadcasts rebuilt from the replayed write-ahead log, and the
    ``wal_*`` counters are the log's append/compaction work.
    """

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_lost_to_crash: int = 0
    frames_lost_in_flight: int = 0
    acks_sent: int = 0
    acks_dropped: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    out_of_order_buffered: int = 0
    crashes: int = 0
    restores: int = 0
    checkpoints: int = 0
    resynced_ops: int = 0
    deferred_generations: int = 0
    server_crashes: int = 0
    server_restores: int = 0
    server_resynced_ops: int = 0
    wal_appends: int = 0
    wal_compactions: int = 0
    wal_records_truncated: int = 0
    view_changes: int = 0
    repl_stale_rejected: int = 0
    #: simulated seconds from each primary crash to the commit floor
    #: regaining the adopted log (the view fully certified again)
    failover_latencies: List[float] = dataclass_field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))

    def summary(self) -> str:
        return (
            f"frames sent={self.frames_sent} dropped={self.frames_dropped} "
            f"duplicated={self.frames_duplicated} "
            f"lost-to-crash={self.frames_lost_to_crash}; "
            f"retransmissions={self.retransmissions} "
            f"dup-suppressed={self.duplicates_suppressed} "
            f"reorder-buffered={self.out_of_order_buffered}; "
            f"crashes={self.crashes} resynced-ops={self.resynced_ops}; "
            f"server-crashes={self.server_crashes} "
            f"server-resynced={self.server_resynced_ops} "
            f"wal-appends={self.wal_appends} "
            f"wal-compactions={self.wal_compactions} "
            f"view-changes={self.view_changes}"
        )


@dataclass(frozen=True)
class NetChaosPlan:
    """A seeded, declarative fault plan for the *real* TCP transport.

    :class:`FaultPlan` adversaries the simulated network; this is its
    socket-level twin, consumed by
    :class:`repro.net.chaosproxy.ChaosProxy`, which sits between real
    clients and a real :class:`~repro.net.server.NetServer` and
    perturbs the byte stream itself:

    * ``latency``/``jitter`` — every forwarded chunk waits ``latency``
      plus a uniform draw from ``[0, jitter]`` seconds (jitter reorders
      nothing — TCP is FIFO — but it perturbs timing and coalescing);
    * ``bandwidth`` — bytes/second cap per connection per direction
      (0 = uncapped), throttled over 4KiB slices;
    * ``reset_after`` — one mid-run reset: ``reset_after`` seconds
      after the proxy starts, every live connection is aborted *once*
      (clients reconnect and resync losslessly from the WAL);
    * ``partition``/``partition_at``/``partition_for`` — a one-way
      partition: during the window, bytes flowing ``"c2s"`` (client to
      server) or ``"s2c"`` are read and discarded, the TCP mirror of a
      one-way channel outage;
    * ``stall_at``/``stall_for`` — slow-loris: each connection stops
      forwarding *both* directions ``stall_at`` seconds after it is
      accepted, for ``stall_for`` seconds — the connection stays open
      but nothing moves, which is exactly the shape the server's idle
      deadline and write deadline must defend against.

    All windows except the stall run on the proxy clock (seconds since
    :meth:`ChaosProxy.start`); the stall is per-connection.  Every
    random draw comes from an RNG seeded with ``seed``, so a plan
    replays identically — the property the chaos-net suite relies on.
    """

    seed: int = 0
    latency: float = 0.0
    jitter: float = 0.0
    bandwidth: int = 0
    reset_after: Optional[float] = None
    partition: Optional[str] = None
    partition_at: float = 0.0
    partition_for: float = 0.0
    stall_at: Optional[float] = None
    stall_for: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise SimulationError(
                f"latency {self.latency}/jitter {self.jitter} negative"
            )
        if self.bandwidth < 0:
            raise SimulationError(f"bandwidth {self.bandwidth} negative")
        if self.reset_after is not None and self.reset_after <= 0:
            raise SimulationError(
                f"reset_after {self.reset_after} must be positive"
            )
        if self.partition is not None:
            if self.partition not in ("c2s", "s2c"):
                raise SimulationError(
                    f"partition {self.partition!r} must be 'c2s' or 's2c'"
                )
            if self.partition_for <= 0:
                raise SimulationError(
                    f"partition_for {self.partition_for} must be positive"
                )
            if self.partition_at < 0:
                raise SimulationError(
                    f"partition_at {self.partition_at} negative"
                )
        if self.stall_at is not None:
            if self.stall_at < 0:
                raise SimulationError(f"stall_at {self.stall_at} negative")
            if self.stall_for <= 0:
                raise SimulationError(
                    f"stall_for {self.stall_for} must be positive"
                )

    @property
    def quiet(self) -> bool:
        return (
            self.latency == 0.0
            and self.jitter == 0.0
            and self.bandwidth == 0
            and self.reset_after is None
            and self.partition is None
            and self.stall_at is None
        )

    @classmethod
    def sample(cls, seed: int, duration_hint: float = 5.0) -> "NetChaosPlan":
        """Draw a random plan, deterministic per ``seed``.

        Delays stay in the tens of milliseconds so a 50-plan property
        sweep finishes in CI time; windows land inside
        ``duration_hint`` so every fault actually fires mid-run.
        """
        rng = random.Random(seed)
        plan: Dict[str, object] = {
            "seed": seed,
            "latency": rng.uniform(0.0, 0.02),
            "jitter": rng.uniform(0.0, 0.02),
        }
        if rng.random() < 0.3:
            plan["bandwidth"] = rng.randrange(64 * 1024, 1024 * 1024)
        if rng.random() < 0.4:
            plan["reset_after"] = rng.uniform(0.2, 0.7 * duration_hint)
        if rng.random() < 0.3:
            plan["partition"] = rng.choice(["c2s", "s2c"])
            plan["partition_at"] = rng.uniform(0.1, 0.5 * duration_hint)
            plan["partition_for"] = rng.uniform(0.1, 0.5)
        if rng.random() < 0.3:
            plan["stall_at"] = rng.uniform(0.1, 0.5 * duration_hint)
            plan["stall_for"] = rng.uniform(0.1, 0.5)
        return cls(**plan)  # type: ignore[arg-type]

    def to_obj(self) -> Dict[str, object]:
        """JSON-able form (the ``repro chaosproxy`` announce line)."""
        return {
            "seed": self.seed,
            "latency": self.latency,
            "jitter": self.jitter,
            "bandwidth": self.bandwidth,
            "reset_after": self.reset_after,
            "partition": self.partition,
            "partition_at": self.partition_at,
            "partition_for": self.partition_for,
            "stall_at": self.stall_at,
            "stall_for": self.stall_for,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "NetChaosPlan":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in dict(obj).items() if k in known})
