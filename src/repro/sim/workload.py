"""Random editing workloads.

A workload decides, per client, *when* operations are generated (Poisson
arrivals) and *what* they are (insert/delete mix, position distribution,
value alphabet).  Positions are drawn against the client's live document
at generation time, so the produced operations are always valid; the
runner records the materialised :class:`~repro.model.schedule.OpSpec` so
the identical schedule can be replayed against other protocols.

Position distributions model common editing patterns:

* ``uniform`` — edits anywhere (collaborative brainstorming);
* ``append`` — edits near the end (log-style writing);
* ``hotspot`` — a sticky cursor with local moves (real typing), the
  pattern the Jupiter paper's interactive-editing setting implies;
* ``typing`` — a full editing-session model: each user keeps a cursor,
  types characters left-to-right in runs ("words"), occasionally
  backspaces over a mistake, and sometimes jumps the cursor elsewhere in
  the document.  ``insert_ratio`` is ignored in this mode — the
  insert/delete mix emerges from the typing behaviour itself.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.ids import ReplicaId
from repro.model.schedule import OpSpec


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a random editing workload."""

    clients: int = 3
    operations: int = 30  # total across clients
    insert_ratio: float = 0.7
    positions: str = "uniform"  # uniform | append | hotspot
    alphabet: str = string.ascii_lowercase
    rate_per_client: float = 2.0  # operations per simulated second
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("need at least one client")
        if self.operations < 0:
            raise ValueError("negative operation count")
        if not 0.0 <= self.insert_ratio <= 1.0:
            raise ValueError("insert_ratio must be in [0, 1]")
        if self.positions not in ("uniform", "append", "hotspot", "typing"):
            raise ValueError(f"unknown position distribution {self.positions!r}")
        if self.rate_per_client <= 0:
            raise ValueError("rate must be positive")

    def client_names(self) -> List[ReplicaId]:
        return [f"c{i + 1}" for i in range(self.clients)]


class WorkloadGenerator:
    """Draws operation times and specs for one workload configuration."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._cursor: Dict[ReplicaId, int] = {}

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def generation_times(self) -> List[tuple]:
        """``(time, client)`` pairs for every operation, time-sorted.

        Each client generates operations with exponential inter-arrival
        times; operations are distributed round-robin so every client gets
        a fair share of the total budget.
        """
        clients = self.config.client_names()
        times: List[tuple] = []
        clock: Dict[ReplicaId, float] = {name: 0.0 for name in clients}
        for index in range(self.config.operations):
            client = clients[index % len(clients)]
            clock[client] += self._rng.expovariate(self.config.rate_per_client)
            times.append((clock[client], client))
        times.sort()
        return times

    # ------------------------------------------------------------------
    # Operation contents
    # ------------------------------------------------------------------
    def _position(self, client: ReplicaId, length: int, inserting: bool) -> int:
        limit = length if inserting else length - 1
        if limit <= 0:
            return 0
        style = self.config.positions
        if style == "uniform":
            return self._rng.randint(0, limit)
        if style == "append":
            # Strong bias to the tail, occasional mid-document fix-up.
            if self._rng.random() < 0.85:
                return limit
            return self._rng.randint(0, limit)
        # hotspot: a per-client cursor taking small steps.
        cursor = self._cursor.get(client, limit // 2)
        cursor += self._rng.randint(-2, 2)
        cursor = max(0, min(limit, cursor))
        self._cursor[client] = cursor
        return cursor

    def next_spec(self, client: ReplicaId, document_length: int) -> OpSpec:
        """The next operation for ``client`` given its current length."""
        if self.config.positions == "typing":
            return self._typing_spec(client, document_length)
        inserting = (
            document_length == 0
            or self._rng.random() < self.config.insert_ratio
        )
        position = self._position(client, document_length, inserting)
        if inserting:
            value = self._rng.choice(self.config.alphabet)
            return OpSpec("ins", position, value)
        return OpSpec("del", position)

    # ------------------------------------------------------------------
    # The typing-session model
    # ------------------------------------------------------------------
    def _typing_spec(self, client: ReplicaId, length: int) -> OpSpec:
        """One keystroke of an editing session.

        Behaviour mix (roughly matching interactive-editor traces):
        ~80 % plain typing at the cursor, ~8 % backspace, ~12 % cursor
        jump followed by typing at the new spot.
        """
        cursor = min(self._cursor.get(client, length), length)
        roll = self._rng.random()
        if roll < 0.08 and cursor > 0 and length > 0:
            # Backspace: delete the character left of the cursor.
            self._cursor[client] = cursor - 1
            return OpSpec("del", cursor - 1)
        if roll < 0.20 and length > 0:
            # Jump: the user clicks elsewhere, then types there.
            cursor = self._rng.randint(0, length)
        value = self._rng.choice(self.config.alphabet)
        self._cursor[client] = cursor + 1
        return OpSpec("ins", cursor, value)
