"""Latency models and FIFO channel timing.

A latency model maps ``(sender, recipient, now)`` to a transfer delay; the
:class:`FifoChannelTimer` turns delays into *delivery times* that are
strictly increasing per channel, which is what makes the simulated network
FIFO regardless of how bursty the latency model is.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import ReplicaId


class LatencyModel(abc.ABC):
    """Transfer delay of one message."""

    @abc.abstractmethod
    def delay(
        self, sender: ReplicaId, recipient: ReplicaId, now: float
    ) -> float:
        """Latency (in simulated seconds) for a message sent at ``now``."""


@dataclass
class FixedLatency(LatencyModel):
    """Every message takes exactly ``seconds``."""

    seconds: float = 0.05

    def delay(self, sender: ReplicaId, recipient: ReplicaId, now: float) -> float:
        return self.seconds


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]``, from a dedicated seeded RNG.

    The RNG lives in the model (not shared with the workload) so changing
    the workload never perturbs network timing, keeping experiments
    comparable.
    """

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        import random

        self._low = low
        self._high = high
        self._rng = random.Random(seed)

    def delay(self, sender: ReplicaId, recipient: ReplicaId, now: float) -> float:
        return self._rng.uniform(self._low, self._high)


class OfflinePeriods(LatencyModel):
    """Wrap another model with per-replica offline windows.

    While ``replica`` is offline, anything sent to or from it is held and
    delivered after the window closes — modelling the disconnected-editing
    bursts that optimistic replication is designed for (Section 1).
    """

    def __init__(
        self,
        base: LatencyModel,
        windows: Dict[ReplicaId, List[Tuple[float, float]]],
    ) -> None:
        self._base = base
        self._windows = {
            replica: sorted(periods) for replica, periods in windows.items()
        }

    def _resume_time(self, replica: ReplicaId, now: float) -> float:
        # One pass over the start-sorted windows reaches a fixpoint even
        # when windows abut or overlap: resuming at one window's end can
        # only land inside a window that starts no earlier, which is
        # visited later in the scan.
        resume = now
        for start, end in self._windows.get(replica, ()):
            if start <= resume < end:
                resume = end
        return resume

    def delay(self, sender: ReplicaId, recipient: ReplicaId, now: float) -> float:
        base_delay = self._base.delay(sender, recipient, now)
        arrival = now + base_delay
        # The message leaves once the sender is back online and lands once
        # the recipient is back online.
        departure = self._resume_time(sender, now)
        arrival = max(arrival, departure + base_delay)
        arrival = self._resume_time(recipient, arrival)
        return arrival - now


@dataclass
class FifoChannelTimer:
    """Assign strictly increasing delivery times per directed channel."""

    epsilon: float = 1e-9
    _last_delivery: Dict[Tuple[ReplicaId, ReplicaId], float] = field(
        default_factory=dict
    )

    def delivery_time(
        self,
        model: LatencyModel,
        sender: ReplicaId,
        recipient: ReplicaId,
        now: float,
    ) -> float:
        """When a message sent at ``now`` arrives, preserving FIFO order."""
        raw = now + model.delay(sender, recipient, now)
        channel = (sender, recipient)
        floor = self._last_delivery.get(channel)
        if floor is not None and raw <= floor:
            raw = floor + self.epsilon
        self._last_delivery[channel] = raw
        return raw

    def last_delivery(
        self, sender: ReplicaId, recipient: ReplicaId
    ) -> Optional[float]:
        """Latest delivery time scheduled on one directed channel.

        ``None`` until the channel has carried a message.  The
        fault-injected runner samples this to seed its retransmission
        timers from observed channel latency instead of a blind constant.
        """
        return self._last_delivery.get((sender, recipient))

    def channels(self) -> List[Tuple[ReplicaId, ReplicaId]]:
        """Every directed channel that has carried at least one message."""
        return sorted(self._last_delivery)
