"""Deterministic discrete-event simulation of Jupiter deployments.

The original Jupiter system ran clients against a central server over TCP;
we substitute a simulated network that preserves exactly the properties
the paper's proofs rely on — FIFO, exactly-once, eventually-delivered
channels (Section 2.1.3) — while making every run deterministic and
replayable:

* :mod:`repro.sim.network` — latency models and FIFO channel timing;
* :mod:`repro.sim.workload` — random editing workload generators;
* :mod:`repro.sim.runner` — the event loop driving a protocol cluster in
  simulated time, recording both the concrete execution and the abstract
  :class:`~repro.model.schedule.Schedule` for replay against other
  protocols;
* :mod:`repro.sim.trace` — turning recorded executions into abstract
  executions and running all three specification checkers;
* :mod:`repro.sim.faults` — seeded drop/duplicate/delay/crash injection,
  against which the reliable-session layer
  (:mod:`repro.jupiter.session`) re-earns the FIFO exactly-once model.
"""

from repro.sim.faults import (
    ChannelFaults,
    CrashSpec,
    FaultPlan,
    FaultStats,
    NetChaosPlan,
    ServerCrashSpec,
)
from repro.sim.network import (
    FifoChannelTimer,
    FixedLatency,
    LatencyModel,
    OfflinePeriods,
    UniformLatency,
)
from repro.sim.fuzz import ChaosReport, FuzzReport, chaos_sweep, fuzz
from repro.sim.p2p import P2PSimulationResult, P2PSimulationRunner
from repro.sim.runner import SimulationResult, SimulationRunner, replay
from repro.sim.trace import SpecReport, check_all_specs
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "ChannelFaults",
    "ChaosReport",
    "CrashSpec",
    "FaultPlan",
    "FaultStats",
    "NetChaosPlan",
    "ServerCrashSpec",
    "FifoChannelTimer",
    "FixedLatency",
    "LatencyModel",
    "OfflinePeriods",
    "UniformLatency",
    "FuzzReport",
    "chaos_sweep",
    "fuzz",
    "P2PSimulationResult",
    "P2PSimulationRunner",
    "SimulationResult",
    "SimulationRunner",
    "replay",
    "SpecReport",
    "check_all_specs",
    "WorkloadConfig",
    "WorkloadGenerator",
]
