"""Uniquely identified list elements.

The paper assumes "all inserted elements to be unique, which can be done by
attaching replica identifiers and sequence numbers" (Section 3.1).  An
:class:`Element` pairs the user-visible value (typically a character) with
the :class:`~repro.common.ids.OpId` of the insert operation that created it,
making distinct insertions of equal values distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.ids import OpId


@dataclass(frozen=True)
class Element:
    """A list element: a value tagged with the id of its insert operation.

    Equality and hashing include the ``opid``, so two elements holding the
    same character inserted by different operations are different elements.
    This is what gives the one-to-one correspondence between inserted
    elements and insert operations that the list specifications rely on.
    """

    value: Any
    opid: OpId

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)

    def pretty(self) -> str:
        """Verbose rendering including the element identity."""
        return f"{self.value}@{self.opid}"
