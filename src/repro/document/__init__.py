"""The replicated list document and its uniquely identified elements."""

from repro.document.elements import Element
from repro.document.list_document import ListDocument

__all__ = ["Element", "ListDocument"]
