"""A mutable list document: the state a replicated-list replica exposes.

A :class:`ListDocument` is the "list object (representing documents)" of the
paper: an ordered sequence of unique :class:`~repro.document.elements.Element`
values supporting position-based insertion and deletion, plus a read that
returns the current contents.  It is deliberately a plain, strict data
structure — all replication logic lives in the protocol packages.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.common.ids import OpId
from repro.document.elements import Element
from repro.errors import DuplicateElementError, ElementNotFoundError, PositionError


class ListDocument:
    """An ordered sequence of unique elements.

    Positions are zero-based, as in the paper's ``Ins(a, p)`` / ``Del(a, p)``
    signatures.  All mutating methods validate their arguments and raise
    subclasses of :class:`~repro.errors.DocumentError` on misuse; silent
    clamping would mask protocol bugs that the test-suite wants to catch.
    """

    __slots__ = ("_elements", "_ids", "_shared")

    def __init__(self, elements: Optional[Iterable[Element]] = None) -> None:
        self._elements: List[Element] = list(elements or [])
        self._ids = {e.opid for e in self._elements}
        self._shared = False
        if len(self._ids) != len(self._elements):
            raise DuplicateElementError(
                "initial contents contain duplicate element ids"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> Element:
        return self._elements[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Element):
            return item.opid in self._ids
        if isinstance(item, OpId):
            return item in self._ids
        return any(e.value == item for e in self._elements)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ListDocument):
            return self._elements == other._elements
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ListDocument({self.as_string()!r})"

    def read(self) -> Sequence[Element]:
        """Return the current contents (the paper's ``Read`` operation)."""
        return tuple(self._elements)

    def values(self) -> List[Any]:
        """The user-visible values, in list order."""
        return [e.value for e in self._elements]

    def as_string(self) -> str:
        """Concatenate the element values; handy for character documents."""
        return "".join(str(e.value) for e in self._elements)

    def index_of(self, opid: OpId) -> int:
        """Position of the element inserted by ``opid``.

        Raises :class:`ElementNotFoundError` if the element is absent
        (never inserted, or already deleted).
        """
        for index, element in enumerate(self._elements):
            if element.opid == opid:
                return index
        raise ElementNotFoundError(f"no element with id {opid} in document")

    def element_at(self, position: int) -> Element:
        """The element at ``position``; raises :class:`PositionError`."""
        if not 0 <= position < len(self._elements):
            raise PositionError(
                f"position {position} out of range for document of "
                f"length {len(self._elements)}"
            )
        return self._elements[position]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, element: Element, position: int) -> None:
        """Insert ``element`` at ``position`` (the paper's ``Ins(a, p)``).

        Valid positions are ``0 .. len(self)`` inclusive: inserting at
        ``len(self)`` appends.
        """
        if not 0 <= position <= len(self._elements):
            raise PositionError(
                f"insert position {position} out of range for document of "
                f"length {len(self._elements)}"
            )
        if element.opid in self._ids:
            raise DuplicateElementError(
                f"element {element.pretty()} already present"
            )
        self._unshare()
        self._elements.insert(position, element)
        self._ids.add(element.opid)

    def delete(self, position: int, expected: Optional[Element] = None) -> Element:
        """Delete and return the element at ``position``.

        If ``expected`` is given, the element found at ``position`` must be
        that element; a mismatch indicates the caller's coordinates are
        stale, which in a correct OT protocol can never happen.
        """
        victim = self.element_at(position)
        if expected is not None and victim.opid != expected.opid:
            raise ElementNotFoundError(
                f"expected {expected.pretty()} at position {position}, "
                f"found {victim.pretty()}"
            )
        self._unshare()
        del self._elements[position]
        self._ids.discard(victim.opid)
        return victim

    def _unshare(self) -> None:
        if self._shared:
            self._elements = list(self._elements)
            self._ids = set(self._ids)
            self._shared = False

    def copy(self) -> "ListDocument":
        """An independent copy with the same contents.

        Copy-on-write: the copy shares the element list and id set with
        the original until either side next mutates, so copying a state
        that is only ever *read* (most CP1 corners) is O(1) instead of
        O(length).
        """
        clone = ListDocument.__new__(ListDocument)
        clone._elements = self._elements
        clone._ids = self._ids
        clone._shared = True
        self._shared = True
        return clone

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str, replica: str = "init") -> "ListDocument":
        """Build a document whose elements are the characters of ``text``.

        Element ids use the pseudo-replica ``replica`` with sequence
        numbers ``1..len(text)``; useful for setting up the paper's worked
        examples that start from a non-empty list such as ``"efecte"``.
        """
        elements = [
            Element(ch, OpId(replica, i + 1)) for i, ch in enumerate(text)
        ]
        return cls(elements)
